//! Lock in the *what-if* property: applying ION's recommendations in the
//! simulator improves runtime where ION promises it, and does nothing for
//! the pattern where ION explicitly declines to promise aggregation.

use iosim::{SimConfig, Simulation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn sequential_run(transfer: u64, volume_per_rank: u64) -> f64 {
    let mut sim = Simulation::new(SimConfig::default().with_ranks(4));
    let f = sim.posix_open_all("/w/seq").unwrap();
    for i in 0..volume_per_rank / transfer {
        for rank in 0..4u32 {
            let base = u64::from(rank) * volume_per_rank;
            sim.posix_write(rank, f, base + i * transfer, transfer)
                .unwrap();
        }
    }
    sim.posix_close_all(f);
    sim.finish().job.run_time()
}

#[test]
fn aggregating_small_sequential_writes_wins_big() {
    let volume = 8 << 20;
    let small = sequential_run(2048, volume);
    let aggregated = sequential_run(4 << 20, volume);
    assert!(
        small / aggregated > 20.0,
        "expected large speedup, got {:.1}×",
        small / aggregated
    );
}

#[test]
fn collective_writes_beat_interleaved_posix() {
    let record = 47_008u64;
    let waves = 64u64;
    // POSIX, lockstep interleave.
    let mut sim = Simulation::new(SimConfig::default().with_ranks(4));
    let f = sim.posix_open_all("/w/hard").unwrap();
    for i in 0..waves {
        for rank in 0..4u32 {
            sim.posix_write(rank, f, (i * 4 + u64::from(rank)) * record, record)
                .unwrap();
        }
        sim.barrier();
    }
    sim.posix_close_all(f);
    let posix_time = sim.finish().job.run_time();

    // Collective two-phase.
    let mut sim = Simulation::new(SimConfig::default().with_ranks(4));
    let f = sim.mpi_file_open("/w/hard").unwrap();
    for i in 0..waves {
        let reqs: Vec<(u32, u64, u64)> = (0..4u32)
            .map(|r| (r, (i * 4 + u64::from(r)) * record, record))
            .collect();
        sim.mpi_write_collective(f, &reqs).unwrap();
    }
    sim.mpi_file_close(f).unwrap();
    let coll_time = sim.finish().job.run_time();

    assert!(
        posix_time / coll_time > 1.5,
        "expected collective speedup, got {:.2}× ({posix_time:.3}s vs {coll_time:.3}s)",
        posix_time / coll_time
    );
}

#[test]
fn random_writes_gain_nothing_from_reissuing() {
    // The negative control: identical random patterns cost the same. What
    // matters for ION's honesty is that random offsets do NOT benefit from
    // larger client buffers (there is nothing adjacent to merge).
    let run = |seed: u64| {
        let mut sim = Simulation::new(SimConfig::default().with_ranks(4));
        let f = sim.posix_open_all("/w/rnd").unwrap();
        let mut rngs: Vec<SmallRng> = (0..4u32)
            .map(|r| SmallRng::seed_from_u64(seed ^ u64::from(r)))
            .collect();
        for _ in 0..256u64 {
            for rank in 0..4u32 {
                let off = rngs[rank as usize].gen_range(0..4096u64) * 4096;
                sim.posix_write(rank, f, off, 4096).unwrap();
            }
        }
        sim.posix_close_all(f);
        sim.finish().job.run_time()
    };
    let a = run(7);
    let b = run(7);
    assert!((a - b).abs() < 1e-12, "deterministic replay");
}

#[test]
fn aligned_offsets_beat_misaligned_ones() {
    let run = |shift: u64| {
        let mut sim = Simulation::new(SimConfig::default().with_ranks(2));
        let f = sim.posix_open_all("/w/align").unwrap();
        for i in 0..64u64 {
            for rank in 0..2u32 {
                let base = u64::from(rank) * (256 << 20);
                sim.posix_write(rank, f, base + i * (1 << 20) + shift, 1 << 20)
                    .unwrap();
            }
        }
        sim.posix_close_all(f);
        sim.finish().job.run_time()
    };
    let misaligned = run(2688);
    let aligned = run(0);
    assert!(
        misaligned > aligned,
        "misaligned {misaligned} must cost more than aligned {aligned}"
    );
}
