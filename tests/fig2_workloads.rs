//! Integration tests for the Figure 2 evaluation: ION against ground-truth
//! IO500 workloads.
//!
//! Each test generates one controlled trace (scaled down from the paper's
//! sizes), runs the full ION pipeline, and asserts the expectations that
//! Figure 2 reports: every injected issue detected, with the mitigations
//! ION is praised for (aggregatable small ops, conflict-free shared files)
//! qualified correctly.

use ion::pipeline::IonPipeline;
use ion_repro::{accuracy, score_report};
use workloads::ior::{
    ior_easy_1mb_fpp, ior_easy_1mb_shared, ior_easy_2kb_shared, ior_hard, ior_rnd4k,
};
use workloads::mdworkbench::MdWorkbench;
use workloads::Workload;

fn check(workload: &dyn Workload) -> (ion::IonReport, f64) {
    let log = workload.generate();
    let report = IonPipeline::new().run(&log);
    let scores = score_report(&report, &workload.ground_truth());
    let acc = accuracy(&scores);
    if acc < 1.0 {
        for s in &scores {
            if !s.hit {
                let raw = report
                    .diagnosis(&s.issue)
                    .map_or("(skipped)", |d| d.raw.as_str());
                eprintln!(
                    "[{}] issue {} expected {:?} got {:?}\n{raw}",
                    workload.name(),
                    s.issue,
                    s.expected,
                    s.got
                );
            }
        }
    }
    (report, acc)
}

#[test]
fn ior_easy_2kb_shared_matches_ground_truth() {
    let w = ior_easy_2kb_shared(0.25);
    let (report, acc) = check(&w);
    assert_eq!(acc, 1.0);
    // Shape claims from Figure 2 row 1: small ops flagged but aggregatable,
    // ~99.8% misalignment, POSIX-only noted.
    let small = report.diagnosis("small-io").unwrap();
    assert!(small.raw.contains("consecutive"), "{}", small.raw);
    let mis = report.diagnosis("misaligned-io").unwrap();
    let pct = mis
        .metrics
        .get("file_misaligned_pct")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!((pct - 99.8).abs() < 0.5, "misaligned {pct}%");
}

#[test]
fn ior_easy_1mb_shared_matches_ground_truth() {
    let w = ior_easy_1mb_shared(0.25);
    let (report, acc) = check(&w);
    assert_eq!(acc, 1.0);
    // "0.0% misalignment rate" and "no overlapping operations within the
    // same stripe".
    let mis = report.diagnosis("misaligned-io").unwrap();
    assert_eq!(
        mis.metrics.get("file_misaligned_pct").unwrap().as_f64(),
        Some(0.0)
    );
    let shared = report.diagnosis("shared-file-contention").unwrap();
    assert!(
        shared.raw.contains("no stripe conflicts")
            || shared.raw.contains("not lead")
            || shared.raw.contains("lock overhead"),
        "{}",
        shared.raw
    );
}

#[test]
fn ior_easy_1mb_fpp_matches_ground_truth() {
    let w = ior_easy_1mb_fpp(0.25);
    let (report, acc) = check(&w);
    assert_eq!(acc, 1.0);
    // File-per-process noted: each file accessed by exactly one rank.
    let shared = report.diagnosis("shared-file-contention").unwrap();
    assert!(
        shared.raw.contains("exclusively by a single rank"),
        "{}",
        shared.raw
    );
}

#[test]
fn ior_hard_matches_ground_truth() {
    let w = ior_hard(0.01);
    let (report, acc) = check(&w);
    assert_eq!(acc, 1.0);
    // Contention on the shared file must be a hard (unmitigated) detection.
    let shared = report.diagnosis("shared-file-contention").unwrap();
    assert_eq!(shared.detection, Some(ion::Detection::Yes));
    assert!(shared.raw.contains("lock"), "{}", shared.raw);
    // Small I/O must NOT be excused as aggregatable here.
    let small = report.diagnosis("small-io").unwrap();
    assert_eq!(small.detection, Some(ion::Detection::Yes));
}

#[test]
fn ior_rnd4k_matches_ground_truth() {
    let w = ior_rnd4k(0.05);
    let (report, acc) = check(&w);
    assert_eq!(acc, 1.0);
    // ~99.6% misalignment, random access detected hard.
    let mis = report.diagnosis("misaligned-io").unwrap();
    let pct = mis
        .metrics
        .get("file_misaligned_pct")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!((pct - 99.6).abs() < 0.6, "misaligned {pct}%");
    let rnd = report.diagnosis("random-access").unwrap();
    assert_eq!(rnd.detection, Some(ion::Detection::Yes));
}

#[test]
fn md_workbench_matches_ground_truth() {
    let w = MdWorkbench::scaled(0.5);
    let (report, acc) = check(&w);
    assert_eq!(acc, 1.0);
    let meta = report.diagnosis("metadata-load").unwrap();
    assert!(meta.is_detected(), "{}", meta.raw);
    assert!(meta.raw.contains("metadata servers"), "{}", meta.raw);
}

#[test]
fn every_fig2_workload_reports_interface_usage() {
    // All six IO500 traces are POSIX-only multi-rank jobs; ION must note
    // the absence of MPI-IO in each ("does not use the MPI-IO module").
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(ior_easy_2kb_shared(0.05)),
        Box::new(ior_easy_1mb_shared(0.05)),
        Box::new(ior_easy_1mb_fpp(0.05)),
        Box::new(ior_hard(0.002)),
        Box::new(ior_rnd4k(0.01)),
        Box::new(MdWorkbench::scaled(0.2)),
    ];
    for w in workloads {
        let log = w.generate();
        let report = IonPipeline::new().run(&log);
        let iface = report.diagnosis("interface-usage").unwrap();
        assert!(iface.is_detected(), "[{}] {}", w.name(), iface.raw);
    }
}
