//! Integration tests for the Figure 3 evaluation: ION vs Drishti on the
//! OpenPMD and E2E application traces (baseline and optimized).
//!
//! The paper's comparison claims, which these tests pin down:
//!
//! * both tools catch the headline issues (OpenPMD baseline: pervasive
//!   small + misaligned I/O; E2E baseline: misalignment + load imbalance);
//! * ION adds context Drishti cannot: aggregatability of the small
//!   operations, per-rank attribution of the imbalance, and — in the
//!   optimized traces — that residual random accesses are low-volume and
//!   that the surviving skew is a writer-subset pattern worth reviewing
//!   rather than an alarm.

use ion::pipeline::IonPipeline;
use workloads::e2e::{E2e, E2eVariant};
use workloads::openpmd::{OpenPmd, OpenPmdVariant};
use workloads::Workload;

#[test]
fn openpmd_baseline_both_tools_catch_small_and_misaligned() {
    let log = OpenPmd::scaled(OpenPmdVariant::Baseline, 0.02).generate();
    let drishti = drishti::analyze(&log);
    assert!(drishti.fired("small-writes"), "{}", drishti.render_text());
    assert!(drishti.fired("small-reads"));
    assert!(drishti.fired("misaligned-file"));
    assert!(drishti.fired("small-writes-shared-file"));

    let report = IonPipeline::new().run(&log);
    let small = report.diagnosis("small-io").unwrap();
    assert!(small.is_detected(), "{}", small.raw);
    let mis = report.diagnosis("misaligned-io").unwrap();
    assert!(mis.is_detected());
    // ION's extra context: the small ops are consecutive → aggregatable.
    assert!(
        small.raw.contains("consecutive") && small.raw.contains("aggregation"),
        "{}",
        small.raw
    );
    // And the HDF5-bug signature at the MPI-IO layer.
    let coll = report.diagnosis("collective-io").unwrap();
    assert!(coll.is_detected(), "{}", coll.raw);
    assert!(coll.raw.contains("independent"), "{}", coll.raw);
}

#[test]
fn openpmd_baseline_misalignment_near_total() {
    let log = OpenPmd::scaled(OpenPmdVariant::Baseline, 0.02).generate();
    let report = IonPipeline::new().run(&log);
    let mis = report.diagnosis("misaligned-io").unwrap();
    let pct = mis
        .metrics
        .get("file_misaligned_pct")
        .and_then(extractor::Value::as_f64)
        .unwrap();
    assert!(pct > 99.9, "paper reports 100% misaligned; got {pct}%");
}

#[test]
fn openpmd_optimized_ion_contextualizes_random_access() {
    let log = OpenPmd::scaled(OpenPmdVariant::Optimized, 0.05).generate();
    let report = IonPipeline::new().run(&log);
    let rnd = report.diagnosis("random-access").unwrap();
    // Detected but mitigated: count per rank and volume are low.
    assert_eq!(
        rnd.detection,
        Some(ion::Detection::Mitigated),
        "{}",
        rnd.raw
    );
    assert!(
        rnd.raw.contains("per rank"),
        "ION must contextualize per-rank counts: {}",
        rnd.raw
    );
    // The small-I/O issue must no longer be a hard detection.
    let small = report.diagnosis("small-io").unwrap();
    assert_ne!(small.detection, Some(ion::Detection::Yes), "{}", small.raw);
}

#[test]
fn openpmd_optimized_drishti_still_flags_random_reads() {
    // Drishti's fixed thresholds flag the random reads without the volume
    // context — at full-er scale the absolute threshold is crossed.
    let log = OpenPmd::scaled(OpenPmdVariant::Optimized, 0.7).generate();
    let drishti = drishti::analyze(&log);
    assert!(drishti.fired("random-reads"), "{}", drishti.render_text());
}

#[test]
fn e2e_baseline_both_tools_catch_misalignment_and_imbalance() {
    let log = E2e::scaled(E2eVariant::Baseline, 0.03).generate();
    let drishti = drishti::analyze(&log);
    assert!(
        drishti.fired("misaligned-file"),
        "{}",
        drishti.render_text()
    );
    assert!(drishti.fired("load-imbalance"));
    let insight = drishti.insight("load-imbalance").unwrap();
    assert!(
        insight.message.contains("3d_32_32_16_32_32_32.nc4"),
        "{}",
        insight.message
    );

    let report = IonPipeline::new().run(&log);
    let mis = report.diagnosis("misaligned-io").unwrap();
    assert!(mis.is_detected());
    let imb = report.diagnosis("load-imbalance").unwrap();
    assert_eq!(imb.detection, Some(ion::Detection::Yes), "{}", imb.raw);
    // ION attributes the imbalance to rank 0 specifically.
    assert!(imb.raw.contains("rank 0"), "{}", imb.raw);
    // And reports misaligned memory buffers, which Drishti words generically.
    assert!(mis.raw.contains("memory"), "{}", mis.raw);
}

#[test]
fn e2e_optimized_ion_recognizes_writer_subset() {
    let log = E2e::scaled(E2eVariant::Optimized, 0.25).generate(); // 256 ranks, 16 writers
    let report = IonPipeline::new().run(&log);
    // Misalignment persists (paper: 99.8% in both variants).
    let mis = report.diagnosis("misaligned-io").unwrap();
    assert!(mis.is_detected());
    // The load-imbalance diagnosis must surface the subset-of-writers note
    // rather than a plain rank-0 alarm.
    let imb = report.diagnosis("load-imbalance").unwrap();
    assert!(
        imb.raw.contains("subset"),
        "expected writer-subset note: {}",
        imb.raw
    );
    assert!(
        imb.raw.contains("intentional"),
        "ION should suggest the skew may be algorithmic: {}",
        imb.raw
    );
}

#[test]
fn e2e_optimized_writer_share_matches_paper_shape() {
    let log = E2e::scaled(E2eVariant::Optimized, 0.25).generate();
    let report = IonPipeline::new().run(&log);
    let imb = report.diagnosis("load-imbalance").unwrap();
    let share = imb
        .metrics
        .get("hot_share_pct")
        .and_then(extractor::Value::as_f64)
        .unwrap();
    // Paper: 64 of 1024 ranks contribute ~98.23% of writes.
    assert!(share > 90.0, "writer subset share {share}%");
    let hot = imb
        .metrics
        .get("hot_ranks")
        .and_then(extractor::Value::as_f64)
        .unwrap();
    let nranks = imb
        .metrics
        .get("nranks")
        .and_then(extractor::Value::as_f64)
        .unwrap();
    assert_eq!(hot as u32, 16);
    assert_eq!(nranks as u32, 256);
}

#[test]
fn ion_summaries_order_issues_by_severity() {
    let log = OpenPmd::scaled(OpenPmdVariant::Baseline, 0.02).generate();
    let report = IonPipeline::new().run(&log);
    assert!(
        report.summary.contains("Critical issues:"),
        "{}",
        report.summary
    );
    let critical_pos = report.summary.find("Critical issues:").unwrap();
    if let Some(minor_pos) = report.summary.find("Minor observations:") {
        assert!(critical_pos < minor_pos);
    }
}

#[test]
fn interactive_session_answers_followups_on_fig3_traces() {
    let log = E2e::scaled(E2eVariant::Baseline, 0.03).generate();
    let report = IonPipeline::new().run(&log);
    let mut session = report.session();
    let a = session.ask("why did you conclude there is load imbalance?");
    assert!(a.contains("reasoning") || a.contains("1."), "{a}");
    let b = session.ask("what imbalance_pct did you measure?");
    assert!(b.contains("imbalance_pct"), "{b}");
}
