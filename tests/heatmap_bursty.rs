//! Integration tests for the HEATMAP module and the bursty-io context:
//! a checkpointing application (long compute, short I/O stampedes) must be
//! diagnosed as bursty; a streaming application must not.

use darshan::log::LogWriter;
use ion::pipeline::IonPipeline;
use iosim::{SimConfig, Simulation};

/// Classic bulk-synchronous checkpointing: 50 s of compute, then all ranks
/// dump their state at once, repeated a few times.
fn checkpoint_app() -> darshan::log::Log {
    let mut sim = Simulation::new(SimConfig::default().with_ranks(4).with_exe("ckpt-app"));
    let f = sim.posix_open_all("/scratch/checkpoint.dat").unwrap();
    for epoch in 0..4u64 {
        for rank in 0..4u32 {
            sim.advance(rank, 50.0); // compute phase
        }
        sim.barrier();
        for rank in 0..4u32 {
            let base = (epoch * 4 + u64::from(rank)) * (8 << 20);
            for i in 0..8u64 {
                sim.posix_write(rank, f, base + i * (1 << 20), 1 << 20)
                    .unwrap();
            }
        }
    }
    sim.posix_close_all(f);
    sim.finish()
}

/// Continuous streaming writer: the same volume, no compute gaps.
fn streaming_app() -> darshan::log::Log {
    let mut sim = Simulation::new(SimConfig::default().with_ranks(4).with_exe("stream-app"));
    let f = sim.posix_open_all("/scratch/stream.dat").unwrap();
    for i in 0..32u64 {
        for rank in 0..4u32 {
            let base = u64::from(rank) * (64 << 20);
            sim.posix_write(rank, f, base + i * (1 << 20), 1 << 20)
                .unwrap();
            // Pace the writes so volume spreads across the run evenly.
            sim.advance(rank, 0.5);
        }
    }
    sim.posix_close_all(f);
    sim.finish()
}

#[test]
fn heatmap_records_present_and_conserve_bytes() {
    let log = checkpoint_app();
    assert_eq!(log.heatmap.len(), 4);
    let hm_bytes: u64 = log.heatmap.iter().map(|h| h.total_bytes()).sum();
    let counter_bytes: i64 = log
        .posix
        .iter()
        .map(|r| {
            r.get(darshan::counters::PosixCounter::POSIX_BYTES_READ)
                + r.get(darshan::counters::PosixCounter::POSIX_BYTES_WRITTEN)
        })
        .sum();
    assert_eq!(hm_bytes as i64, counter_bytes);
    // Bin width grew to cover the ~200 s run.
    let hm = &log.heatmap[0];
    assert!(hm.bin_width * hm.nbins() as f64 >= 150.0);
}

#[test]
fn heatmap_round_trips_through_binary_log() {
    let log = checkpoint_app();
    let bytes = LogWriter::from_log(log.clone()).finish().unwrap();
    let decoded = darshan::log::LogReader::read(&bytes).unwrap();
    assert_eq!(decoded.heatmap, log.heatmap);
    assert!(decoded.modules_present().contains(&"HEATMAP"));
}

#[test]
fn checkpoint_app_diagnosed_as_bursty() {
    let report = IonPipeline::new().run(&checkpoint_app());
    let bursty = report.diagnosis("bursty-io").expect("bursty-io analyzed");
    assert!(bursty.is_detected(), "{}", bursty.raw);
    assert!(bursty.raw.contains("bursty"), "{}", bursty.raw);
    let active = bursty
        .metrics
        .get("active_pct")
        .and_then(extractor::Value::as_f64)
        .unwrap();
    assert!(
        active < 50.0,
        "checkpointing app active {active}% of runtime"
    );
}

#[test]
fn streaming_app_not_bursty() {
    let report = IonPipeline::new().run(&streaming_app());
    let bursty = report.diagnosis("bursty-io").expect("bursty-io analyzed");
    assert!(!bursty.is_detected(), "{}", bursty.raw);
    assert!(bursty.raw.contains("spread over time"), "{}", bursty.raw);
}

#[test]
fn heatmap_csv_table_extracted() {
    let tables = extractor::extract_tables(&checkpoint_app());
    let t = tables.get("HEATMAP").expect("HEATMAP table");
    assert_eq!(t.len(), 4 * darshan::heatmap::HeatmapAccumulator::NBINS);
    // Column sums equal the heatmap totals.
    let total: i64 = t
        .column_values("write_bytes")
        .unwrap()
        .filter_map(|v| v.as_i64())
        .sum();
    assert_eq!(total as u64, 4 * 4 * 8 * (1u64 << 20));
}
