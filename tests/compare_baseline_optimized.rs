//! Integration test: the baseline→optimized comparison over the paper's
//! own application pairs reproduces the Figure 3 storyline as a diff.

use ion::compare::{compare, IssueChange};
use ion::pipeline::IonPipeline;
use workloads::e2e::{E2e, E2eVariant};
use workloads::openpmd::{OpenPmd, OpenPmdVariant};
use workloads::Workload;

#[test]
fn openpmd_fix_resolves_small_io_and_collective_decomposition() {
    let pipeline = IonPipeline::new();
    let before = pipeline.run(&OpenPmd::scaled(OpenPmdVariant::Baseline, 0.02).generate());
    let after = pipeline.run(&OpenPmd::scaled(OpenPmdVariant::Optimized, 0.02).generate());
    let c = compare(&before, &after);

    // The HDF5 fix resolves the decomposed-collective signature outright.
    let coll = c.delta("collective-io").unwrap();
    assert_eq!(coll.change, IssueChange::Resolved, "{coll:?}");

    // Small I/O stops being a problem (resolved or downgraded to a
    // low-volume mitigation, depending on residual attribute reads).
    let small = c.delta("small-io").unwrap();
    assert_ne!(small.after, Some(ion::Detection::Yes), "{small:?}");

    // Misalignment improves dramatically; the metric delta records it.
    let mis = c.delta("misaligned-io").unwrap();
    let moved = mis
        .metric_deltas
        .iter()
        .find(|(n, _, _)| n == "file_misaligned_pct")
        .expect("misalignment delta tracked");
    assert!(moved.1 > 99.0 && moved.2 < 80.0, "{moved:?}");

    // The fix trades in some random attribute reads — introduced, but only
    // as a mitigated observation.
    let rnd = c.delta("random-access").unwrap();
    assert_eq!(rnd.after, Some(ion::Detection::Mitigated), "{rnd:?}");

    let text = c.render_text();
    assert!(text.contains("resolved:"), "{text}");
}

#[test]
fn e2e_fix_resolves_load_imbalance_but_not_misalignment() {
    let pipeline = IonPipeline::new();
    let before = pipeline.run(&E2e::scaled(E2eVariant::Baseline, 0.03).generate());
    let after = pipeline.run(&E2e::scaled(E2eVariant::Optimized, 0.03).generate());
    let c = compare(&before, &after);

    // Disabling fill values removes the rank-0 alarm; the residual
    // writer-subset skew is reported as mitigated (likely algorithmic).
    let imb = c.delta("load-imbalance").unwrap();
    assert_eq!(imb.before, Some(ion::Detection::Yes));
    assert_eq!(imb.after, Some(ion::Detection::Mitigated), "{imb:?}");
    assert_eq!(imb.change, ion::compare::IssueChange::Improved);

    // Misalignment persists in both variants — unchanged, exactly as the
    // paper's Figure 3 shows Drishti and ION both reporting it twice.
    let mis = c.delta("misaligned-io").unwrap();
    assert_eq!(mis.change, IssueChange::Unchanged, "{mis:?}");
    assert_eq!(mis.after, Some(ion::Detection::Yes));
}
