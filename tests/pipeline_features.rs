//! Integration tests for the pipeline's extension features: consistency
//! checking, retrieval-based context selection, custom contexts, and the
//! binary-log round trip through the full stack.

use darshan::log::LogWriter;
use extractor::extract_tables;
use ion::analyzer::{Analyzer, SystemParams};
use ion::pipeline::IonPipeline;
use ion::IssueContext;
use workloads::ior::{ior_easy_2kb_shared, ior_rnd4k};
use workloads::mdworkbench::MdWorkbench;
use workloads::Workload;

#[test]
fn reports_on_real_traces_are_internally_consistent() {
    for w in [
        Box::new(ior_easy_2kb_shared(0.1)) as Box<dyn Workload>,
        Box::new(ior_rnd4k(0.02)),
        Box::new(MdWorkbench::scaled(0.25)),
    ] {
        let report = IonPipeline::new().run(&w.generate());
        let problems = report.consistency();
        let contradictions: Vec<_> = problems
            .iter()
            .filter(|p| p.level == ion::ConsistencyLevel::Contradiction)
            .collect();
        assert!(
            contradictions.is_empty(),
            "[{}] contradictions: {contradictions:?}",
            w.name()
        );
    }
}

#[test]
fn retrieval_pipeline_still_detects_primary_issue() {
    let w = ior_easy_2kb_shared(0.1);
    let log = w.generate();
    let full = IonPipeline::new().run(&log);
    let rag = IonPipeline::new().with_retrieval(4).run(&log);
    // Fewer analyses ran...
    assert!(rag.diagnoses.len() < full.diagnoses.len());
    assert!(rag.diagnoses.len() <= 4);
    // ...but the dominant small-io finding survives selection.
    let small = rag.diagnosis("small-io").expect("small-io retrieved");
    assert!(small.is_detected());
}

#[test]
fn retrieval_selects_metadata_context_for_metadata_trace() {
    let log = MdWorkbench::scaled(0.25).generate();
    let rag = IonPipeline::new().with_retrieval(4).run(&log);
    let meta = rag
        .diagnosis("metadata-load")
        .expect("metadata-load retrieved");
    assert!(meta.is_detected(), "{}", meta.raw);
}

#[test]
fn custom_context_participates_end_to_end() {
    let custom = r#"
ISSUE: tiny-job
TITLE: Trivially small job
MODULES: POSIX
A job that moves almost no data may not be worth optimizing at all.
COMPUTE volume:
  LOAD POSIX
  AGG bytes = sum(POSIX_BYTES_READ + POSIX_BYTES_WRITTEN)
  EMIT bytes
END
CONCLUDE IF bytes < 1000000 SEVERITY low: "the job moved only {bytes:human} in total"
"#;
    let mut contexts = ion::builtin_contexts();
    contexts.push(IssueContext {
        id: "tiny-job",
        text: custom.to_owned(),
    });
    let log = ior_easy_2kb_shared(0.01).generate(); // tiny volume
    let tables = extract_tables(&log);
    let analyzer = Analyzer::new().with_contexts(contexts);
    let result = analyzer.analyze(&tables, &SystemParams::from_log(&log));
    let d = result
        .diagnoses
        .iter()
        .find(|d| d.issue == "tiny-job")
        .expect("custom context analyzed");
    assert!(d.is_detected(), "{}", d.raw);
    assert!(d.raw.contains("KiB") || d.raw.contains("B"), "{}", d.raw);
}

#[test]
fn full_stack_round_trip_through_binary_log() {
    // generate → serialize → decode → extract → analyze must agree with
    // the in-memory path bit-for-bit.
    let log = ior_rnd4k(0.02).generate();
    let in_memory = IonPipeline::new().run(&log);
    let bytes = LogWriter::from_log(log).finish().unwrap();
    let from_bytes = IonPipeline::new().run_bytes(&bytes).unwrap();
    assert_eq!(in_memory, from_bytes);
}

#[test]
fn skipped_issues_are_reported_not_silently_dropped() {
    let log = ior_easy_2kb_shared(0.02).generate(); // POSIX only
    let report = IonPipeline::new().run(&log);
    assert!(report.skipped.contains(&"collective-io".to_owned()));
    assert!(report
        .render_text()
        .contains("skipped for lack of module data"));
}
