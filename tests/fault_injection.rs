//! Fault-injection integration tests: a degraded storage target must
//! surface as a straggler diagnosis through the whole stack — simulator,
//! Darshan counters, and both analyzers.

use ion::pipeline::IonPipeline;
use iosim::pfs::StripeLayout;
use iosim::{SimConfig, Simulation};

/// Four ranks, file-per-process on single-stripe files; rank 2's OST is
/// degraded 20×.
fn degraded_run() -> darshan::log::Log {
    let config = SimConfig::default()
        .with_ranks(4)
        .with_exe("fpp-writer")
        .with_layout(StripeLayout {
            stripe_size: 1 << 20,
            stripe_width: 1,
            ost_offset: 0,
        });
    let mut sim = Simulation::new(config);
    let handles: Vec<_> = (0..4u32)
        .map(|r| sim.posix_open(r, &format!("/out/part.{r}")).unwrap())
        .collect();
    let victim = sim.fs().file(handles[2]).unwrap().layout.ost_offset as usize;
    sim.inject_slow_ost(victim, 20.0);
    for i in 0..64u64 {
        for rank in 0..4u32 {
            sim.posix_write(rank, handles[rank as usize], i * 65536, 65536)
                .unwrap();
        }
    }
    for (rank, h) in handles.iter().enumerate() {
        sim.posix_close(rank as u32, *h).unwrap();
    }
    sim.finish()
}

#[test]
fn ion_attributes_the_straggler_to_the_right_rank() {
    let log = degraded_run();
    let report = IonPipeline::new().run(&log);
    let strag = report.diagnosis("stragglers").expect("stragglers analyzed");
    assert!(strag.is_detected(), "{}", strag.raw);
    assert!(
        strag.raw.contains("rank 2"),
        "must name the degraded rank: {}",
        strag.raw
    );
    // Volume is balanced, so load-imbalance must NOT fire — the problem is
    // time, not bytes.
    let imb = report.diagnosis("load-imbalance").expect("analyzed");
    assert!(!imb.is_detected(), "{}", imb.raw);
}

#[test]
fn drishti_also_sees_the_straggler_spread() {
    let log = degraded_run();
    let report = drishti::analyze(&log);
    assert!(report.fired("stragglers"), "{}", report.render_text());
    let msg = &report.insight("stragglers").unwrap().message;
    assert!(msg.contains("spread"), "{msg}");
}

#[test]
fn healthy_run_has_no_straggler() {
    let config = SimConfig::default()
        .with_ranks(4)
        .with_layout(StripeLayout {
            stripe_size: 1 << 20,
            stripe_width: 1,
            ost_offset: 0,
        });
    let mut sim = Simulation::new(config);
    let handles: Vec<_> = (0..4u32)
        .map(|r| sim.posix_open(r, &format!("/out/part.{r}")).unwrap())
        .collect();
    for i in 0..64u64 {
        for rank in 0..4u32 {
            sim.posix_write(rank, handles[rank as usize], i * 65536, 65536)
                .unwrap();
        }
    }
    let report = IonPipeline::new().run(&sim.finish());
    let strag = report.diagnosis("stragglers").expect("analyzed");
    assert!(!strag.is_detected(), "{}", strag.raw);
    assert!(strag.raw.contains("uniform"), "{}", strag.raw);
}
