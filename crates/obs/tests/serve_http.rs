//! Integration tests for the live telemetry endpoint: a golden Prometheus
//! exposition and real HTTP round trips on an ephemeral port.

use ion_obs::json;
use ion_obs::metrics::{bucket_index, BUCKETS};
use ion_obs::render::Snapshot;
use ion_obs::serve::{render_prometheus, MetricsServer};
use ion_obs::HistogramSnapshot;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;

/// A synthetic snapshot with one of everything, values chosen so bucket
/// placement and quantiles are exact.
fn synthetic_snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    snap.counters.insert("llm.runs".into(), 10);
    snap.counters.insert("store.hit".into(), 7);
    snap.gauges.insert("batch.total".into(), 5.0);
    snap.gauges.insert("batch.completed".into(), 4.0);
    // Observations 3, 3, 900: two land in the le=4 bucket, one in le=1024.
    let mut buckets = [0u64; BUCKETS];
    buckets[bucket_index(3)] += 2;
    buckets[bucket_index(900)] += 1;
    snap.histograms.insert(
        "pipeline.ns".into(),
        HistogramSnapshot {
            count: 3,
            sum: 906,
            buckets,
        },
    );
    snap
}

/// The exposition format is a contract with external scrapers — pin it
/// byte for byte.
#[test]
fn prometheus_exposition_matches_golden() {
    let golden = "\
# TYPE ion_llm_runs counter
ion_llm_runs 10
# TYPE ion_store_hit counter
ion_store_hit 7
# TYPE ion_batch_completed gauge
ion_batch_completed 4
# TYPE ion_batch_total gauge
ion_batch_total 5
# TYPE ion_pipeline_ns histogram
ion_pipeline_ns_bucket{le=\"4\"} 2
ion_pipeline_ns_bucket{le=\"1024\"} 3
ion_pipeline_ns_bucket{le=\"+Inf\"} 3
ion_pipeline_ns_sum 906
ion_pipeline_ns_count 3
# TYPE ion_pipeline_ns_p50 gauge
ion_pipeline_ns_p50 4
# TYPE ion_pipeline_ns_p95 gauge
ion_pipeline_ns_p95 1024
# TYPE ion_pipeline_ns_p99 gauge
ion_pipeline_ns_p99 1024
";
    assert_eq!(render_prometheus(&synthetic_snapshot()), golden);
}

/// One plain-std HTTP GET; returns (status line, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    (head.lines().next().unwrap().to_owned(), body.to_owned())
}

#[test]
fn endpoints_serve_over_real_http() {
    let server = MetricsServer::bind_with(
        "127.0.0.1:0",
        Arc::new(synthetic_snapshot) as ion_obs::serve::SnapshotFn,
    )
    .unwrap();
    let addr = server.local_addr();

    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "ok\n");

    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, render_prometheus(&synthetic_snapshot()));

    let (status, body) = http_get(addr, "/progress");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let doc = json::parse(body.trim()).unwrap();
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("ion-obs/progress/1")
    );
    assert_eq!(doc.get("total").unwrap().as_u64(), Some(5));
    assert_eq!(doc.get("completed").unwrap().as_u64(), Some(4));
    assert_eq!(doc.get("failed").unwrap().as_u64(), Some(0));
    assert_eq!(doc.get("in_flight").unwrap().as_u64(), Some(0));

    let (status, _) = http_get(addr, "/no-such-route");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    // Repeated scrapes keep working (one connection per request).
    for _ in 0..3 {
        let (status, _) = http_get(addr, "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
    }

    server.shutdown();
}

#[test]
fn shutdown_stops_serving() {
    let server = MetricsServer::bind_with(
        "127.0.0.1:0",
        Arc::new(Snapshot::default) as ion_obs::serve::SnapshotFn,
    )
    .unwrap();
    let addr = server.local_addr();
    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    server.shutdown();
    // The accept loop is gone: a fresh request must not get an answer.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut stream) => {
            let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut out = String::new();
            let n = stream.read_to_string(&mut out).unwrap_or(0);
            assert_eq!(n, 0, "no response after shutdown, got {out:?}");
        }
    }
}
