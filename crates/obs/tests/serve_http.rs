//! Integration tests for the live telemetry endpoint: a golden Prometheus
//! exposition and real HTTP round trips on an ephemeral port.

use ion_obs::json;
use ion_obs::metrics::{bucket_index, BUCKETS};
use ion_obs::render::Snapshot;
use ion_obs::serve::{render_prometheus, MetricsServer};
use ion_obs::HistogramSnapshot;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;

/// A synthetic snapshot with one of everything, values chosen so bucket
/// placement and quantiles are exact.
fn synthetic_snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    snap.counters.insert("llm.runs".into(), 10);
    snap.counters.insert("store.hit".into(), 7);
    snap.gauges.insert("batch.total".into(), 5.0);
    snap.gauges.insert("batch.completed".into(), 4.0);
    // Observations 3, 3, 900: two land in the le=4 bucket, one in le=1024.
    let mut buckets = [0u64; BUCKETS];
    buckets[bucket_index(3)] += 2;
    buckets[bucket_index(900)] += 1;
    snap.histograms.insert(
        "pipeline.ns".into(),
        HistogramSnapshot {
            count: 3,
            sum: 906,
            buckets,
        },
    );
    snap
}

/// The exposition format is a contract with external scrapers — pin it
/// byte for byte.
#[test]
fn prometheus_exposition_matches_golden() {
    let golden = "\
# TYPE ion_llm_runs counter
ion_llm_runs 10
# TYPE ion_store_hit counter
ion_store_hit 7
# TYPE ion_batch_completed gauge
ion_batch_completed 4
# TYPE ion_batch_total gauge
ion_batch_total 5
# TYPE ion_pipeline_ns histogram
ion_pipeline_ns_bucket{le=\"4\"} 2
ion_pipeline_ns_bucket{le=\"1024\"} 3
ion_pipeline_ns_bucket{le=\"+Inf\"} 3
ion_pipeline_ns_sum 906
ion_pipeline_ns_count 3
# TYPE ion_pipeline_ns_p50 gauge
ion_pipeline_ns_p50 4
# TYPE ion_pipeline_ns_p95 gauge
ion_pipeline_ns_p95 1024
# TYPE ion_pipeline_ns_p99 gauge
ion_pipeline_ns_p99 1024
";
    assert_eq!(render_prometheus(&synthetic_snapshot()), golden);
}

/// One plain-std HTTP GET; returns (status line, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    (head.lines().next().unwrap().to_owned(), body.to_owned())
}

#[test]
fn endpoints_serve_over_real_http() {
    let server = MetricsServer::bind_with(
        "127.0.0.1:0",
        Arc::new(synthetic_snapshot) as ion_obs::serve::SnapshotFn,
    )
    .unwrap();
    let addr = server.local_addr();

    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "ok\n");

    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, render_prometheus(&synthetic_snapshot()));

    let (status, body) = http_get(addr, "/progress");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let doc = json::parse(body.trim()).unwrap();
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("ion-obs/progress/1")
    );
    assert_eq!(doc.get("total").unwrap().as_u64(), Some(5));
    assert_eq!(doc.get("completed").unwrap().as_u64(), Some(4));
    assert_eq!(doc.get("failed").unwrap().as_u64(), Some(0));
    assert_eq!(doc.get("in_flight").unwrap().as_u64(), Some(0));

    let (status, _) = http_get(addr, "/no-such-route");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    // Repeated scrapes keep working (one connection per request).
    for _ in 0..3 {
        let (status, _) = http_get(addr, "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
    }

    server.shutdown();
}

/// Slow handlers must not starve the listener: with a single accept
/// worker, several requests parked inside a blocking handler (the shape
/// of a `?wait_ms=` long-poll) may not delay an unrelated request.
/// Under the old one-connection-per-worker model this test deadlocks;
/// per-connection dispatch answers `/ping` while all blockers are parked.
#[test]
fn blocked_handlers_do_not_stall_other_requests() {
    use ion_obs::serve::{HttpServer, Response, Router};
    use std::sync::{Condvar, Mutex};

    struct Gate {
        open: Mutex<bool>,
        entered: Mutex<usize>,
        cv: Condvar,
    }
    let gate = Arc::new(Gate {
        open: Mutex::new(false),
        entered: Mutex::new(0),
        cv: Condvar::new(),
    });

    let handler_gate = Arc::clone(&gate);
    let router = Arc::new(
        Router::new()
            .route("GET", "/block", move |_| {
                *handler_gate.entered.lock().unwrap() += 1;
                handler_gate.cv.notify_all();
                let mut open = handler_gate.open.lock().unwrap();
                while !*open {
                    open = handler_gate.cv.wait(open).unwrap();
                }
                Response::text(200, "unblocked\n")
            })
            .route("GET", "/ping", |_| Response::text(200, "pong\n")),
    );
    let server = HttpServer::bind("127.0.0.1:0", router, 1).unwrap();
    let addr = server.local_addr();

    // Park three requests inside the handler — more than the one accept
    // worker could ever serve under a blocking model.
    let blockers: Vec<_> = (0..3)
        .map(|_| std::thread::spawn(move || http_get(addr, "/block")))
        .collect();
    {
        let mut entered = gate.entered.lock().unwrap();
        while *entered < 3 {
            entered = gate.cv.wait(entered).unwrap();
        }
    }

    // All three are provably parked; the listener must still answer.
    let (status, body) = http_get(addr, "/ping");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "pong\n");

    *gate.open.lock().unwrap() = true;
    gate.cv.notify_all();
    for blocker in blockers {
        let (status, _) = blocker.join().unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
    }
    server.shutdown();
}

/// Routing happens on the percent-decoded path: an escaped segment hits
/// the route registered under its literal form, and a decoded `%2F`
/// cannot escape a prefix mount because the decode runs before dispatch,
/// not per segment.
#[test]
fn router_decodes_percent_escapes_before_dispatch() {
    use ion_obs::serve::{HttpServer, Response, Router};

    let router = Arc::new(
        Router::new()
            .route("GET", "/files/a b", |_| Response::text(200, "spaced\n"))
            .prefix("GET", "/jobs/", |req: &ion_obs::serve::Request| {
                Response::text(200, format!("rest={}\n", &req.path["/jobs/".len()..]))
            }),
    );
    let server = HttpServer::bind("127.0.0.1:0", router, 1).unwrap();
    let addr = server.local_addr();

    let (status, body) = http_get(addr, "/files/a%20b");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "spaced\n");

    // An invalid escape passes through verbatim — no panic, and it does
    // not accidentally match the decoded route.
    let (status, _) = http_get(addr, "/files/a%2zb");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    // `%2F` decodes to `/` before routing: the request still lands in the
    // prefix handler, which sees the decoded remainder.
    let (status, body) = http_get(addr, "/jobs/a%2Fb");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "rest=a/b\n");

    server.shutdown();
}

/// The route table is ordered and first match wins: a prefix mounted
/// before an exact path under it shadows that path, and mounting the
/// exact route first is the way to carve an exception out of a prefix.
#[test]
fn router_first_match_order_decides_prefix_vs_exact_shadowing() {
    use ion_obs::serve::{HttpServer, Response, Router};

    let router = Arc::new(
        Router::new()
            // Exact before prefix: the carve-out wins for its own path.
            .route("GET", "/v1/jobs/stats", |_| Response::text(200, "stats\n"))
            .prefix("GET", "/v1/jobs/", |_| Response::text(200, "by-id\n"))
            // Exact after prefix: unreachable — the prefix shadows it.
            .route("GET", "/v1/jobs/shadowed", |_| {
                Response::text(200, "never\n")
            }),
    );
    let server = HttpServer::bind("127.0.0.1:0", router, 1).unwrap();
    let addr = server.local_addr();

    let (_, body) = http_get(addr, "/v1/jobs/stats");
    assert_eq!(body, "stats\n");
    let (_, body) = http_get(addr, "/v1/jobs/abc123");
    assert_eq!(body, "by-id\n");
    let (_, body) = http_get(addr, "/v1/jobs/shadowed");
    assert_eq!(body, "by-id\n", "ordered table: first match must win");

    server.shutdown();
}

/// The query string stays raw on `Request` — `query_param` returns the
/// raw value, `query_param_decoded` decodes `%XX` and `+` per value, and
/// an encoded `&` inside a value cannot split the pair list (which it
/// would if the whole target were decoded before parsing).
#[test]
fn router_query_parsing_keeps_raw_and_decodes_per_value() {
    use ion_obs::serve::{HttpServer, Response, Router};

    let router = Arc::new(
        Router::new().route("GET", "/echo", |req: &ion_obs::serve::Request| {
            Response::text(
                200,
                format!(
                    "q={}|a={}|b={}|c={}\n",
                    req.query,
                    req.query_param("a").unwrap_or("-"),
                    req.query_param_decoded("b").unwrap_or_else(|| "-".into()),
                    req.query_param("c").unwrap_or("-"),
                ),
            )
        }),
    );
    let server = HttpServer::bind("127.0.0.1:0", router, 1).unwrap();
    let addr = server.local_addr();

    let (status, body) = http_get(addr, "/echo?a=1&b=two%20words%26more+x");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(
        body,
        "q=a=1&b=two%20words%26more+x|a=1|b=two words&more x|c=-\n"
    );

    // No query string at all: `query` is empty, params absent.
    let (_, body) = http_get(addr, "/echo");
    assert_eq!(body, "q=|a=-|b=-|c=-\n");

    // Duplicate keys: first occurrence wins; a key without `=` is not a
    // pair and is skipped rather than matched with an empty value.
    let (_, body) = http_get(addr, "/echo?a=first&a=second&c&b=%2B");
    assert_eq!(body, "q=a=first&a=second&c&b=%2B|a=first|b=+|c=-\n");

    server.shutdown();
}

#[test]
fn shutdown_stops_serving() {
    let server = MetricsServer::bind_with(
        "127.0.0.1:0",
        Arc::new(Snapshot::default) as ion_obs::serve::SnapshotFn,
    )
    .unwrap();
    let addr = server.local_addr();
    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    server.shutdown();
    // The accept loop is gone: a fresh request must not get an answer.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut stream) => {
            let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut out = String::new();
            let n = stream.read_to_string(&mut out).unwrap_or(0);
            assert_eq!(n, 0, "no response after shutdown, got {out:?}");
        }
    }
}
