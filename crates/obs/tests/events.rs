//! Integration tests for the structured event stream: backpressure
//! semantics, writer flush guarantees and JSONL round-trips.

use ion_obs::events::{Event, EventRing, EventWriter, Value, DEFAULT_CAPACITY, SCHEMA};
use ion_obs::json::{self, Json};
use std::borrow::Cow;
use std::sync::Arc;

fn tmp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ion-obs-events-{tag}-{}.jsonl", std::process::id()))
}

/// Producers hitting a full ring are never blocked: every push returns
/// immediately, overflow is dropped and counted, and nothing queued is
/// lost.
#[test]
fn backpressure_drops_are_counted_not_blocked() {
    const CAPACITY: usize = 64;
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 200;
    let ring = Arc::new(EventRing::new(CAPACITY));
    // No consumer runs during this burst, so the ring must saturate.
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let ring = Arc::clone(&ring);
            scope.spawn(move || {
                for i in 0..PER_PRODUCER {
                    // Either enqueued or dropped — push never waits.
                    let _ = ring.push(
                        "burst",
                        vec![
                            (Cow::Borrowed("producer"), Value::U64(p as u64)),
                            (Cow::Borrowed("i"), Value::U64(i as u64)),
                        ],
                    );
                }
            });
        }
    });
    let queued = ring.drain();
    let dropped = ring.dropped();
    assert_eq!(queued.len(), CAPACITY, "ring saturated exactly at capacity");
    assert_eq!(
        queued.len() + dropped as usize,
        PRODUCERS * PER_PRODUCER,
        "every push is accounted: enqueued or dropped"
    );
    // Drained batches come out strictly seq-ordered.
    for pair in queued.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
    }
}

/// With the ring large enough to never overflow, `finish()` flushes every
/// event produced before it — concurrent producers included — and the file
/// parses back line for line.
#[test]
fn writer_flushes_everything_under_capacity() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 500;
    let path = tmp_path("flush");
    let ring = Arc::new(EventRing::new(DEFAULT_CAPACITY));
    let writer = EventWriter::spawn(Arc::clone(&ring), &path).unwrap();
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let ring = Arc::clone(&ring);
            scope.spawn(move || {
                for i in 0..PER_PRODUCER {
                    assert!(ring.push(
                        "work",
                        vec![
                            (Cow::Borrowed("producer"), Value::U64(p as u64)),
                            (Cow::Borrowed("i"), Value::U64(i as u64)),
                        ],
                    ));
                }
            });
        }
    });
    let stats = writer.finish().unwrap();
    assert_eq!(stats.written, (PRODUCERS * PER_PRODUCER) as u64);
    assert_eq!(stats.dropped, 0);

    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines = text.lines();
    let header = json::parse(lines.next().unwrap()).unwrap();
    assert_eq!(header.get("schema").unwrap().as_str(), Some(SCHEMA));
    assert_eq!(
        header.get("capacity").unwrap().as_u64(),
        Some(DEFAULT_CAPACITY as u64)
    );
    let events: Vec<Event> = lines
        .map(|line| Event::from_json(&json::parse(line).unwrap()).unwrap())
        .collect();
    assert_eq!(events.len(), PRODUCERS * PER_PRODUCER);
    // seq strictly increases and is gap-free (no drops happened).
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64 + 1);
        assert_eq!(e.kind, "work");
    }
    // Every (producer, i) pair made it out exactly once.
    let mut seen = vec![[false; PER_PRODUCER]; PRODUCERS];
    for e in &events {
        let Some(&Value::U64(p)) = e.field("producer") else {
            panic!("missing producer field");
        };
        let Some(&Value::U64(i)) = e.field("i") else {
            panic!("missing i field");
        };
        assert!(!seen[p as usize][i as usize], "duplicate event {p}/{i}");
        seen[p as usize][i as usize] = true;
    }
    let _ = std::fs::remove_file(&path);
}

/// Under deliberate overflow the writer stays correct: written + dropped
/// covers every push, the file parses, and drops surface in the stats.
#[test]
fn writer_accounts_drops_under_overflow() {
    let path = tmp_path("overflow");
    let ring = Arc::new(EventRing::new(8));
    let writer = EventWriter::spawn(Arc::clone(&ring), &path).unwrap();
    const TOTAL: usize = 50_000;
    for i in 0..TOTAL {
        let _ = ring.push("flood", vec![(Cow::Borrowed("i"), Value::U64(i as u64))]);
    }
    let stats = writer.finish().unwrap();
    assert_eq!(stats.written + stats.dropped, TOTAL as u64);
    assert!(stats.written >= 8, "at least one full ring was flushed");

    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines = text.lines();
    let header = json::parse(lines.next().unwrap()).unwrap();
    assert_eq!(header.get("schema").unwrap().as_str(), Some(SCHEMA));
    let mut last_seq = 0;
    let mut written = 0u64;
    for line in lines {
        let event = Event::from_json(&json::parse(line).unwrap()).unwrap();
        assert!(event.seq > last_seq, "seq order survives drops");
        last_seq = event.seq;
        written += 1;
    }
    assert_eq!(written, stats.written);
    let _ = std::fs::remove_file(&path);
}

/// Events carrying every value type survive the file round trip.
#[test]
fn jsonl_file_round_trips_all_value_types() {
    let path = tmp_path("types");
    let ring = Arc::new(EventRing::new(16));
    let writer = EventWriter::spawn(Arc::clone(&ring), &path).unwrap();
    assert!(ring.push(
        "typed",
        vec![
            (Cow::Borrowed("count"), Value::U64(u64::from(u32::MAX) + 1)),
            (Cow::Borrowed("rate"), Value::F64(0.375)),
            (
                Cow::Borrowed("path"),
                Value::Str("trace \"quoted\"\nwith\tescapes\\".into()),
            ),
            (Cow::Borrowed("hit"), Value::Bool(false)),
        ],
    ));
    let stats = writer.finish().unwrap();
    assert_eq!(stats.written, 1);
    let text = std::fs::read_to_string(&path).unwrap();
    let line = text.lines().nth(1).unwrap();
    let event = Event::from_json(&json::parse(line).unwrap()).unwrap();
    assert_eq!(event.kind, "typed");
    assert_eq!(
        event.field("count"),
        Some(&Value::U64(u64::from(u32::MAX) + 1))
    );
    assert_eq!(event.field("rate"), Some(&Value::F64(0.375)));
    assert_eq!(
        event.field("path"),
        Some(&Value::Str("trace \"quoted\"\nwith\tescapes\\".into()))
    );
    assert_eq!(event.field("hit"), Some(&Value::Bool(false)));

    // Non-event lines are rejected, not misparsed.
    assert!(Event::from_json(&json::parse(text.lines().next().unwrap()).unwrap()).is_none());
    assert!(Event::from_json(&Json::Null).is_none());
    let _ = std::fs::remove_file(&path);
}
