//! Property tests for `ion-obs`: exact concurrent counting, histogram
//! merge algebra, and span-tree well-formedness under arbitrary
//! open/close orderings.

use ion_obs::metrics::{HistogramSnapshot, Registry};
use ion_obs::span::{Parent, SpanGuard, SpanStore};
use proptest::prelude::*;
use std::borrow::Cow;
use std::collections::HashMap;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let reg = Registry::new();
    let h = reg.histogram("h");
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn concurrent_counter_sums_exactly(
        threads in 1usize..8,
        per_thread in 1u64..200,
    ) {
        let reg = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let c = reg.counter("hits");
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        c.add(1);
                    }
                });
            }
        });
        prop_assert_eq!(reg.counter("hits").get(), threads as u64 * per_thread);
    }

    #[test]
    fn histogram_merge_commutative_and_associative(
        a in proptest::collection::vec(0u64..=u64::MAX, 0..32),
        b in proptest::collection::vec(0u64..=u64::MAX, 0..32),
        c in proptest::collection::vec(0u64..=u64::MAX, 0..32),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
        // Merging is lossless for count and sum.
        let m = sa.merge(&sb);
        prop_assert_eq!(m.count, sa.count + sb.count);
        prop_assert_eq!(m.sum, sa.sum.wrapping_add(sb.sum));
    }

    #[test]
    fn histogram_buckets_account_for_every_observation(
        values in proptest::collection::vec(0u64..=u64::MAX, 0..64),
    ) {
        let snap = snapshot_of(&values);
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), values.len() as u64);
    }

    #[test]
    fn span_tree_well_formed_under_arbitrary_orderings(
        ops in proptest::collection::vec(0u8..10, 1..48),
    ) {
        let store = SpanStore::new();
        let mut open: Vec<SpanGuard<'_>> = Vec::new();
        let mut opened = 0usize;
        for op in ops {
            // Bias toward opening so deep stacks occur; close a *random*
            // open guard (often not the innermost) otherwise.
            if open.is_empty() || op < 6 {
                open.push(store.open(Cow::Borrowed("s"), Parent::Current));
                opened += 1;
            } else {
                let idx = usize::from(op) % open.len();
                drop(open.remove(idx));
            }
        }
        drop(open);

        let spans = store.finished();
        prop_assert_eq!(spans.len(), opened, "every opened span is recorded");

        let by_id: HashMap<_, _> = spans.iter().map(|s| (s.id, s)).collect();
        prop_assert_eq!(by_id.len(), spans.len(), "ids are unique");
        for span in &spans {
            prop_assert!(span.start_ns <= span.end_ns);
            if let Some(parent_id) = span.parent {
                let parent = by_id.get(&parent_id).expect("parent recorded");
                prop_assert!(parent_id < span.id, "parents open before children");
                prop_assert!(
                    parent.start_ns <= span.start_ns && span.end_ns <= parent.end_ns,
                    "child interval nested in parent"
                );
            }
        }
    }
}
