//! Minimal JSON reader/escaper for the observability tooling.
//!
//! The workspace is offline (no `serde_json`), and the only JSON this
//! crate must *read back* is its own output: `ion-obs/1` snapshot
//! documents (the diff gate) and `ion-obs/events/2` JSONL lines (tests,
//! tail tooling). This is a small recursive-descent parser over that
//! grammar — full JSON minus exotica nobody emits here (`\uXXXX` escapes
//! are decoded for the BMP only).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Numbers are `f64`, which is exact for the ranges
/// this crate emits (nanosecond timestamps stay well below 2⁵³).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// String literal.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, key-sorted.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member by key (`None` on non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integral numeric value as `u64`.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String value.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document, requiring it to span the whole input.
///
/// # Errors
///
/// Returns a [`JsonError`] describing the first syntax problem.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(value)
}

/// JSON string literal for `s` (quotes + mandatory escapes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty string"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        // Grab the maximal run of number-ish bytes and let the f64 parser
        // arbitrate validity (commas/brackets terminate the run).
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, {"b": "c"}], "d": {"e": null}}"#).unwrap();
        assert_eq!(doc.get("d").unwrap().get("e"), Some(&Json::Null));
        let Json::Arr(items) = doc.get("a").unwrap() else {
            panic!("expected array");
        };
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].get("b").unwrap().as_str(), Some("c"));
    }

    #[test]
    fn escape_round_trips() {
        let original = "line1\nline2\t\"quoted\" \\slash\u{1} ünïcode";
        let parsed = parse(&escape(original)).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn snapshot_document_parses() {
        // The real thing this parser exists for.
        let snap = crate::render::Snapshot::default();
        assert!(parse(&snap.to_json()).unwrap().get("schema").is_some());
    }
}
