//! `ion-obs` — observability for the ION pipeline.
//!
//! Three pieces, usable together or standalone:
//!
//! - **Hierarchical spans** ([`span!`], [`SpanGuard`]): RAII guards that
//!   record wall time, parent/child structure (via a thread-local current
//!   span, with explicit hand-off across threads through
//!   [`current_span`] / [`span_under`]) and `key=value` attributes.
//! - **Metrics registry** ([`Registry`]): thread-safe counters, gauges and
//!   log₂-bucketed histograms. Hot-path updates are a single atomic RMW;
//!   name resolution takes a `parking_lot` read lock.
//! - **Renderers** ([`Snapshot::render_profile`], [`Snapshot::to_json`]):
//!   a human-readable profile tree and a machine-readable JSON document
//!   (the `BENCH_*.json` trajectory schema, `"schema": "ion-obs/1"`).
//!
//! The global sink is **off by default**. Instrumented code pays one
//! relaxed atomic load per call site while disabled — no clock reads, no
//! allocation, no locking:
//!
//! ```
//! ion_obs::enable();
//! {
//!     let mut outer = ion_obs::span!("decode", bytes = 4096u64);
//!     let _ = &mut outer;
//!     let _inner = ion_obs::span!("decode.posix");
//!     ion_obs::counter("records", 12);
//! }
//! let snap = ion_obs::snapshot();
//! assert_eq!(snap.counter("records"), 12);
//! assert_eq!(snap.spans.len(), 2);
//! ion_obs::disable();
//! ion_obs::reset();
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

pub mod diff;
pub mod events;
pub mod json;
pub mod metrics;
pub mod render;
pub mod serve;
pub mod span;
pub mod trace;

pub use metrics::{HistogramSnapshot, Registry};
pub use span::{SpanData, SpanGuard, SpanId, SpanStore, TraceContext};

/// Whether the global sink records anything.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is the global sink recording? One relaxed load — the only cost
/// instrumented code pays when profiling is off.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Start recording into the global sink.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stop recording. Already-captured data stays until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

static GLOBAL: std::sync::OnceLock<(SpanStore, Registry)> = std::sync::OnceLock::new();

/// Global span store + metrics registry.
fn global() -> &'static (SpanStore, Registry) {
    GLOBAL.get_or_init(|| (SpanStore::new(), Registry::new()))
}

/// Whether `store` is the global span store — span open/close events go to
/// the global event stream only for the global store, so standalone stores
/// (property tests, embedders) stay silent.
pub(crate) fn is_global_span_store(store: &SpanStore) -> bool {
    GLOBAL.get().is_some_and(|(s, _)| std::ptr::eq(s, store))
}

/// Clear all recorded spans and metrics (keeps the enabled flag as-is).
pub fn reset() {
    let (spans, registry) = global();
    spans.clear();
    registry.clear();
}

/// Open a span under the calling thread's current span. No-op when the
/// sink is disabled.
#[must_use]
pub fn span(name: impl Into<std::borrow::Cow<'static, str>>) -> SpanGuard<'static> {
    if !enabled() {
        return SpanGuard::noop();
    }
    global().0.open(name.into(), span::Parent::Current)
}

/// Open a span under an explicit parent (e.g. captured on another thread
/// via [`current_span`] before spawning). No-op when the sink is disabled.
#[must_use]
pub fn span_under(
    parent: Option<SpanId>,
    name: impl Into<std::borrow::Cow<'static, str>>,
) -> SpanGuard<'static> {
    if !enabled() {
        return SpanGuard::noop();
    }
    global().0.open(name.into(), span::Parent::Explicit(parent))
}

/// The calling thread's innermost open span, for cross-thread hand-off.
#[must_use]
pub fn current_span() -> Option<SpanId> {
    if !enabled() {
        return None;
    }
    global().0.current()
}

/// Mint a fresh request-scoped trace id from the global span store.
/// Usable even while the sink is disabled (ids are cheap and the caller
/// may enable tracing later).
#[must_use]
pub fn mint_trace() -> TraceContext {
    global().0.mint_trace()
}

/// Install `ctx` as the calling thread's trace for the guard's lifetime;
/// every span and event the thread emits until the guard drops carries
/// `ctx.trace`. No-op when the sink is disabled.
#[must_use]
pub fn install_trace(ctx: TraceContext) -> span::TraceScope<'static> {
    if !enabled() {
        return span::TraceScope::noop();
    }
    global().0.install_trace(ctx)
}

/// The calling thread's trace with `parent` advanced to the innermost
/// open span — capture this before handing work to another thread.
#[must_use]
pub fn current_trace() -> Option<TraceContext> {
    if !enabled() {
        return None;
    }
    global().0.current_trace()
}

/// Remove and return every finished global span belonging to `trace`
/// (clamped into a consistent tree). See [`SpanStore::take_trace`].
#[must_use]
pub fn take_trace(trace: u64) -> Vec<SpanData> {
    global().0.take_trace(trace)
}

/// `(trace id, innermost span id)` for the calling thread, used by the
/// event stream to stamp attribution fields onto every emitted event.
pub(crate) fn thread_trace_ids() -> Option<(u64, Option<u64>)> {
    GLOBAL.get().and_then(|(s, _)| s.thread_trace_ids())
}

/// Add `delta` to the named global counter. No-op when disabled. With the
/// event stream on, the delta also flows out as a `counter.add` event.
pub fn counter(name: &str, delta: u64) {
    if enabled() {
        global().1.counter(name).add(delta);
        if events::enabled() {
            events::emit(
                "counter.add",
                vec![
                    ("name".into(), events::Value::from(name)),
                    ("delta".into(), events::Value::from(delta)),
                ],
            );
        }
    }
}

/// Set the named global gauge. No-op when disabled. With the event stream
/// on, the new value also flows out as a `gauge.set` event.
pub fn gauge(name: &str, value: f64) {
    if enabled() {
        global().1.gauge(name).set(value);
        if events::enabled() {
            events::emit(
                "gauge.set",
                vec![
                    ("name".into(), events::Value::from(name)),
                    ("value".into(), events::Value::from(value)),
                ],
            );
        }
    }
}

/// Record `value` into the named global log₂ histogram. No-op when
/// disabled.
pub fn observe(name: &str, value: u64) {
    if enabled() {
        global().1.histogram(name).observe(value);
    }
}

/// Add `delta` to a labeled counter family, e.g.
/// `counter_with("serve.jobs.submitted", &[("tenant", "acme")], 1)`.
/// Cardinality is bounded per family: past the cap the delta degrades to
/// the unlabeled family and `obs.labels.dropped` counts the overflow.
/// No-op when disabled.
pub fn counter_with(name: &str, labels: &[(&str, &str)], delta: u64) {
    if enabled() {
        global().1.counter_with(name, labels).add(delta);
    }
}

/// Record `value` into a labeled histogram family (same cardinality
/// policy as [`counter_with`]). No-op when disabled.
pub fn observe_with(name: &str, labels: &[(&str, &str)], value: u64) {
    if enabled() {
        global().1.histogram_with(name, labels).observe(value);
    }
}

/// Time `f` into the named histogram (nanoseconds) and return its output.
/// When disabled this is just the call to `f`.
pub fn timed<T>(name: &str, f: impl FnOnce() -> T) -> T {
    if !enabled() {
        return f();
    }
    let start = std::time::Instant::now();
    let out = f();
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    global().1.histogram(name).observe(ns);
    out
}

/// Consistent point-in-time copy of all global spans and metrics.
#[must_use]
pub fn snapshot() -> render::Snapshot {
    let (spans, registry) = global();
    render::Snapshot::capture(spans, registry)
}

/// Open a span with optional `key = value` attributes:
///
/// ```
/// ion_obs::enable();
/// let _guard = ion_obs::span!("decode", bytes = 4096u64, module = "posix");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let mut guard = $crate::span($name);
        $(guard.attr(stringify!($key), $value);)+
        guard
    }};
}

/// Emit a structured event into the global stream with optional
/// `key = value` fields. While the stream is disabled this is one relaxed
/// atomic load — field values are not even constructed:
///
/// ```
/// let ring = std::sync::Arc::new(ion_obs::events::EventRing::new(8));
/// ion_obs::events::install(ring.clone());
/// ion_obs::event!("llm.run.started", model = "expert-v1", steps = 0u64);
/// assert_eq!(ring.drain().len(), 1);
/// ion_obs::events::uninstall();
/// ```
#[macro_export]
macro_rules! event {
    ($kind:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::events::enabled() {
            $crate::events::emit(
                $kind,
                vec![$((
                    ::std::borrow::Cow::Borrowed(stringify!($key)),
                    $crate::events::Value::from($value),
                )),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global sink is process-wide state and `cargo test` runs tests on
    // concurrent threads, so every test touching it serializes here.
    fn with_global_sink(f: impl FnOnce()) {
        static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
        let _guard = LOCK.lock();
        reset();
        enable();
        f();
        disable();
        reset();
    }

    #[test]
    fn disabled_sink_records_nothing() {
        with_global_sink(|| {
            disable();
            {
                let _s = span!("ghost", tag = 1);
                counter("ghost", 5);
                observe("ghost_hist", 10);
                gauge("ghost_gauge", 1.0);
            }
            let snap = snapshot();
            assert!(snap.spans.is_empty());
            assert_eq!(snap.counter("ghost"), 0);
            assert!(snap.histograms.is_empty());
            enable(); // restore for with_global_sink's teardown
        });
    }

    #[test]
    fn spans_nest_on_one_thread() {
        with_global_sink(|| {
            {
                let _outer = span!("outer");
                let _inner = span!("inner");
            }
            let snap = snapshot();
            assert_eq!(snap.spans.len(), 2);
            let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
            let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
            assert_eq!(inner.parent, Some(outer.id));
            assert!(outer.start_ns <= inner.start_ns);
            assert!(inner.end_ns <= outer.end_ns);
        });
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        with_global_sink(|| {
            let parent_id = {
                let parent = span!("dispatch");
                let id = parent.id();
                let captured = current_span();
                assert_eq!(captured, id);
                std::thread::scope(|scope| {
                    scope.spawn(move || {
                        let _child = span_under(captured, "worker");
                    });
                });
                id.unwrap()
            };
            let snap = snapshot();
            let worker = snap.spans.iter().find(|s| s.name == "worker").unwrap();
            assert_eq!(worker.parent, Some(parent_id));
        });
    }

    #[test]
    fn timed_routes_to_histogram() {
        with_global_sink(|| {
            let v = timed("t", || 7);
            assert_eq!(v, 7);
            let snap = snapshot();
            assert_eq!(snap.histograms["t"].count, 1);
        });
    }
}
