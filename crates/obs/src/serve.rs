//! Dependency-free HTTP serving: a tiny request/response model, a
//! [`Router`], and a multi-worker [`HttpServer`] over `std::net` — plus
//! the telemetry routes (`/metrics`, `/progress`, `/healthz`) that the
//! original single-purpose metrics endpoint exposed.
//!
//! The plumbing is deliberately shared: [`MetricsServer`] is now a thin
//! wrapper over [`HttpServer`] with the telemetry routes installed, and
//! `ion-serve` mounts its job API *next to* those same routes on one
//! listener — one port serves `/metrics`, `/progress`, `/healthz` and
//! `/v1/jobs/...` together.
//!
//! Telemetry routes, all `GET`:
//!
//! - **`/metrics`** — Prometheus text exposition format (version 0.0.4):
//!   every counter, gauge and log₂ histogram in the registry, histogram
//!   quantile gauges (`_p50`/`_p95`/`_p99` from
//!   [`HistogramSnapshot::approx_quantile`]) included. Metric names are
//!   the registry names prefixed `ion_` with non-identifier characters
//!   mapped to `_` (`store.hit` → `ion_store_hit`).
//! - **`/progress`** — batch progress as JSON
//!   (`ion-obs/progress/1`), read from the `batch.*` gauges that
//!   `ion-store`'s batch front-end maintains.
//! - **`/healthz`** — liveness probe, plain `ok`.
//!
//! The server model stays minimal: blocking accept loops (one per
//! worker), one request per connection, `Connection: close`. Each
//! accepted connection is handed to its own short-lived handler thread,
//! so a slow handler (e.g. a `?wait_ms=` long-poll) never stalls the
//! accept loop or other requests — `/healthz` answers while long-polls
//! are parked. Total live connections are capped
//! ([`MAX_LIVE_CONNECTIONS`]); beyond the cap new connections get an
//! immediate `503` + `Retry-After` instead of queueing unboundedly.

use crate::metrics::HistogramSnapshot;
use crate::render::Snapshot;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Produces the snapshot a request is rendered from. The default server
/// uses the global sink; tests inject synthetic snapshots.
pub type SnapshotFn = Arc<dyn Fn() -> Snapshot + Send + Sync>;

/// Hard ceilings on request size: anything bigger is rejected with 400
/// before allocation. Trace submissions are the largest legitimate
/// payload; tens of MiB covers every bundled workload with headroom.
const MAX_HEAD_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 64 << 20;

/// Cap on concurrently served connections (handler threads) per server.
/// Sized so a swarm of long-polls cannot exhaust threads: beyond it, new
/// connections are answered `503` with `Retry-After` and closed.
pub const MAX_LIVE_CONNECTIONS: usize = 256;

/// One parsed HTTP request: method, split path/query, lowercased header
/// names, and the (possibly empty) body.
#[derive(Debug, Default, Clone)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Raw query string (empty when absent).
    pub query: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Value of a `key=value` query parameter, raw (no percent-decoding;
    /// for identifiers and integers). See [`Request::query_param_decoded`]
    /// for values that may carry encoded characters.
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// Percent-decoded value of a `key=value` query parameter, with `+`
    /// mapped to space — the form tenant names and filter values arrive
    /// in when a client URL-encodes them.
    #[must_use]
    pub fn query_param_decoded(&self, key: &str) -> Option<String> {
        self.query_param(key)
            .map(|v| percent_decode(&v.replace('+', " ")))
    }
}

/// Decode `%XX` escapes (invalid or truncated escapes pass through
/// verbatim rather than erroring — a filter that matches nothing beats a
/// 400 on a log-tailing loop).
#[must_use]
pub fn percent_decode(s: &str) -> String {
    fn hex(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            if let (Some(hi), Some(lo)) = (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                out.push(hi << 4 | lo);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `429`, …).
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: String,
    /// Extra headers (e.g. `Retry-After`), written verbatim.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A plain-text response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// An `application/json` response.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json".into(),
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Attach an extra header.
    #[must_use]
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Status",
        }
    }
}

type HandlerFn = dyn Fn(&Request) -> Response + Send + Sync;

struct Route {
    method: &'static str,
    path: String,
    prefix: bool,
    handler: Box<HandlerFn>,
}

/// An ordered route table: first match wins, exact paths or prefixes.
/// Unmatched paths get 404; a matched path with the wrong method 405.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let routes: Vec<String> = self
            .routes
            .iter()
            .map(|r| format!("{} {}{}", r.method, r.path, if r.prefix { "*" } else { "" }))
            .collect();
        f.debug_struct("Router").field("routes", &routes).finish()
    }
}

impl Router {
    /// An empty router (every request 404s).
    #[must_use]
    pub fn new() -> Router {
        Router::default()
    }

    /// Mount a handler on an exact path.
    #[must_use]
    pub fn route(
        mut self,
        method: &'static str,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.routes.push(Route {
            method,
            path: path.to_owned(),
            prefix: false,
            handler: Box::new(handler),
        });
        self
    }

    /// Mount a handler on a path prefix (the handler inspects the rest
    /// of `req.path` itself, e.g. `/v1/jobs/<id>/report`).
    #[must_use]
    pub fn prefix(
        mut self,
        method: &'static str,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.routes.push(Route {
            method,
            path: path.to_owned(),
            prefix: true,
            handler: Box::new(handler),
        });
        self
    }

    /// Add the telemetry routes (`/metrics`, `/progress`, `/healthz`)
    /// rendered from `provider` snapshots. Routes already mounted win, so
    /// a daemon can override `/healthz` with its own liveness logic.
    #[must_use]
    pub fn with_metrics_routes(self, provider: SnapshotFn) -> Router {
        let metrics = Arc::clone(&provider);
        self.route("GET", "/metrics", move |_| Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8".into(),
            headers: Vec::new(),
            body: render_prometheus(&metrics()).into_bytes(),
        })
        .route("GET", "/progress", move |_| {
            Response::json(200, render_progress(&provider()))
        })
        .route("GET", "/healthz", |_| Response::text(200, "ok\n"))
        .route("GET", "/version", |_| Response::json(200, version_json()))
    }

    /// Dispatch one request. Handler panics become 500s so one bad
    /// request cannot take a serving worker down.
    #[must_use]
    pub fn handle(&self, req: &Request) -> Response {
        let mut path_matched = false;
        for route in &self.routes {
            let hit = if route.prefix {
                req.path.starts_with(&route.path)
            } else {
                req.path == route.path
            };
            if !hit {
                continue;
            }
            path_matched = true;
            if route.method != req.method {
                continue;
            }
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (route.handler)(req)));
            return outcome.unwrap_or_else(|_| {
                crate::counter("http.handler_panics", 1);
                Response::text(500, "handler panicked\n")
            });
        }
        if path_matched {
            Response::text(405, format!("method {} not allowed\n", req.method))
        } else {
            Response::text(404, format!("no route {}\n", req.path))
        }
    }
}

/// A running HTTP server: `workers` blocking accept loops over one
/// listener, each dispatching accepted connections to per-connection
/// handler threads that serve one request through the shared [`Router`].
/// Dropping it (or calling [`HttpServer::shutdown`]) stops every accept
/// loop; in-flight handler threads finish their (bounded) request on
/// their own.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl HttpServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
    /// `router` on `workers.max(1)` accept threads.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound.
    pub fn bind(
        addr: impl ToSocketAddrs,
        router: Arc<Router>,
        workers: usize,
    ) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let live = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for n in 0..workers.max(1) {
            let listener = listener.try_clone()?;
            let stop = Arc::clone(&stop);
            let live = Arc::clone(&live);
            let router = Arc::clone(&router);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ion-obs-http-{n}"))
                    .spawn(move || {
                        for conn in listener.incoming() {
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            let Ok(stream) = conn else { continue };
                            dispatch_connection(stream, &live, &router);
                        }
                    })?,
            );
        }
        Ok(HttpServer {
            addr,
            stop,
            handles,
        })
    }

    /// The bound address (resolves the port when bound to `:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join every worker.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        self.stop.store(true, Ordering::Release);
        // Wake blocked accepts. The kernel hands pending connections to
        // whichever worker accepts first, so keep knocking until each
        // worker has provably exited.
        for handle in self.handles.drain(..) {
            while !handle.is_finished() {
                let _ = TcpStream::connect(self.addr);
                std::thread::yield_now();
            }
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// A running telemetry server: an [`HttpServer`] with exactly the
/// telemetry routes. Dropping it (or calling [`MetricsServer::shutdown`])
/// stops the accept loop.
#[derive(Debug)]
pub struct MetricsServer {
    inner: HttpServer,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
    /// the global sink's snapshot.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<MetricsServer> {
        Self::bind_with(addr, Arc::new(crate::snapshot))
    }

    /// Bind `addr` and serve snapshots produced by `provider`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound.
    pub fn bind_with(addr: impl ToSocketAddrs, provider: SnapshotFn) -> io::Result<MetricsServer> {
        let router = Arc::new(Router::new().with_metrics_routes(provider));
        Ok(MetricsServer {
            inner: HttpServer::bind(addr, router, 1)?,
        })
    }

    /// The bound address (resolves the port when bound to `:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Stop accepting and join the server thread.
    pub fn shutdown(self) {
        self.inner.shutdown();
    }
}

/// Decrements the live-connection count when the handler thread finishes
/// — or when a failed spawn drops the closure without ever running it.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

/// Hand an accepted connection to its own handler thread so a slow
/// handler (e.g. a long-poll) never blocks the accept loop. Over the
/// live cap the connection is answered `503` inline and closed.
fn dispatch_connection(mut stream: TcpStream, live: &Arc<AtomicUsize>, router: &Arc<Router>) {
    if live.load(Ordering::Acquire) >= MAX_LIVE_CONNECTIONS {
        if crate::enabled() {
            crate::counter("http.overloaded", 1);
        }
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let response =
            Response::text(503, "server at connection capacity\n").with_header("Retry-After", "1");
        let _ = write_response(&mut stream, &response);
        return;
    }
    live.fetch_add(1, Ordering::AcqRel);
    let guard = ConnGuard(Arc::clone(live));
    let router = Arc::clone(router);
    // Handler threads are detached: they end on their own once the
    // request is served (reads and long-polls are both bounded), so
    // shutdown never waits on an in-flight response.
    let spawned = std::thread::Builder::new()
        .name("ion-obs-conn".to_owned())
        .spawn(move || {
            let _guard = guard;
            let _ = handle_connection(stream, &router);
        });
    // A failed spawn (resource exhaustion) drops the closure — and with
    // it the guard (count restored) and the stream (connection closed).
    drop(spawned);
}

fn handle_connection(mut stream: TcpStream, router: &Router) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let started = std::time::Instant::now();
    let response = match read_request(&mut stream) {
        Ok(req) => router.handle(&req),
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            Response::text(400, format!("bad request: {e}\n"))
        }
        Err(e) => return Err(e),
    };
    if crate::enabled() {
        crate::counter("http.requests", 1);
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        crate::observe("http.request_ns", ns);
    }
    write_response(&mut stream, &response)
}

fn bad(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Read and parse one HTTP/1.x request, headers and `Content-Length`
/// body included.
fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    // Head: read until the blank line. Whatever body bytes arrive in the
    // same packets are kept for the body phase.
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(at) = find_head_end(&buf) {
            break at;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(bad("header block too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("empty request line"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or_else(|| bad("missing request target"))?;
    // The path is percent-decoded here so routes and handlers see the
    // logical path (`/v1/jobs/j%31` ≡ `/v1/jobs/j1`); the query string
    // stays raw — `Request::query_param_decoded` decodes per value, so
    // an encoded `&` in a value cannot split the pair list.
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (percent_decode(p), q.to_owned()),
        None => (percent_decode(target), String::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let content_length: usize = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v.parse().map_err(|_| bad("bad content-length"))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(bad("body too large"));
    }
    let mut body = buf.split_off((head_end + 4).min(buf.len()));
    body.truncate(content_length);
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len(),
    );
    for (name, value) in &response.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// Build profile the serving binary was compiled with.
#[must_use]
pub fn build_profile() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

/// The `/version` document: crate version and build profile
/// (`ion-obs/version/1`).
#[must_use]
pub fn version_json() -> String {
    format!(
        "{{\"schema\":\"ion-obs/version/1\",\"version\":{},\"profile\":\"{}\"}}",
        crate::json::escape(env!("CARGO_PKG_VERSION")),
        build_profile(),
    )
}

/// A registry name as a Prometheus metric name: `ion_` prefix,
/// non-`[a-zA-Z0-9_:]` characters mapped to `_`.
#[must_use]
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("ion_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_owned()
    } else if v > 0.0 {
        "+Inf".to_owned()
    } else {
        "-Inf".to_owned()
    }
}

/// Render `snap` in Prometheus text exposition format. Output ordering is
/// stable (name-sorted within each metric class) — the golden test pins
/// it.
#[must_use]
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    // Counters: one TYPE line per family covering the unlabeled series
    // and any labeled series (labelsets are pre-rendered `k="v"` tokens).
    let mut counter_names: std::collections::BTreeSet<&String> = snap.counters.keys().collect();
    counter_names.extend(snap.labeled_counters.keys());
    for name in counter_names {
        let pname = prometheus_name(name);
        out.push_str(&format!("# TYPE {pname} counter\n"));
        if let Some(value) = snap.counters.get(name) {
            out.push_str(&format!("{pname} {value}\n"));
        }
        if let Some(sets) = snap.labeled_counters.get(name) {
            for (set, value) in sets {
                out.push_str(&format!("{pname}{{{set}}} {value}\n"));
            }
        }
    }
    for (name, value) in &snap.gauges {
        let pname = prometheus_name(name);
        out.push_str(&format!(
            "# TYPE {pname} gauge\n{pname} {}\n",
            fmt_f64(*value)
        ));
    }
    let mut hist_names: std::collections::BTreeSet<&String> = snap.histograms.keys().collect();
    hist_names.extend(snap.labeled_histograms.keys());
    for name in hist_names {
        let pname = prometheus_name(name);
        out.push_str(&format!("# TYPE {pname} histogram\n"));
        if let Some(h) = snap.histograms.get(name) {
            render_histogram_series(&mut out, &pname, "", h);
        }
        let labeled = snap.labeled_histograms.get(name);
        if let Some(sets) = labeled {
            for (set, h) in sets {
                render_histogram_series(&mut out, &pname, set, h);
            }
        }
        for (suffix, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            out.push_str(&format!("# TYPE {pname}_{suffix} gauge\n"));
            if let Some(h) = snap.histograms.get(name) {
                out.push_str(&format!("{pname}_{suffix} {}\n", h.approx_quantile(q)));
            }
            if let Some(sets) = labeled {
                for (set, h) in sets {
                    out.push_str(&format!(
                        "{pname}_{suffix}{{{set}}} {}\n",
                        h.approx_quantile(q)
                    ));
                }
            }
        }
    }
    out
}

/// One histogram series (bucket/sum/count lines), with `labels` (a
/// pre-rendered `k="v",…` token or empty) merged into each line's label
/// set alongside `le`.
fn render_histogram_series(out: &mut String, pname: &str, labels: &str, h: &HistogramSnapshot) {
    let le_prefix = if labels.is_empty() {
        String::new()
    } else {
        format!("{labels},")
    };
    let plain = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let mut cumulative = 0u64;
    for (i, &n) in h.buckets.iter().enumerate() {
        if n == 0 {
            continue; // Only materialized buckets; +Inf closes the set.
        }
        cumulative += n;
        out.push_str(&format!(
            "{pname}_bucket{{{le_prefix}le=\"{}\"}} {cumulative}\n",
            HistogramSnapshot::bucket_limit(i)
        ));
    }
    out.push_str(&format!(
        "{pname}_bucket{{{le_prefix}le=\"+Inf\"}} {}\n",
        h.count
    ));
    out.push_str(&format!("{pname}_sum{plain} {}\n", h.sum));
    out.push_str(&format!("{pname}_count{plain} {}\n", h.count));
}

/// Render batch progress (`ion-obs/progress/1`) from the `batch.*` gauges
/// maintained by `ion-store`'s batch front-end. All zeros when no batch
/// has run.
#[must_use]
pub fn render_progress(snap: &Snapshot) -> String {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let gauge = |name: &str| -> u64 {
        let v = snap.gauges.get(name).copied().unwrap_or(0.0);
        if v.is_finite() && v > 0.0 {
            v.round() as u64
        } else {
            0
        }
    };
    format!(
        "{{\"schema\":\"ion-obs/progress/1\",\"total\":{},\"completed\":{},\"failed\":{},\"in_flight\":{}}}\n",
        gauge("batch.total"),
        gauge("batch.completed"),
        gauge("batch.failed"),
        gauge("batch.in_flight"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_sanitize() {
        assert_eq!(prometheus_name("store.hit"), "ion_store_hit");
        assert_eq!(prometheus_name("iql.query_ns"), "ion_iql_query_ns");
        assert_eq!(prometheus_name("a-b c"), "ion_a_b_c");
    }

    #[test]
    fn progress_defaults_to_zero() {
        let body = render_progress(&Snapshot::default());
        let doc = crate::json::parse(body.trim()).unwrap();
        assert_eq!(doc.get("total").unwrap().as_u64(), Some(0));
        assert_eq!(doc.get("in_flight").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut snap = Snapshot::default();
        let mut buckets = [0u64; crate::metrics::BUCKETS];
        buckets[crate::metrics::bucket_index(1)] += 1;
        buckets[crate::metrics::bucket_index(2)] += 1;
        buckets[crate::metrics::bucket_index(1000)] += 1;
        let h = HistogramSnapshot {
            count: 3,
            sum: 1 + 2 + 1000,
            buckets,
        };
        snap.histograms.insert("lat".into(), h);
        let text = render_prometheus(&snap);
        assert!(text.contains("ion_lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("ion_lat_sum 1003"));
        assert!(text.contains("ion_lat_count 3"));
        assert!(text.contains("ion_lat_p50 "));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{line}");
            last = v;
        }
    }

    #[test]
    fn router_dispatches_exact_prefix_and_misses() {
        let router = Router::new()
            .route("GET", "/ping", |_| Response::text(200, "pong"))
            .prefix("GET", "/jobs/", |req: &Request| {
                Response::text(200, format!("job {}", &req.path["/jobs/".len()..]))
            })
            .route("POST", "/submit", |req: &Request| {
                Response::text(202, format!("{} bytes", req.body.len()))
            });
        let get = |path: &str| Request {
            method: "GET".into(),
            path: path.into(),
            ..Request::default()
        };
        assert_eq!(router.handle(&get("/ping")).status, 200);
        let r = router.handle(&get("/jobs/j7"));
        assert_eq!(String::from_utf8(r.body).unwrap(), "job j7");
        assert_eq!(router.handle(&get("/nowhere")).status, 404);
        // Right path, wrong method.
        assert_eq!(router.handle(&get("/submit")).status, 405);
        let post = Request {
            method: "POST".into(),
            path: "/submit".into(),
            body: vec![0u8; 10],
            ..Request::default()
        };
        assert_eq!(router.handle(&post).status, 202);
    }

    #[test]
    fn router_first_match_wins_over_metrics_routes() {
        let router = Router::new()
            .route("GET", "/healthz", |_| Response::text(200, "draining\n"))
            .with_metrics_routes(Arc::new(Snapshot::default));
        let req = Request {
            method: "GET".into(),
            path: "/healthz".into(),
            ..Request::default()
        };
        assert_eq!(
            String::from_utf8(router.handle(&req).body).unwrap(),
            "draining\n"
        );
    }

    #[test]
    fn handler_panics_become_500() {
        let router = Router::new().route("GET", "/boom", |_| panic!("kaboom"));
        let req = Request {
            method: "GET".into(),
            path: "/boom".into(),
            ..Request::default()
        };
        // Silence the default hook for the deliberate panic.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let resp = router.handle(&req);
        std::panic::set_hook(prev);
        assert_eq!(resp.status, 500);
    }

    #[test]
    fn post_body_round_trips_over_real_http() {
        let router = Arc::new(Router::new().route("POST", "/echo", |req: &Request| {
            let tenant = req.header("x-ion-tenant").unwrap_or("?").to_owned();
            Response::text(200, format!("{}:{}", tenant, req.body.len()))
        }));
        let server = HttpServer::bind("127.0.0.1:0", router, 2).unwrap();
        let addr = server.local_addr();
        let body = vec![7u8; 10_000];
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                format!(
                    "POST /echo HTTP/1.1\r\nHost: t\r\nX-Ion-Tenant: acme\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        stream.write_all(&body).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
        assert!(out.ends_with("acme:10000"), "{out}");
        server.shutdown();
    }
}
