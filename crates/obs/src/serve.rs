//! Live telemetry endpoint: a dependency-free `std::net` HTTP server
//! exposing the global sink while a run is still in flight.
//!
//! Three routes, all `GET`:
//!
//! - **`/metrics`** — Prometheus text exposition format (version 0.0.4):
//!   every counter, gauge and log₂ histogram in the registry, histogram
//!   quantile gauges (`_p50`/`_p95`/`_p99` from
//!   [`HistogramSnapshot::approx_quantile`]) included. Metric names are
//!   the registry names prefixed `ion_` with non-identifier characters
//!   mapped to `_` (`store.hit` → `ion_store_hit`).
//! - **`/progress`** — batch progress as JSON
//!   (`ion-obs/progress/1`), read from the `batch.*` gauges that
//!   `ion-store`'s batch front-end maintains.
//! - **`/healthz`** — liveness probe, plain `ok`.
//!
//! The server is deliberately minimal: one accept thread, one short-lived
//! request per connection, `Connection: close`. It exists so `ion_cli
//! batch --serve` can be scraped, not to serve the paper's millions of
//! users — that is what a real ingress in front of many `ion_cli`
//! processes would do.

use crate::metrics::HistogramSnapshot;
use crate::render::Snapshot;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Produces the snapshot a request is rendered from. The default server
/// uses the global sink; tests inject synthetic snapshots.
pub type SnapshotFn = Arc<dyn Fn() -> Snapshot + Send + Sync>;

/// A running telemetry server. Dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the accept loop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
    /// the global sink's snapshot.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<MetricsServer> {
        Self::bind_with(addr, Arc::new(crate::snapshot))
    }

    /// Bind `addr` and serve snapshots produced by `provider`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound.
    pub fn bind_with(addr: impl ToSocketAddrs, provider: SnapshotFn) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ion-obs-serve".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Requests are tiny; handle inline with a short
                    // deadline so one stuck client can't wedge the loop.
                    let _ = handle_connection(stream, &provider);
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves the port when bound to `:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with one last connection.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn handle_connection(mut stream: TcpStream, provider: &SnapshotFn) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let path = read_request_path(&mut stream)?;
    let (status, content_type, body) = match path.as_str() {
        "/metrics" => {
            let snap = provider();
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus(&snap),
            )
        }
        "/progress" => {
            let snap = provider();
            ("200 OK", "application/json", render_progress(&snap))
        }
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_owned()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            format!("no route {path}\n"),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Read enough of an HTTP/1.x request to extract the path; headers and
/// body (there is none on GET) are discarded.
fn read_request_path(stream: &mut TcpStream) -> io::Result<String> {
    let mut buf = [0u8; 2048];
    let mut filled = 0;
    loop {
        if filled == buf.len() {
            break; // Request line is certainly complete (or garbage).
        }
        let n = stream.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
        if buf[..filled].windows(2).any(|w| w == b"\r\n") {
            break;
        }
    }
    let text = String::from_utf8_lossy(&buf[..filled]);
    let request_line = text.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let _method = parts.next();
    Ok(parts.next().unwrap_or("/").to_owned())
}

/// A registry name as a Prometheus metric name: `ion_` prefix,
/// non-`[a-zA-Z0-9_:]` characters mapped to `_`.
#[must_use]
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("ion_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_owned()
    } else if v > 0.0 {
        "+Inf".to_owned()
    } else {
        "-Inf".to_owned()
    }
}

/// Render `snap` in Prometheus text exposition format. Output ordering is
/// stable (name-sorted within each metric class) — the golden test pins
/// it.
#[must_use]
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let pname = prometheus_name(name);
        out.push_str(&format!("# TYPE {pname} counter\n{pname} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let pname = prometheus_name(name);
        out.push_str(&format!(
            "# TYPE {pname} gauge\n{pname} {}\n",
            fmt_f64(*value)
        ));
    }
    for (name, h) in &snap.histograms {
        let pname = prometheus_name(name);
        out.push_str(&format!("# TYPE {pname} histogram\n"));
        let mut cumulative = 0u64;
        for (i, &n) in h.buckets.iter().enumerate() {
            if n == 0 {
                continue; // Only materialized buckets; +Inf closes the set.
            }
            cumulative += n;
            out.push_str(&format!(
                "{pname}_bucket{{le=\"{}\"}} {cumulative}\n",
                HistogramSnapshot::bucket_limit(i)
            ));
        }
        out.push_str(&format!("{pname}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{pname}_sum {}\n", h.sum));
        out.push_str(&format!("{pname}_count {}\n", h.count));
        for (suffix, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            out.push_str(&format!(
                "# TYPE {pname}_{suffix} gauge\n{pname}_{suffix} {}\n",
                h.approx_quantile(q)
            ));
        }
    }
    out
}

/// Render batch progress (`ion-obs/progress/1`) from the `batch.*` gauges
/// maintained by `ion-store`'s batch front-end. All zeros when no batch
/// has run.
#[must_use]
pub fn render_progress(snap: &Snapshot) -> String {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let gauge = |name: &str| -> u64 {
        let v = snap.gauges.get(name).copied().unwrap_or(0.0);
        if v.is_finite() && v > 0.0 {
            v.round() as u64
        } else {
            0
        }
    };
    format!(
        "{{\"schema\":\"ion-obs/progress/1\",\"total\":{},\"completed\":{},\"failed\":{},\"in_flight\":{}}}\n",
        gauge("batch.total"),
        gauge("batch.completed"),
        gauge("batch.failed"),
        gauge("batch.in_flight"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_sanitize() {
        assert_eq!(prometheus_name("store.hit"), "ion_store_hit");
        assert_eq!(prometheus_name("iql.query_ns"), "ion_iql_query_ns");
        assert_eq!(prometheus_name("a-b c"), "ion_a_b_c");
    }

    #[test]
    fn progress_defaults_to_zero() {
        let body = render_progress(&Snapshot::default());
        let doc = crate::json::parse(body.trim()).unwrap();
        assert_eq!(doc.get("total").unwrap().as_u64(), Some(0));
        assert_eq!(doc.get("in_flight").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut snap = Snapshot::default();
        let mut buckets = [0u64; crate::metrics::BUCKETS];
        buckets[crate::metrics::bucket_index(1)] += 1;
        buckets[crate::metrics::bucket_index(2)] += 1;
        buckets[crate::metrics::bucket_index(1000)] += 1;
        let h = HistogramSnapshot {
            count: 3,
            sum: 1 + 2 + 1000,
            buckets,
        };
        snap.histograms.insert("lat".into(), h);
        let text = render_prometheus(&snap);
        assert!(text.contains("ion_lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("ion_lat_sum 1003"));
        assert!(text.contains("ion_lat_count 3"));
        assert!(text.contains("ion_lat_p50 "));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{line}");
            last = v;
        }
    }
}
