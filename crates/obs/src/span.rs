//! Hierarchical spans: RAII guards over a thread-aware span store.

use parking_lot::Mutex;
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::thread::ThreadId;
use std::time::Instant;

/// Identifier of one recorded span. Ids are assigned at open time, so a
/// child's id is always greater than its parent's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanData {
    /// Unique id (monotonic per store).
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Stage name, e.g. `"decode"` or `"issue"`.
    pub name: Cow<'static, str>,
    /// Small per-store thread index (0 = first thread seen).
    pub thread: u64,
    /// Open time, nanoseconds since the store's epoch.
    pub start_ns: u64,
    /// Close time, nanoseconds since the store's epoch.
    pub end_ns: u64,
    /// `key=value` attributes in insertion order.
    pub attrs: Vec<(Cow<'static, str>, String)>,
}

impl SpanData {
    /// Wall time between open and close.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// How a new span picks its parent.
#[derive(Debug, Clone, Copy)]
pub enum Parent {
    /// The calling thread's innermost open span.
    Current,
    /// An explicit parent (or a root when `None`) — the cross-thread path.
    Explicit(Option<SpanId>),
}

#[derive(Default)]
struct ThreadState {
    /// Per-thread small index, for `SpanData::thread`.
    index: u64,
    /// Open spans on this thread, outermost first.
    stack: Vec<SpanId>,
}

/// Collects spans; usually used through the crate-level globals but fully
/// functional standalone (that is what the property tests drive).
pub struct SpanStore {
    next_id: AtomicU64,
    epoch: OnceLock<Instant>,
    finished: Mutex<Vec<SpanData>>,
    threads: Mutex<HashMap<ThreadId, ThreadState>>,
}

impl Default for SpanStore {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanStore {
    /// Empty store.
    #[must_use]
    pub fn new() -> Self {
        SpanStore {
            next_id: AtomicU64::new(1),
            epoch: OnceLock::new(),
            finished: Mutex::new(Vec::new()),
            threads: Mutex::new(HashMap::new()),
        }
    }

    fn now_ns(&self) -> u64 {
        let epoch = *self.epoch.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The calling thread's innermost open span.
    #[must_use]
    pub fn current(&self) -> Option<SpanId> {
        let threads = self.threads.lock();
        threads
            .get(&std::thread::current().id())
            .and_then(|t| t.stack.last().copied())
    }

    /// Open a span; the returned guard records it when dropped.
    pub fn open(&self, name: Cow<'static, str>, parent: Parent) -> SpanGuard<'_> {
        let id = SpanId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let (parent, thread) = {
            let mut threads = self.threads.lock();
            let next_index = threads.len() as u64;
            let state = threads
                .entry(std::thread::current().id())
                .or_insert_with(|| ThreadState {
                    index: next_index,
                    stack: Vec::new(),
                });
            let parent = match parent {
                Parent::Current => state.stack.last().copied(),
                Parent::Explicit(p) => p,
            };
            state.stack.push(id);
            (parent, state.index)
        };
        if crate::events::enabled() && crate::is_global_span_store(self) {
            crate::events::emit(
                "span.open",
                vec![
                    ("id".into(), crate::events::Value::U64(id.0)),
                    (
                        "parent".into(),
                        crate::events::Value::U64(parent.map_or(0, |p| p.0)),
                    ),
                    ("name".into(), crate::events::Value::Str(name.to_string())),
                ],
            );
        }
        SpanGuard {
            inner: Some(ActiveSpan {
                store: self,
                id,
                parent,
                thread,
                name,
                start_ns: self.now_ns(),
                attrs: Vec::new(),
            }),
        }
    }

    fn close(&self, span: &mut ActiveSpan<'_>) {
        let end_ns = self.now_ns().max(span.start_ns + 1);
        {
            let mut threads = self.threads.lock();
            if let Some(state) = threads.get_mut(&std::thread::current().id()) {
                // Normal RAII drops pop the top; an out-of-order drop
                // truncates the still-open descendants off the stack (their
                // own guards will still record when they fall).
                if let Some(pos) = state.stack.iter().rposition(|&open| open == span.id) {
                    state.stack.truncate(pos);
                }
            }
        }
        let name = std::mem::replace(&mut span.name, Cow::Borrowed(""));
        if crate::events::enabled() && crate::is_global_span_store(self) {
            crate::events::emit(
                "span.close",
                vec![
                    ("id".into(), crate::events::Value::U64(span.id.0)),
                    ("name".into(), crate::events::Value::Str(name.to_string())),
                    (
                        "ns".into(),
                        crate::events::Value::U64(end_ns.saturating_sub(span.start_ns)),
                    ),
                ],
            );
        }
        self.finished.lock().push(SpanData {
            id: span.id,
            parent: span.parent,
            name,
            thread: span.thread,
            start_ns: span.start_ns,
            end_ns,
            attrs: std::mem::take(&mut span.attrs),
        });
    }

    /// Copy out all finished spans, with every child interval clamped into
    /// its parent's — the tree invariant renderers and tests rely on, kept
    /// true even under out-of-order guard drops or cross-thread stragglers.
    #[must_use]
    pub fn finished(&self) -> Vec<SpanData> {
        let mut spans = self.finished.lock().clone();
        spans.sort_by_key(|s| s.id);
        // Parents open before their children, so parent ids are smaller and
        // one ascending pass clamps transitively.
        let mut intervals: HashMap<SpanId, (u64, u64)> = HashMap::new();
        for span in &mut spans {
            if let Some((lo, hi)) = span.parent.and_then(|p| intervals.get(&p).copied()) {
                span.start_ns = span.start_ns.clamp(lo, hi);
                span.end_ns = span.end_ns.clamp(span.start_ns, hi);
            }
            intervals.insert(span.id, (span.start_ns, span.end_ns));
        }
        spans
    }

    /// Drop all recorded spans and per-thread stacks.
    pub fn clear(&self) {
        self.finished.lock().clear();
        self.threads.lock().clear();
    }
}

struct ActiveSpan<'s> {
    store: &'s SpanStore,
    id: SpanId,
    parent: Option<SpanId>,
    thread: u64,
    name: Cow<'static, str>,
    start_ns: u64,
    attrs: Vec<(Cow<'static, str>, String)>,
}

/// RAII handle for an open span; records it into the store on drop.
/// The no-op variant (sink disabled) carries no data and does no work.
pub struct SpanGuard<'s> {
    inner: Option<ActiveSpan<'s>>,
}

impl SpanGuard<'_> {
    /// Guard that records nothing (profiling disabled).
    #[must_use]
    pub fn noop() -> SpanGuard<'static> {
        SpanGuard { inner: None }
    }

    /// Attach a `key=value` attribute. No-op on a disabled guard.
    pub fn attr(&mut self, key: impl Into<Cow<'static, str>>, value: impl std::fmt::Display) {
        if let Some(active) = &mut self.inner {
            active.attrs.push((key.into(), value.to_string()));
        }
    }

    /// The span's id, for cross-thread parenting (`None` when disabled).
    #[must_use]
    pub fn id(&self) -> Option<SpanId> {
        self.inner.as_ref().map(|a| a.id)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(mut active) = self.inner.take() {
            active.store.close(&mut active);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_drop_builds_a_chain() {
        let store = SpanStore::new();
        {
            let _a = store.open(Cow::Borrowed("a"), Parent::Current);
            let _b = store.open(Cow::Borrowed("b"), Parent::Current);
            let _c = store.open(Cow::Borrowed("c"), Parent::Current);
        }
        let spans = store.finished();
        assert_eq!(spans.len(), 3);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("a").parent, None);
        assert_eq!(by_name("b").parent, Some(by_name("a").id));
        assert_eq!(by_name("c").parent, Some(by_name("b").id));
    }

    #[test]
    fn out_of_order_drop_still_nests_intervals() {
        let store = SpanStore::new();
        let parent = store.open(Cow::Borrowed("parent"), Parent::Current);
        let child = store.open(Cow::Borrowed("child"), Parent::Current);
        drop(parent); // parent closes first — child now outlives it
        std::thread::sleep(std::time::Duration::from_millis(1));
        drop(child);
        let spans = store.finished();
        let p = spans.iter().find(|s| s.name == "parent").unwrap();
        let c = spans.iter().find(|s| s.name == "child").unwrap();
        assert_eq!(c.parent, Some(p.id));
        assert!(c.start_ns >= p.start_ns);
        assert!(c.end_ns <= p.end_ns, "child clamped into parent");
    }

    #[test]
    fn sibling_after_out_of_order_drop_is_not_reparented() {
        let store = SpanStore::new();
        let a = store.open(Cow::Borrowed("a"), Parent::Current);
        let b = store.open(Cow::Borrowed("b"), Parent::Current);
        drop(a); // truncates b off the stack too
        let c = store.open(Cow::Borrowed("c"), Parent::Current);
        drop(c);
        drop(b);
        let spans = store.finished();
        let c = spans.iter().find(|s| s.name == "c").unwrap();
        assert_eq!(c.parent, None, "stack was truncated at a's position");
    }

    #[test]
    fn clear_resets_state() {
        let store = SpanStore::new();
        drop(store.open(Cow::Borrowed("x"), Parent::Current));
        store.clear();
        assert!(store.finished().is_empty());
        assert_eq!(store.current(), None);
    }
}
