//! Hierarchical spans: RAII guards over a thread-aware span store.

use parking_lot::Mutex;
use std::borrow::Cow;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::thread::ThreadId;
use std::time::Instant;

/// Identifier of one recorded span. Ids are assigned at open time, so a
/// child's id is always greater than its parent's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// Request-scoped attribution: a trace id minted per logical request plus
/// the span the request's work should hang under. Installed per thread
/// with [`SpanStore::install_trace`] and captured for cross-thread
/// hand-off with [`SpanStore::current_trace`] — every span and event the
/// thread then emits carries the trace id, so concurrent requests stay
/// disjoint even when they share a worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Trace id (never 0 for minted traces; 0 means "no trace").
    pub trace: u64,
    /// Span new root-level work should parent under, if any.
    pub parent: Option<SpanId>,
}

impl TraceContext {
    /// A context with no parent span — the shape minted at request ingress.
    #[must_use]
    pub fn root(trace: u64) -> Self {
        TraceContext {
            trace,
            parent: None,
        }
    }
}

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanData {
    /// Unique id (monotonic per store).
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Stage name, e.g. `"decode"` or `"issue"`.
    pub name: Cow<'static, str>,
    /// Small per-store thread index (0 = first thread seen).
    pub thread: u64,
    /// Open time, nanoseconds since the store's epoch.
    pub start_ns: u64,
    /// Close time, nanoseconds since the store's epoch.
    pub end_ns: u64,
    /// Owning trace id (0 = emitted outside any installed trace).
    pub trace: u64,
    /// `key=value` attributes in insertion order.
    pub attrs: Vec<(Cow<'static, str>, String)>,
}

impl SpanData {
    /// Wall time between open and close.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// How a new span picks its parent.
#[derive(Debug, Clone, Copy)]
pub enum Parent {
    /// The calling thread's innermost open span.
    Current,
    /// An explicit parent (or a root when `None`) — the cross-thread path.
    Explicit(Option<SpanId>),
}

#[derive(Default)]
struct ThreadState {
    /// Per-thread small index, for `SpanData::thread`.
    index: u64,
    /// Open spans on this thread, outermost first.
    stack: Vec<SpanId>,
    /// Trace the thread is currently working for, if any.
    trace: Option<TraceContext>,
}

/// Default bound on the finished-span ring. Generous enough for the
/// deepest single-run profile we produce, small enough that an always-on
/// daemon that forgets to drain cannot leak without bound.
pub const DEFAULT_FINISHED_CAPACITY: usize = 65_536;

/// Collects spans; usually used through the crate-level globals but fully
/// functional standalone (that is what the property tests drive).
pub struct SpanStore {
    next_id: AtomicU64,
    next_trace: AtomicU64,
    epoch: OnceLock<Instant>,
    /// Finished spans, oldest first — a bounded ring: when full the oldest
    /// span is evicted and [`SpanStore::dropped`] counts the loss.
    finished: Mutex<VecDeque<SpanData>>,
    capacity: usize,
    dropped: AtomicU64,
    threads: Mutex<HashMap<ThreadId, ThreadState>>,
}

impl Default for SpanStore {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanStore {
    /// Empty store with the default finished-span bound.
    #[must_use]
    pub fn new() -> Self {
        Self::with_finished_capacity(DEFAULT_FINISHED_CAPACITY)
    }

    /// Empty store keeping at most `capacity` finished spans (min 1).
    #[must_use]
    pub fn with_finished_capacity(capacity: usize) -> Self {
        SpanStore {
            next_id: AtomicU64::new(1),
            next_trace: AtomicU64::new(1),
            epoch: OnceLock::new(),
            finished: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            threads: Mutex::new(HashMap::new()),
        }
    }

    fn now_ns(&self) -> u64 {
        let epoch = *self.epoch.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The calling thread's innermost open span.
    #[must_use]
    pub fn current(&self) -> Option<SpanId> {
        let threads = self.threads.lock();
        threads
            .get(&std::thread::current().id())
            .and_then(|t| t.stack.last().copied())
    }

    /// Mint a fresh trace id (never reused within this store).
    #[must_use]
    pub fn mint_trace(&self) -> TraceContext {
        TraceContext::root(self.next_trace.fetch_add(1, Ordering::Relaxed))
    }

    /// Install `ctx` as the calling thread's trace for the guard's
    /// lifetime; the previously installed context (if any) is restored on
    /// drop, so nested installs behave like a stack.
    #[must_use]
    pub fn install_trace(&self, ctx: TraceContext) -> TraceScope<'_> {
        let mut threads = self.threads.lock();
        let next_index = threads.len() as u64;
        let state = threads
            .entry(std::thread::current().id())
            .or_insert_with(|| ThreadState {
                index: next_index,
                ..ThreadState::default()
            });
        let prev = state.trace.replace(ctx);
        drop(threads);
        TraceScope {
            store: Some(self),
            prev,
        }
    }

    /// The calling thread's trace, with `parent` advanced to the innermost
    /// open span — the value to capture before handing work to another
    /// thread so the receiver's spans nest under the sender's.
    #[must_use]
    pub fn current_trace(&self) -> Option<TraceContext> {
        let threads = self.threads.lock();
        let state = threads.get(&std::thread::current().id())?;
        let ctx = state.trace?;
        Some(TraceContext {
            trace: ctx.trace,
            parent: state.stack.last().copied().or(ctx.parent),
        })
    }

    /// `(trace id, innermost open span id)` for the calling thread, or
    /// `None` when no trace is installed — the cheap lookup the event
    /// stream uses to stamp attribution fields.
    #[must_use]
    pub fn thread_trace_ids(&self) -> Option<(u64, Option<u64>)> {
        let threads = self.threads.lock();
        let state = threads.get(&std::thread::current().id())?;
        let ctx = state.trace?;
        Some((ctx.trace, state.stack.last().map(|s| s.0)))
    }

    /// Total finished spans evicted from the ring since construction.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Open a span; the returned guard records it when dropped.
    pub fn open(&self, name: Cow<'static, str>, parent: Parent) -> SpanGuard<'_> {
        let id = SpanId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let (parent, thread, trace) = {
            let mut threads = self.threads.lock();
            let next_index = threads.len() as u64;
            let state = threads
                .entry(std::thread::current().id())
                .or_insert_with(|| ThreadState {
                    index: next_index,
                    ..ThreadState::default()
                });
            let ctx = state.trace;
            let parent = match parent {
                Parent::Current => state
                    .stack
                    .last()
                    .copied()
                    // A root-level span on a thread working for a trace
                    // hangs under the trace's hand-off parent, so worker
                    // spans nest under the submitting span automatically.
                    .or(ctx.and_then(|c| c.parent)),
                Parent::Explicit(p) => p,
            };
            state.stack.push(id);
            (parent, state.index, ctx.map_or(0, |c| c.trace))
        };
        if crate::events::enabled() && crate::is_global_span_store(self) {
            crate::events::emit(
                "span.open",
                vec![
                    ("id".into(), crate::events::Value::U64(id.0)),
                    (
                        "parent".into(),
                        crate::events::Value::U64(parent.map_or(0, |p| p.0)),
                    ),
                    ("name".into(), crate::events::Value::Str(name.to_string())),
                ],
            );
        }
        SpanGuard {
            inner: Some(ActiveSpan {
                store: self,
                id,
                parent,
                thread,
                trace,
                name,
                start_ns: self.now_ns(),
                attrs: Vec::new(),
            }),
        }
    }

    fn close(&self, span: &mut ActiveSpan<'_>) {
        let end_ns = self.now_ns().max(span.start_ns + 1);
        {
            let mut threads = self.threads.lock();
            if let Some(state) = threads.get_mut(&std::thread::current().id()) {
                // Normal RAII drops pop the top; an out-of-order drop
                // truncates the still-open descendants off the stack (their
                // own guards will still record when they fall).
                if let Some(pos) = state.stack.iter().rposition(|&open| open == span.id) {
                    state.stack.truncate(pos);
                }
            }
        }
        let name = std::mem::replace(&mut span.name, Cow::Borrowed(""));
        if crate::events::enabled() && crate::is_global_span_store(self) {
            crate::events::emit(
                "span.close",
                vec![
                    ("id".into(), crate::events::Value::U64(span.id.0)),
                    ("name".into(), crate::events::Value::Str(name.to_string())),
                    (
                        "ns".into(),
                        crate::events::Value::U64(end_ns.saturating_sub(span.start_ns)),
                    ),
                ],
            );
        }
        let evicted = {
            let mut finished = self.finished.lock();
            finished.push_back(SpanData {
                id: span.id,
                parent: span.parent,
                name,
                thread: span.thread,
                start_ns: span.start_ns,
                end_ns,
                trace: span.trace,
                attrs: std::mem::take(&mut span.attrs),
            });
            let over = finished.len().saturating_sub(self.capacity);
            for _ in 0..over {
                finished.pop_front();
            }
            over as u64
        };
        if evicted > 0 {
            self.dropped.fetch_add(evicted, Ordering::Relaxed);
            if crate::is_global_span_store(self) {
                crate::counter("obs.spans.dropped", evicted);
            }
        }
    }

    /// Copy out all finished spans, with every child interval clamped into
    /// its parent's — the tree invariant renderers and tests rely on, kept
    /// true even under out-of-order guard drops or cross-thread stragglers.
    #[must_use]
    pub fn finished(&self) -> Vec<SpanData> {
        let mut spans: Vec<SpanData> = self.finished.lock().iter().cloned().collect();
        Self::clamp_tree(&mut spans);
        spans
    }

    /// Remove and return every finished span belonging to `trace`, clamped
    /// like [`SpanStore::finished`]. Draining keeps the shared ring small
    /// and makes trace assembly an ownership transfer: once a request's
    /// spans are taken they cannot leak into another request's tree.
    #[must_use]
    pub fn take_trace(&self, trace: u64) -> Vec<SpanData> {
        let mut taken = Vec::new();
        {
            let mut finished = self.finished.lock();
            let mut keep = VecDeque::with_capacity(finished.len());
            for span in finished.drain(..) {
                if span.trace == trace {
                    taken.push(span);
                } else {
                    keep.push_back(span);
                }
            }
            *finished = keep;
        }
        Self::clamp_tree(&mut taken);
        taken
    }

    /// Sort by id and clamp child intervals into their parents'. Parents
    /// open before their children, so parent ids are smaller and one
    /// ascending pass clamps transitively.
    fn clamp_tree(spans: &mut [SpanData]) {
        spans.sort_by_key(|s| s.id);
        let mut intervals: HashMap<SpanId, (u64, u64)> = HashMap::new();
        for span in spans {
            if let Some((lo, hi)) = span.parent.and_then(|p| intervals.get(&p).copied()) {
                span.start_ns = span.start_ns.clamp(lo, hi);
                span.end_ns = span.end_ns.clamp(span.start_ns, hi);
            }
            intervals.insert(span.id, (span.start_ns, span.end_ns));
        }
    }

    /// Drop all recorded spans and per-thread stacks.
    pub fn clear(&self) {
        self.finished.lock().clear();
        self.threads.lock().clear();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

/// RAII guard from [`SpanStore::install_trace`]: restores the previously
/// installed trace context (or none) when dropped.
pub struct TraceScope<'s> {
    store: Option<&'s SpanStore>,
    prev: Option<TraceContext>,
}

impl TraceScope<'_> {
    /// Guard that installs and restores nothing (tracing disabled).
    #[must_use]
    pub fn noop() -> TraceScope<'static> {
        TraceScope {
            store: None,
            prev: None,
        }
    }
}

impl Drop for TraceScope<'_> {
    fn drop(&mut self) {
        if let Some(store) = self.store.take() {
            let mut threads = store.threads.lock();
            if let Some(state) = threads.get_mut(&std::thread::current().id()) {
                state.trace = self.prev.take();
            }
        }
    }
}

struct ActiveSpan<'s> {
    store: &'s SpanStore,
    id: SpanId,
    parent: Option<SpanId>,
    thread: u64,
    trace: u64,
    name: Cow<'static, str>,
    start_ns: u64,
    attrs: Vec<(Cow<'static, str>, String)>,
}

/// RAII handle for an open span; records it into the store on drop.
/// The no-op variant (sink disabled) carries no data and does no work.
pub struct SpanGuard<'s> {
    inner: Option<ActiveSpan<'s>>,
}

impl SpanGuard<'_> {
    /// Guard that records nothing (profiling disabled).
    #[must_use]
    pub fn noop() -> SpanGuard<'static> {
        SpanGuard { inner: None }
    }

    /// Attach a `key=value` attribute. No-op on a disabled guard.
    pub fn attr(&mut self, key: impl Into<Cow<'static, str>>, value: impl std::fmt::Display) {
        if let Some(active) = &mut self.inner {
            active.attrs.push((key.into(), value.to_string()));
        }
    }

    /// The span's id, for cross-thread parenting (`None` when disabled).
    #[must_use]
    pub fn id(&self) -> Option<SpanId> {
        self.inner.as_ref().map(|a| a.id)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(mut active) = self.inner.take() {
            active.store.close(&mut active);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_drop_builds_a_chain() {
        let store = SpanStore::new();
        {
            let _a = store.open(Cow::Borrowed("a"), Parent::Current);
            let _b = store.open(Cow::Borrowed("b"), Parent::Current);
            let _c = store.open(Cow::Borrowed("c"), Parent::Current);
        }
        let spans = store.finished();
        assert_eq!(spans.len(), 3);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("a").parent, None);
        assert_eq!(by_name("b").parent, Some(by_name("a").id));
        assert_eq!(by_name("c").parent, Some(by_name("b").id));
    }

    #[test]
    fn out_of_order_drop_still_nests_intervals() {
        let store = SpanStore::new();
        let parent = store.open(Cow::Borrowed("parent"), Parent::Current);
        let child = store.open(Cow::Borrowed("child"), Parent::Current);
        drop(parent); // parent closes first — child now outlives it
        std::thread::sleep(std::time::Duration::from_millis(1));
        drop(child);
        let spans = store.finished();
        let p = spans.iter().find(|s| s.name == "parent").unwrap();
        let c = spans.iter().find(|s| s.name == "child").unwrap();
        assert_eq!(c.parent, Some(p.id));
        assert!(c.start_ns >= p.start_ns);
        assert!(c.end_ns <= p.end_ns, "child clamped into parent");
    }

    #[test]
    fn sibling_after_out_of_order_drop_is_not_reparented() {
        let store = SpanStore::new();
        let a = store.open(Cow::Borrowed("a"), Parent::Current);
        let b = store.open(Cow::Borrowed("b"), Parent::Current);
        drop(a); // truncates b off the stack too
        let c = store.open(Cow::Borrowed("c"), Parent::Current);
        drop(c);
        drop(b);
        let spans = store.finished();
        let c = spans.iter().find(|s| s.name == "c").unwrap();
        assert_eq!(c.parent, None, "stack was truncated at a's position");
    }

    #[test]
    fn clear_resets_state() {
        let store = SpanStore::new();
        drop(store.open(Cow::Borrowed("x"), Parent::Current));
        store.clear();
        assert!(store.finished().is_empty());
        assert_eq!(store.current(), None);
    }

    #[test]
    fn installed_trace_stamps_spans_and_take_drains_them() {
        let store = SpanStore::new();
        let t1 = store.mint_trace();
        let t2 = store.mint_trace();
        assert_ne!(t1.trace, t2.trace);
        {
            let _scope = store.install_trace(t1);
            drop(store.open(Cow::Borrowed("a"), Parent::Current));
        }
        {
            let _scope = store.install_trace(t2);
            drop(store.open(Cow::Borrowed("b"), Parent::Current));
        }
        drop(store.open(Cow::Borrowed("untraced"), Parent::Current));
        let one = store.take_trace(t1.trace);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].name, "a");
        assert_eq!(one[0].trace, t1.trace);
        // t1's spans are gone; t2's and the untraced span remain.
        assert!(store.take_trace(t1.trace).is_empty());
        let rest = store.finished();
        assert_eq!(rest.len(), 2);
        assert!(rest.iter().any(|s| s.name == "b" && s.trace == t2.trace));
        assert!(rest.iter().any(|s| s.name == "untraced" && s.trace == 0));
    }

    #[test]
    fn trace_parent_adopts_root_spans_and_scopes_nest() {
        let store = SpanStore::new();
        let minted = store.mint_trace();
        let submit = store.open(Cow::Borrowed("submit"), Parent::Current);
        let handoff = TraceContext {
            trace: minted.trace,
            parent: submit.id(),
        };
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _inner = store.install_trace(handoff);
                // Root-level span on the worker hangs under the captured
                // parent from the submitting thread.
                drop(store.open(Cow::Borrowed("work"), Parent::Current));
                assert_eq!(store.current_trace().unwrap().trace, minted.trace);
            });
        });
        drop(submit);
        let spans = store.take_trace(minted.trace);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].parent, store.finished()[0].id.into());
        // Nested installs restore the outer context on drop.
        let outer = store.install_trace(minted);
        {
            let other = store.mint_trace();
            let _inner = store.install_trace(other);
            assert_eq!(store.current_trace().unwrap().trace, other.trace);
        }
        assert_eq!(store.current_trace().unwrap().trace, minted.trace);
        drop(outer);
        assert!(store.current_trace().is_none());
    }

    #[test]
    fn finished_ring_is_bounded_and_counts_drops() {
        let store = SpanStore::with_finished_capacity(4);
        for i in 0..10u64 {
            let mut g = store.open(Cow::Borrowed("s"), Parent::Current);
            g.attr("i", i);
        }
        let spans = store.finished();
        assert_eq!(spans.len(), 4, "ring keeps only the newest spans");
        assert_eq!(store.dropped(), 6);
        // The survivors are the most recent closes.
        assert_eq!(spans[0].attrs[0].1, "6");
        assert_eq!(spans[3].attrs[0].1, "9");
        store.clear();
        assert_eq!(store.dropped(), 0);
    }
}
