//! Renderers: human-readable profile tree and `BENCH_*.json`-style JSON.

use crate::metrics::{HistogramSnapshot, LabeledCounters, LabeledHistograms, Registry};
use crate::span::{SpanData, SpanId, SpanStore};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Point-in-time copy of everything a store + registry captured. Fields
/// are public so tests can build synthetic snapshots (the golden-render
/// test does exactly that).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Finished spans, child intervals clamped into their parents.
    pub spans: Vec<SpanData>,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Labeled counter families: name → labelset → value.
    pub labeled_counters: LabeledCounters,
    /// Labeled histogram families: name → labelset → snapshot.
    pub labeled_histograms: LabeledHistograms,
}

impl Snapshot {
    /// Capture from a live store and registry.
    #[must_use]
    pub fn capture(spans: &SpanStore, registry: &Registry) -> Snapshot {
        let (counters, gauges, histograms) = registry.snapshot();
        let (labeled_counters, labeled_histograms) = registry.snapshot_labeled();
        Snapshot {
            spans: spans.finished(),
            counters,
            gauges,
            histograms,
            labeled_counters,
            labeled_histograms,
        }
    }

    /// Value of a counter (0 when never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All spans with the given name.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanData> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Spans with no (recorded) parent.
    #[must_use]
    pub fn roots(&self) -> Vec<&SpanData> {
        let known: std::collections::HashSet<SpanId> = self.spans.iter().map(|s| s.id).collect();
        self.spans
            .iter()
            .filter(|s| s.parent.is_none_or(|p| !known.contains(&p)))
            .collect()
    }

    /// Direct children of `id`, in start order.
    #[must_use]
    pub fn children_of(&self, id: SpanId) -> Vec<&SpanData> {
        let mut children: Vec<&SpanData> =
            self.spans.iter().filter(|s| s.parent == Some(id)).collect();
        children.sort_by_key(|s| (s.start_ns, s.id));
        children
    }

    /// Wall-clock envelope of all root spans, in nanoseconds.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        let roots = self.roots();
        let start = roots.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let end = roots.iter().map(|s| s.end_ns).max().unwrap_or(0);
        end.saturating_sub(start)
    }

    /// Render the span tree as indented text:
    ///
    /// ```text
    /// profile · 4 spans · total 1.234ms
    /// └─ pipeline                          1.234ms
    ///    ├─ decode                       456.000µs  [bytes=8192]
    ///    └─ extract                      778.000µs
    /// ```
    #[must_use]
    pub fn render_profile(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile · {} spans · total {}",
            self.spans.len(),
            format_ns(self.total_ns())
        );
        let mut roots = self.roots();
        roots.sort_by_key(|s| (s.start_ns, s.id));
        let last_root = roots.len().saturating_sub(1);
        for (i, root) in roots.iter().enumerate() {
            self.render_node(&mut out, root, "", i == last_root);
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name}: n={} mean={} p50≤{} p99≤{}",
                    h.count,
                    format_ns(h.mean().round() as u64),
                    format_ns(h.approx_quantile(0.5)),
                    format_ns(h.approx_quantile(0.99)),
                );
            }
        }
        out
    }

    fn render_node(&self, out: &mut String, span: &SpanData, prefix: &str, last: bool) {
        let branch = if last { "└─ " } else { "├─ " };
        let label = format!("{prefix}{branch}{}", span.name);
        let attrs = if span.attrs.is_empty() {
            String::new()
        } else {
            let pairs: Vec<String> = span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("  [{}]", pairs.join(" "))
        };
        let _ = writeln!(
            out,
            "{label:<44}{:>12}{attrs}",
            format_ns(span.duration_ns())
        );
        let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
        let children = self.children_of(span.id);
        let last_child = children.len().saturating_sub(1);
        for (i, child) in children.iter().enumerate() {
            self.render_node(out, child, &child_prefix, i == last_child);
        }
    }

    /// Serialize as the `BENCH_*.json` trajectory document
    /// (`"schema": "ion-obs/1"`): per-stage aggregates keyed by span name,
    /// raw metrics, and the full span list.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut stages: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for span in &self.spans {
            let entry = stages.entry(span.name.as_ref()).or_insert((0, 0));
            entry.0 += span.duration_ns();
            entry.1 += 1;
        }

        let mut out = String::from("{\n  \"schema\": \"ion-obs/1\",\n");
        let _ = writeln!(out, "  \"total_ns\": {},", self.total_ns());

        out.push_str("  \"stages\": {");
        push_entries(&mut out, stages.iter(), |out, (name, (ns, count))| {
            let _ = write!(
                out,
                "    {}: {{\"total_ns\": {ns}, \"count\": {count}}}",
                json_string(name)
            );
        });
        out.push_str("},\n");

        out.push_str("  \"counters\": {");
        push_entries(&mut out, self.counters.iter(), |out, (name, value)| {
            let _ = write!(out, "    {}: {value}", json_string(name));
        });
        out.push_str("},\n");

        out.push_str("  \"gauges\": {");
        push_entries(&mut out, self.gauges.iter(), |out, (name, value)| {
            let _ = write!(out, "    {}: {}", json_string(name), json_f64(*value));
        });
        out.push_str("},\n");

        out.push_str("  \"histograms\": {");
        push_entries(&mut out, self.histograms.iter(), |out, (name, h)| {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| format!("[{i}, {n}]"))
                .collect();
            let _ = write!(
                out,
                "    {}: {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
                json_string(name),
                h.count,
                h.sum,
                buckets.join(", ")
            );
        });
        out.push_str("},\n");

        // Labeled families are additive (absent when empty) so documents
        // produced before labels existed stay byte-identical.
        if !self.labeled_counters.is_empty() {
            out.push_str("  \"labeled_counters\": {");
            push_entries(
                &mut out,
                self.labeled_counters.iter(),
                |out, (name, sets)| {
                    let entries: Vec<String> = sets
                        .iter()
                        .map(|(set, value)| format!("{}: {value}", json_string(set)))
                        .collect();
                    let _ = write!(out, "    {}: {{{}}}", json_string(name), entries.join(", "));
                },
            );
            out.push_str("},\n");
        }
        if !self.labeled_histograms.is_empty() {
            out.push_str("  \"labeled_histograms\": {");
            push_entries(
                &mut out,
                self.labeled_histograms.iter(),
                |out, (name, sets)| {
                    let entries: Vec<String> = sets
                        .iter()
                        .map(|(set, h)| {
                            format!(
                                "{}: {{\"count\": {}, \"sum\": {}}}",
                                json_string(set),
                                h.count,
                                h.sum
                            )
                        })
                        .collect();
                    let _ = write!(out, "    {}: {{{}}}", json_string(name), entries.join(", "));
                },
            );
            out.push_str("},\n");
        }

        out.push_str("  \"spans\": [");
        push_entries(&mut out, self.spans.iter(), |out, span| {
            let parent = span
                .parent
                .map_or_else(|| "null".to_owned(), |p| p.0.to_string());
            let attrs: Vec<String> = span
                .attrs
                .iter()
                .map(|(k, v)| format!("{}: {}", json_string(k), json_string(v)))
                .collect();
            let _ = write!(
                out,
                "    {{\"id\": {}, \"parent\": {parent}, \"name\": {}, \"thread\": {}, \
                 \"start_ns\": {}, \"end_ns\": {}, \"trace\": {}, \"attrs\": {{{}}}}}",
                span.id.0,
                json_string(&span.name),
                span.thread,
                span.start_ns,
                span.end_ns,
                span.trace,
                attrs.join(", ")
            );
        });
        out.push_str("]\n}\n");
        out
    }
}

/// Write `items` as newline-separated entries between `{`/`}` or `[`/`]`.
fn push_entries<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    mut write_one: impl FnMut(&mut String, T),
) {
    let len = items.len();
    for (i, item) in items.enumerate() {
        out.push('\n');
        write_one(out, item);
        if i + 1 < len {
            out.push(',');
        } else {
            out.push_str("\n  ");
        }
    }
}

/// JSON string literal with the mandatory escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite JSON number for an `f64` (NaN/inf have no JSON spelling → null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// `1234` → `"1.234µs"`; sub-µs in ns, sub-ms in µs, sub-s in ms.
#[must_use]
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn synthetic() -> Snapshot {
        let span =
            |id: u64, parent: Option<u64>, name: &'static str, start: u64, end: u64| SpanData {
                id: SpanId(id),
                parent: parent.map(SpanId),
                name: Cow::Borrowed(name),
                thread: 0,
                start_ns: start,
                end_ns: end,
                trace: 0,
                attrs: Vec::new(),
            };
        Snapshot {
            spans: vec![
                span(1, None, "pipeline", 0, 1_000_000),
                span(2, Some(1), "decode", 0, 250_000),
                span(3, Some(1), "extract", 250_000, 600_000),
            ],
            ..Snapshot::default()
        }
    }

    #[test]
    fn profile_tree_shape() {
        let text = synthetic().render_profile();
        assert!(text.starts_with("profile · 3 spans · total 1.000ms"));
        assert!(text.contains("└─ pipeline"));
        assert!(text.contains("├─ decode"));
        assert!(text.contains("└─ extract"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut snap = synthetic();
        snap.counters.insert("rows".into(), 42);
        let json = snap.to_json();
        assert!(json.contains("\"schema\": \"ion-obs/1\""));
        assert!(json.contains("\"total_ns\": 1000000"));
        assert!(json.contains("\"rows\": 42"));
        assert!(json.contains("\"decode\": {\"total_ns\": 250000, \"count\": 1}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn duration_formats() {
        assert_eq!(format_ns(17), "17ns");
        assert_eq!(format_ns(1_234), "1.234µs");
        assert_eq!(format_ns(1_234_000), "1.234ms");
        assert_eq!(format_ns(2_500_000_000), "2.500s");
    }
}
