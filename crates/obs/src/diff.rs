//! Snapshot-diff regression gate: compare two `ion-obs/1` JSON documents
//! and flag performance regressions.
//!
//! `ion_cli obs diff BENCH_base.json BENCH_new.json` feeds CI: a run that
//! got slower than the recorded baseline (beyond tolerance) exits
//! non-zero, so the perf trajectory can only drift downward deliberately.
//!
//! Three checks, all tolerance-gated (rules documented in DESIGN.md):
//!
//! 1. **Stage wall time** — per-span-name `total_ns` from the `stages`
//!    map. A stage regresses when it is *both* `wall_frac` slower
//!    relatively *and* `wall_floor_ns` slower absolutely (the floor keeps
//!    micro-stage jitter out of CI).
//! 2. **Work counters** — model runs, tool calls and store recomputes
//!    ([`WORK_COUNTERS`]). More work than baseline means incrementality
//!    broke, which no wall-time floor should excuse; any increase beyond
//!    `counter_frac` regresses.
//! 3. **Store hit rate** — `store.hit / (store.hit + store.miss)`. A drop
//!    of more than `hit_rate_drop` (absolute) regresses.
//!
//! Identical documents always produce an empty report (every comparison
//! is a strict inequality), so `obs diff snap.json snap.json` is the CI
//! self-check.

use crate::json::{parse, Json};
use std::fmt;

/// Counters where *more* is a regression regardless of wall time: each
/// unit is recomputed work the cache should have absorbed.
pub const WORK_COUNTERS: [&str; 5] = [
    "llm.runs",
    "llm.tool_calls",
    "store.recompute.trace",
    "store.recompute.issue",
    "store.recompute.summary",
];

/// Tolerances for [`diff_snapshots`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative slowdown a stage must exceed to regress (0.25 = 25%).
    pub wall_frac: f64,
    /// Absolute slowdown (ns) a stage must also exceed to regress.
    pub wall_floor_ns: u64,
    /// Relative growth a work counter must exceed to regress (0 = any
    /// strict increase).
    pub counter_frac: f64,
    /// Absolute store-hit-rate drop that regresses (0.05 = 5 points).
    pub hit_rate_drop: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            wall_frac: 0.25,
            wall_floor_ns: 5_000_000,
            counter_frac: 0.0,
            hit_rate_drop: 0.05,
        }
    }
}

impl Tolerance {
    /// Default tolerances with `wall_frac` (and `counter_frac`) replaced
    /// by `frac` — what `obs diff --tolerance <frac>` applies.
    #[must_use]
    pub fn with_frac(frac: f64) -> Self {
        Tolerance {
            wall_frac: frac,
            counter_frac: frac,
            ..Tolerance::default()
        }
    }
}

/// One detected regression.
#[derive(Debug, Clone, PartialEq)]
pub enum Regression {
    /// A stage's summed wall time grew beyond tolerance.
    Stage {
        /// Span name.
        name: String,
        /// Baseline total nanoseconds.
        base_ns: u64,
        /// New total nanoseconds.
        new_ns: u64,
    },
    /// A work counter grew beyond tolerance.
    Counter {
        /// Counter name.
        name: String,
        /// Baseline value.
        base: u64,
        /// New value.
        new: u64,
    },
    /// The store hit rate dropped beyond tolerance.
    HitRate {
        /// Baseline hit rate in `[0, 1]`.
        base: f64,
        /// New hit rate in `[0, 1]`.
        new: f64,
    },
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regression::Stage {
                name,
                base_ns,
                new_ns,
            } => write!(
                f,
                "stage `{name}`: {} -> {} (+{:.1}%)",
                crate::render::format_ns(*base_ns),
                crate::render::format_ns(*new_ns),
                relative_growth(*base_ns as f64, *new_ns as f64) * 100.0,
            ),
            Regression::Counter { name, base, new } => {
                write!(
                    f,
                    "counter `{name}`: {base} -> {new} (more recomputed work)"
                )
            }
            Regression::HitRate { base, new } => {
                write!(
                    f,
                    "store hit rate: {:.1}% -> {:.1}%",
                    base * 100.0,
                    new * 100.0
                )
            }
        }
    }
}

/// Outcome of comparing two snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Regressions beyond tolerance (non-empty ⇒ gate fails).
    pub regressions: Vec<Regression>,
    /// Informational notes: improvements and skipped comparisons.
    pub notes: Vec<String>,
    /// Number of stages compared.
    pub stages_compared: usize,
}

impl DiffReport {
    /// Whether the gate should fail.
    #[must_use]
    pub fn has_regressions(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Human-readable report.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "obs diff: {} stage(s) compared, {} regression(s)\n",
            self.stages_compared,
            self.regressions.len()
        ));
        for r in &self.regressions {
            out.push_str(&format!("  REGRESSION {r}\n"));
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

fn relative_growth(base: f64, new: f64) -> f64 {
    if base <= 0.0 {
        if new > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        (new - base) / base
    }
}

fn schema_check(doc: &Json, which: &str) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some("ion-obs/1") => Ok(()),
        Some(other) => Err(format!("{which}: unsupported schema `{other}`")),
        None => Err(format!(
            "{which}: not an ion-obs snapshot (no schema field)"
        )),
    }
}

fn stage_ns(doc: &Json) -> Vec<(String, u64)> {
    let Some(Json::Obj(stages)) = doc.get("stages") else {
        return Vec::new();
    };
    stages
        .iter()
        .filter_map(|(name, v)| Some((name.clone(), v.get("total_ns")?.as_u64()?)))
        .collect()
}

fn counter_value(doc: &Json, name: &str) -> u64 {
    doc.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn hit_rate(doc: &Json) -> Option<f64> {
    let hits = counter_value(doc, "store.hit");
    let misses = counter_value(doc, "store.miss");
    let lookups = hits + misses;
    if lookups == 0 {
        return None;
    }
    #[allow(clippy::cast_precision_loss)]
    Some(hits as f64 / lookups as f64)
}

/// Compare two parsed `ion-obs/1` documents.
///
/// # Errors
///
/// Returns a description when either document is not an `ion-obs/1`
/// snapshot.
pub fn diff_snapshots(base: &Json, new: &Json, tol: &Tolerance) -> Result<DiffReport, String> {
    schema_check(base, "baseline")?;
    schema_check(new, "new")?;
    let mut report = DiffReport::default();

    // 1. Per-stage wall time.
    let new_stages = stage_ns(new);
    for (name, base_ns) in stage_ns(base) {
        let Some(&(_, new_ns)) = new_stages.iter().find(|(n, _)| *n == name) else {
            report.notes.push(format!("stage `{name}` gone in new run"));
            continue;
        };
        report.stages_compared += 1;
        #[allow(clippy::cast_precision_loss)]
        let relative_excess = relative_growth(base_ns as f64, new_ns as f64) > tol.wall_frac;
        let absolute_excess = new_ns.saturating_sub(base_ns) > tol.wall_floor_ns;
        if relative_excess && absolute_excess {
            report.regressions.push(Regression::Stage {
                name,
                base_ns,
                new_ns,
            });
        } else if base_ns > new_ns && base_ns - new_ns > tol.wall_floor_ns {
            report.notes.push(format!(
                "stage `{name}` improved: {} -> {}",
                crate::render::format_ns(base_ns),
                crate::render::format_ns(new_ns)
            ));
        }
    }

    // 2. Work counters.
    for name in WORK_COUNTERS {
        let base_v = counter_value(base, name);
        let new_v = counter_value(new, name);
        #[allow(clippy::cast_precision_loss)]
        if relative_growth(base_v as f64, new_v as f64) > tol.counter_frac {
            report.regressions.push(Regression::Counter {
                name: name.to_owned(),
                base: base_v,
                new: new_v,
            });
        }
    }

    // 3. Store hit rate.
    match (hit_rate(base), hit_rate(new)) {
        (Some(base_rate), Some(new_rate)) if base_rate - new_rate > tol.hit_rate_drop => {
            report.regressions.push(Regression::HitRate {
                base: base_rate,
                new: new_rate,
            });
        }
        (Some(_), None) => report
            .notes
            .push("new run performed no store lookups".to_owned()),
        _ => {}
    }

    Ok(report)
}

/// Parse and compare two `ion-obs/1` documents from their JSON text.
///
/// # Errors
///
/// Returns a description when either text fails to parse or is not a
/// snapshot document.
pub fn diff_documents(base: &str, new: &str, tol: &Tolerance) -> Result<DiffReport, String> {
    let base = parse(base).map_err(|e| format!("baseline: {e}"))?;
    let new = parse(new).map_err(|e| format!("new: {e}"))?;
    diff_snapshots(&base, &new, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(stage_ns: u64, llm_runs: u64, hits: u64, misses: u64) -> String {
        format!(
            "{{\"schema\": \"ion-obs/1\", \"total_ns\": {stage_ns}, \
             \"stages\": {{\"pipeline\": {{\"total_ns\": {stage_ns}, \"count\": 1}}}}, \
             \"counters\": {{\"llm.runs\": {llm_runs}, \"store.hit\": {hits}, \
             \"store.miss\": {misses}}}, \"gauges\": {{}}, \"histograms\": {{}}, \"spans\": []}}"
        )
    }

    #[test]
    fn identical_documents_pass() {
        let d = doc(100_000_000, 5, 8, 2);
        let report = diff_documents(&d, &d, &Tolerance::default()).unwrap();
        assert!(!report.has_regressions(), "{}", report.render_text());
        assert_eq!(report.stages_compared, 1);
    }

    #[test]
    fn wall_time_regression_is_flagged() {
        let base = doc(100_000_000, 5, 8, 2);
        let slow = doc(200_000_000, 5, 8, 2);
        let report = diff_documents(&base, &slow, &Tolerance::default()).unwrap();
        assert!(matches!(
            report.regressions.as_slice(),
            [Regression::Stage { name, .. }] if name == "pipeline"
        ));
    }

    #[test]
    fn small_or_subfloor_slowdowns_pass() {
        let base = doc(100_000_000, 5, 8, 2);
        // +10% is inside the 25% default tolerance.
        let within = doc(110_000_000, 5, 8, 2);
        assert!(!diff_documents(&base, &within, &Tolerance::default())
            .unwrap()
            .has_regressions());
        // +100% but only 2ms absolute — under the 5ms floor.
        let tiny_base = doc(2_000_000, 5, 8, 2);
        let tiny_slow = doc(4_000_000, 5, 8, 2);
        assert!(
            !diff_documents(&tiny_base, &tiny_slow, &Tolerance::default())
                .unwrap()
                .has_regressions()
        );
    }

    #[test]
    fn model_run_increase_is_flagged() {
        let base = doc(100_000_000, 5, 8, 2);
        let more_runs = doc(100_000_000, 6, 8, 2);
        let report = diff_documents(&base, &more_runs, &Tolerance::default()).unwrap();
        assert!(matches!(
            report.regressions.as_slice(),
            [Regression::Counter { name, base: 5, new: 6 }] if name == "llm.runs"
        ));
    }

    #[test]
    fn hit_rate_drop_is_flagged() {
        let base = doc(100_000_000, 5, 9, 1); // 90%
        let cold = doc(100_000_000, 5, 5, 5); // 50%
        let report = diff_documents(&base, &cold, &Tolerance::default()).unwrap();
        assert!(report
            .regressions
            .iter()
            .any(|r| matches!(r, Regression::HitRate { .. })));
    }

    #[test]
    fn custom_tolerance_loosens_the_gate() {
        let base = doc(100_000_000, 5, 8, 2);
        let slow = doc(200_000_000, 5, 8, 2);
        let report = diff_documents(&base, &slow, &Tolerance::with_frac(1.5)).unwrap();
        assert!(!report.has_regressions());
    }

    #[test]
    fn non_snapshot_documents_are_rejected() {
        assert!(diff_documents("{}", "{}", &Tolerance::default()).is_err());
        assert!(diff_documents("not json", "{}", &Tolerance::default()).is_err());
        let events_line = "{\"schema\": \"ion-obs/events/2\"}";
        assert!(diff_documents(events_line, events_line, &Tolerance::default()).is_err());
    }
}
