//! Per-request trace documents (`ion-trace/1`) and the Chrome
//! `trace_event` export consumed by Perfetto / `chrome://tracing`.
//!
//! A trace document is the span tree one request produced, serialized as
//! JSON: stage aggregates keyed by span name plus the raw span list (ids,
//! parents, intervals, attrs). The daemon composes the envelope (job id,
//! tenant, state) around the fragments rendered here; [`parse_spans`]
//! reads the document back, and [`chrome_trace`] re-renders any parsed
//! span list as a Chrome JSON timeline — the offline inspection path for
//! "where did this job's time go".

use crate::json::{escape, Json};
use crate::span::{SpanData, SpanId};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema identifier of a per-request trace document.
pub const SCHEMA: &str = "ion-trace/1";

/// `"stages": {name: {"total_ns": .., "count": ..}}` fragment — the same
/// per-stage aggregation the `ion-obs/1` snapshot uses, restricted to one
/// request's spans.
#[must_use]
pub fn stages_json(spans: &[SpanData]) -> String {
    let mut stages: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for span in spans {
        let entry = stages.entry(span.name.as_ref()).or_insert((0, 0));
        entry.0 += span.duration_ns();
        entry.1 += 1;
    }
    let mut out = String::from("{");
    for (i, (name, (ns, count))) in stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}:{{\"total_ns\":{ns},\"count\":{count}}}",
            escape(name)
        );
    }
    out.push('}');
    out
}

/// `"spans": [..]` array fragment: every span with id, parent, name,
/// thread, interval, trace and attrs.
#[must_use]
pub fn spans_json(spans: &[SpanData]) -> String {
    let mut out = String::from("[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let parent = span
            .parent
            .map_or_else(|| "null".to_owned(), |p| p.0.to_string());
        let attrs: Vec<String> = span
            .attrs
            .iter()
            .map(|(k, v)| format!("{}:{}", escape(k), escape(v)))
            .collect();
        let _ = write!(
            out,
            "{{\"id\":{},\"parent\":{parent},\"name\":{},\"thread\":{},\"start_ns\":{},\"end_ns\":{},\"trace\":{},\"attrs\":{{{}}}}}",
            span.id.0,
            escape(&span.name),
            span.thread,
            span.start_ns,
            span.end_ns,
            span.trace,
            attrs.join(",")
        );
    }
    out.push(']');
    out
}

/// Sum of a numeric attribute over spans named `span_name` — e.g. the
/// request's LLM token totals (`llm.run` spans carry `tokens_in` /
/// `tokens_out` attrs).
#[must_use]
pub fn sum_attr(spans: &[SpanData], span_name: &str, attr: &str) -> u64 {
    spans
        .iter()
        .filter(|s| s.name == span_name)
        .flat_map(|s| &s.attrs)
        .filter(|(k, _)| k == attr)
        .filter_map(|(_, v)| v.parse::<u64>().ok())
        .sum()
}

/// Read the `"spans"` array back out of a parsed trace (or snapshot)
/// document. Returns `None` when the key is missing or not an array;
/// individual malformed spans are skipped rather than failing the batch.
#[must_use]
pub fn parse_spans(doc: &Json) -> Option<Vec<SpanData>> {
    let Json::Arr(items) = doc.get("spans")? else {
        return None;
    };
    let mut spans = Vec::with_capacity(items.len());
    for item in items {
        let Some(id) = item.get("id").and_then(Json::as_u64) else {
            continue;
        };
        let Some(name) = item.get("name").and_then(Json::as_str) else {
            continue;
        };
        let mut attrs: Vec<(Cow<'static, str>, String)> = Vec::new();
        if let Some(Json::Obj(map)) = item.get("attrs") {
            for (k, v) in map {
                // Attrs are serialized as strings; tolerate bare scalars.
                let value = match v {
                    Json::Str(s) => s.clone(),
                    Json::Num(n) => format!("{n}"),
                    Json::Bool(b) => b.to_string(),
                    _ => continue,
                };
                attrs.push((Cow::Owned(k.clone()), value));
            }
        }
        spans.push(SpanData {
            id: SpanId(id),
            parent: item.get("parent").and_then(Json::as_u64).map(SpanId),
            name: Cow::Owned(name.to_owned()),
            thread: item.get("thread").and_then(Json::as_u64).unwrap_or(0),
            start_ns: item.get("start_ns").and_then(Json::as_u64).unwrap_or(0),
            end_ns: item.get("end_ns").and_then(Json::as_u64).unwrap_or(0),
            trace: item.get("trace").and_then(Json::as_u64).unwrap_or(0),
            attrs,
        });
    }
    Some(spans)
}

/// Render spans as Chrome `trace_event` JSON (the "JSON Array Format"
/// with complete `"ph":"X"` events), loadable in Perfetto or
/// `chrome://tracing`. Timestamps and durations are microseconds; the
/// trace id becomes the `pid` so multiple exported traces stay visually
/// separate, and the recording thread index becomes the `tid` row.
#[must_use]
pub fn chrome_trace(spans: &[SpanData]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut args: Vec<String> = span
            .attrs
            .iter()
            .map(|(k, v)| format!("{}:{}", escape(k), escape(v)))
            .collect();
        args.push(format!("\"span_id\":{}", span.id.0));
        if let Some(parent) = span.parent {
            args.push(format!("\"parent_id\":{}", parent.0));
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
            escape(&span.name),
            micros(span.start_ns),
            micros(span.duration_ns()),
            span.trace,
            span.thread,
            args.join(",")
        );
    }
    out.push_str("]}");
    out
}

/// Nanoseconds → microseconds with three decimal places (Chrome's `ts`
/// unit), rendered without float formatting surprises.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample() -> Vec<SpanData> {
        let span = |id: u64, parent: Option<u64>, name: &'static str| SpanData {
            id: SpanId(id),
            parent: parent.map(SpanId),
            name: Cow::Borrowed(name),
            thread: id % 2,
            start_ns: id * 1_000,
            end_ns: id * 1_000 + 500,
            trace: 7,
            attrs: vec![(Cow::Borrowed("k"), format!("v{id}"))],
        };
        vec![
            span(1, None, "pipeline"),
            span(2, Some(1), "decode"),
            span(3, Some(1), "llm.run"),
        ]
    }

    #[test]
    fn spans_round_trip_through_the_parser() {
        let spans = sample();
        let doc = format!(
            "{{\"schema\":{},\"trace\":7,\"stages\":{},\"spans\":{}}}",
            escape(SCHEMA),
            stages_json(&spans),
            spans_json(&spans),
        );
        let parsed = parse(&doc).expect("trace document parses");
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let back = parse_spans(&parsed).expect("spans array present");
        assert_eq!(back, spans, "byte-exact span round-trip");
        assert_eq!(
            parsed
                .get("stages")
                .and_then(|s| s.get("decode"))
                .and_then(|d| d.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn chrome_export_is_valid_json_with_one_event_per_span() {
        let spans = sample();
        let chrome = chrome_trace(&spans);
        let parsed = parse(&chrome).expect("chrome trace parses");
        let Some(Json::Arr(events)) = parsed.get("traceEvents") else {
            panic!("traceEvents array missing");
        };
        assert_eq!(events.len(), spans.len());
        let first = &events[0];
        assert_eq!(first.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(first.get("pid").and_then(Json::as_u64), Some(7));
        assert_eq!(first.get("ts").and_then(Json::as_f64), Some(1.0));
        assert_eq!(first.get("dur").and_then(Json::as_f64), Some(0.5));
        assert_eq!(
            first
                .get("args")
                .and_then(|a| a.get("span_id"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn sum_attr_totals_numeric_attrs() {
        let mut spans = sample();
        spans[2]
            .attrs
            .push((Cow::Borrowed("tokens_in"), "120".into()));
        spans[2]
            .attrs
            .push((Cow::Borrowed("tokens_out"), "30".into()));
        assert_eq!(sum_attr(&spans, "llm.run", "tokens_in"), 120);
        assert_eq!(sum_attr(&spans, "llm.run", "tokens_out"), 30);
        assert_eq!(sum_attr(&spans, "decode", "tokens_in"), 0);
    }
}
