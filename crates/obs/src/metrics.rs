//! Thread-safe metrics: counters, gauges, log₂-bucketed histograms.
//!
//! Handles returned by the [`Registry`] share atomics with the registry,
//! so hot paths are one atomic RMW; only name resolution takes the
//! `parking_lot` read lock (write lock on first registration).

use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log₂ buckets: index `i` holds values needing `i` significant
/// bits, i.e. 0, then `[2^(i-1), 2^i)` for `i ≥ 1`, up to the full `u64`.
pub const BUCKETS: usize = 65;

/// Bucket index for one observation.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Monotonic counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge handle (stores `f64` bits).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared histogram state.
#[derive(Debug)]
pub struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Log₂ histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Point-in-time copy.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Plain-data histogram copy; merging is elementwise addition, which makes
/// it associative and commutative (property-tested in `tests/prop_obs.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-log₂-bucket observation counts.
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Combine two snapshots (e.g. from per-shard registries). Addition is
    /// wrapping, matching the atomics that produced the fields, so merging
    /// stays associative and commutative even at the `u64` boundary.
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.wrapping_add(other.count),
            sum: self.sum.wrapping_add(other.sum),
            buckets: std::array::from_fn(|i| self.buckets[i].wrapping_add(other.buckets[i])),
        }
    }

    /// Mean observed value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive) of bucket `i`; saturates at `u64::MAX`.
    #[must_use]
    pub fn bucket_limit(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`) from the bucket counts: the
    /// upper bound of the bucket holding the q-th observation.
    #[must_use]
    pub fn approx_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_limit(i);
            }
        }
        u64::MAX
    }
}

/// Most label sets one metric family may hold. Past the cap, updates
/// degrade to the unlabeled family and `obs.labels.dropped` counts the
/// overflow — a hostile or buggy caller (e.g. unbounded tenant ids) can
/// never grow the registry without bound.
pub const MAX_LABEL_SETS: usize = 64;

/// Overflow counter bumped when a label set is refused.
pub const LABELS_DROPPED: &str = "obs.labels.dropped";

/// Canonical text form of a label set: keys sorted, values escaped,
/// rendered `k="v"` and joined with `,` — exactly the token that sits
/// between `{` and `}` in Prometheus text exposition.
#[must_use]
pub fn labelset(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_unstable();
    let mut out = String::new();
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                other => out.push(other),
            }
        }
        out.push('"');
    }
    out
}

/// Sorted copy of the labeled counter families:
/// `family name → canonical labelset → value`.
pub type LabeledCounters = BTreeMap<String, BTreeMap<String, u64>>;

/// Sorted copy of the labeled histogram families:
/// `family name → canonical labelset → snapshot`.
pub type LabeledHistograms = BTreeMap<String, BTreeMap<String, HistogramSnapshot>>;

/// Named metrics, safe to update from any number of threads.
pub struct Registry {
    counters: RwLock<HashMap<String, Counter>>,
    gauges: RwLock<HashMap<String, Gauge>>,
    histograms: RwLock<HashMap<String, Histogram>>,
    /// family name → labelset → handle; bounded per family.
    labeled_counters: RwLock<HashMap<String, HashMap<String, Counter>>>,
    labeled_histograms: RwLock<HashMap<String, HashMap<String, Histogram>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            counters: RwLock::new(HashMap::new()),
            gauges: RwLock::new(HashMap::new()),
            histograms: RwLock::new(HashMap::new()),
            labeled_counters: RwLock::new(HashMap::new()),
            labeled_histograms: RwLock::new(HashMap::new()),
        }
    }

    /// Handle for the named counter, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(name.to_owned())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Handle for the named gauge, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .entry(name.to_owned())
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Handle for the named histogram, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.histograms.read().get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .entry(name.to_owned())
            .or_insert_with(|| Histogram(Arc::new(HistogramCore::new())))
            .clone()
    }

    /// Handle for one labeled counter in the family `name`, e.g.
    /// `counter_with("serve.jobs.submitted", &[("tenant", "acme")])`.
    /// Each family holds at most [`MAX_LABEL_SETS`] label sets; past the
    /// cap new sets degrade to the unlabeled [`Registry::counter`] and
    /// [`LABELS_DROPPED`] counts the refusal, so hostile label values
    /// bound memory instead of growing it.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let set = labelset(labels);
        if let Some(c) = self
            .labeled_counters
            .read()
            .get(name)
            .and_then(|family| family.get(&set))
        {
            return c.clone();
        }
        let mut families = self.labeled_counters.write();
        let family = families.entry(name.to_owned()).or_default();
        if family.len() >= MAX_LABEL_SETS && !family.contains_key(&set) {
            drop(families);
            self.counter(LABELS_DROPPED).add(1);
            return self.counter(name);
        }
        family
            .entry(set)
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Handle for one labeled histogram in the family `name`; same
    /// cardinality policy as [`Registry::counter_with`].
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let set = labelset(labels);
        if let Some(h) = self
            .labeled_histograms
            .read()
            .get(name)
            .and_then(|family| family.get(&set))
        {
            return h.clone();
        }
        let mut families = self.labeled_histograms.write();
        let family = families.entry(name.to_owned()).or_default();
        if family.len() >= MAX_LABEL_SETS && !family.contains_key(&set) {
            drop(families);
            self.counter(LABELS_DROPPED).add(1);
            return self.histogram(name);
        }
        family
            .entry(set)
            .or_insert_with(|| Histogram(Arc::new(HistogramCore::new())))
            .clone()
    }

    /// Sorted copies of every metric.
    #[must_use]
    pub fn snapshot(
        &self,
    ) -> (
        BTreeMap<String, u64>,
        BTreeMap<String, f64>,
        BTreeMap<String, HistogramSnapshot>,
    ) {
        let counters = self
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        (counters, gauges, histograms)
    }

    /// Sorted copies of every labeled family:
    /// `family name → labelset → value`.
    #[must_use]
    pub fn snapshot_labeled(&self) -> (LabeledCounters, LabeledHistograms) {
        let counters = self
            .labeled_counters
            .read()
            .iter()
            .map(|(name, family)| {
                (
                    name.clone(),
                    family.iter().map(|(s, c)| (s.clone(), c.get())).collect(),
                )
            })
            .collect();
        let histograms = self
            .labeled_histograms
            .read()
            .iter()
            .map(|(name, family)| {
                (
                    name.clone(),
                    family
                        .iter()
                        .map(|(s, h)| (s.clone(), h.snapshot()))
                        .collect(),
                )
            })
            .collect();
        (counters, histograms)
    }

    /// Remove every metric (handles held elsewhere keep counting into
    /// detached atomics).
    pub fn clear(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
        self.labeled_counters.write().clear();
        self.labeled_histograms.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = Registry::new();
        reg.counter("ops").add(3);
        reg.counter("ops").add(4);
        reg.gauge("depth").set(2.5);
        let (counters, gauges, _) = reg.snapshot();
        assert_eq!(counters["ops"], 7);
        assert!((gauges["depth"] - 2.5).abs() < f64::EPSILON);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1106);
        assert!(snap.approx_quantile(0.5) <= 4);
        assert!(snap.approx_quantile(1.0) >= 1000);
    }

    #[test]
    fn labeled_families_are_disjoint_and_canonical() {
        let reg = Registry::new();
        reg.counter_with("jobs", &[("tenant", "a")]).add(2);
        reg.counter_with("jobs", &[("tenant", "b")]).add(5);
        // Key order does not matter: same canonical labelset, same handle.
        reg.counter_with("jobs", &[("zone", "z"), ("tenant", "a")])
            .add(1);
        reg.counter_with("jobs", &[("tenant", "a"), ("zone", "z")])
            .add(1);
        let (counters, _) = reg.snapshot_labeled();
        let jobs = &counters["jobs"];
        assert_eq!(jobs["tenant=\"a\""], 2);
        assert_eq!(jobs["tenant=\"b\""], 5);
        assert_eq!(jobs["tenant=\"a\",zone=\"z\""], 2);
        // Label values are escaped for exposition.
        reg.counter_with("jobs", &[("tenant", "he said \"hi\"\n")])
            .add(1);
        let (counters, _) = reg.snapshot_labeled();
        assert!(counters["jobs"].contains_key("tenant=\"he said \\\"hi\\\"\\n\""));
    }

    #[test]
    fn label_cardinality_overflow_degrades_to_unlabeled() {
        let reg = Registry::new();
        for i in 0..MAX_LABEL_SETS {
            reg.counter_with("flood", &[("tenant", &format!("t{i}"))])
                .add(1);
        }
        // The cap is reached: new sets fall back to the unlabeled family.
        reg.counter_with("flood", &[("tenant", "overflow-1")])
            .add(7);
        reg.counter_with("flood", &[("tenant", "overflow-2")])
            .add(3);
        let (counters, _, _) = reg.snapshot();
        assert_eq!(counters["flood"], 10, "overflow lands unlabeled");
        assert_eq!(counters[LABELS_DROPPED], 2);
        let (labeled, _) = reg.snapshot_labeled();
        assert_eq!(labeled["flood"].len(), MAX_LABEL_SETS);
        // Existing sets keep working at the cap.
        reg.counter_with("flood", &[("tenant", "t0")]).add(1);
        let (labeled, _) = reg.snapshot_labeled();
        assert_eq!(labeled["flood"]["tenant=\"t0\""], 2);
        // Histograms share the policy.
        for i in 0..=MAX_LABEL_SETS {
            reg.histogram_with("lat", &[("tenant", &format!("t{i}"))])
                .observe(8);
        }
        let (_, _, hists) = reg.snapshot();
        assert_eq!(hists["lat"].count, 1, "histogram overflow degraded");
    }

    #[test]
    fn merge_is_elementwise() {
        let a = HistogramSnapshot {
            count: 1,
            sum: 5,
            buckets: {
                let mut b = [0; BUCKETS];
                b[3] = 1;
                b
            },
        };
        let b = HistogramSnapshot {
            count: 2,
            sum: 7,
            buckets: {
                let mut b = [0; BUCKETS];
                b[3] = 1;
                b[0] = 1;
                b
            },
        };
        let m = a.merge(&b);
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 12);
        assert_eq!(m.buckets[3], 2);
        assert_eq!(m.buckets[0], 1);
    }
}
