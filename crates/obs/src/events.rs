//! Structured event stream: a bounded MPSC ring buffer drained by a
//! background JSONL writer.
//!
//! Where spans and metrics answer "how long did the run take, in
//! aggregate", the event stream answers "what is the pipeline doing *right
//! now*": span open/close, counter deltas, model-run lifecycle, store
//! hit/miss and per-trace batch outcomes flow through one ordered stream
//! that tools can tail while a long batch is still running.
//!
//! Design contract (the same one the rest of `ion-obs` keeps):
//!
//! - **Zero cost when disabled** — every emit site is guarded by one
//!   relaxed atomic load ([`enabled`]); field construction happens only
//!   behind the guard (use the [`event!`](crate::event) macro).
//! - **Never blocks the hot path** — producers never wait on file I/O or
//!   on a full buffer. The ring holds a `parking_lot` mutex only for an
//!   O(1) push or an O(1) buffer swap; when the ring is full the event is
//!   *dropped and counted* ([`EventRing::dropped`], surfaced as the
//!   `obs.events.dropped` counter by the writer), never enqueued-with-wait.
//! - **Ordered** — sequence numbers are assigned under the same lock that
//!   enqueues, so JSONL lines come out in `seq` order.
//!
//! The on-disk format is one JSON object per line (`ion-obs/events/2`,
//! documented in DESIGN.md): a header line
//! `{"schema":"ion-obs/events/2","capacity":N}` followed by event lines
//! `{"seq":..,"ts_ns":..,"kind":"..","fields":{..}}`. Version 2 adds
//! optional `trace`/`span` fields stamped onto every event emitted from a
//! thread with an installed [`TraceContext`](crate::TraceContext) —
//! readers of version 1 documents parse version 2 unchanged (the fields
//! are additive).

use crate::json::{self, Json};
use parking_lot::{Mutex, RwLock};
use std::borrow::Cow;
use std::collections::VecDeque;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Schema identifier written on the JSONL header line.
pub const SCHEMA: &str = "ion-obs/events/2";

/// Default global ring capacity (events, not bytes) used by the CLI.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, ids, durations in ns).
    U64(u64),
    /// Floating point (gauges).
    F64(f64),
    /// Text (names, paths, outcomes).
    Str(String),
    /// Boolean (hit/miss, error flags).
    Bool(bool),
}

impl Value {
    fn to_json_fragment(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::F64(v) => {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_owned()
                }
            }
            Value::Str(s) => json::escape(s),
            Value::Bool(b) => b.to_string(),
        }
    }

    fn from_json(j: &Json) -> Option<Value> {
        match j {
            Json::Bool(b) => Some(Value::Bool(*b)),
            Json::Str(s) => Some(Value::Str(s.clone())),
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(n) => {
                // Integers survive the round trip as U64 when exact.
                if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) {
                    Some(Value::U64(*n as u64))
                } else {
                    Some(Value::F64(*n))
                }
            }
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Stream-wide sequence number (1-based, gap-free except for drops).
    pub seq: u64,
    /// Nanoseconds since the ring's first event.
    pub ts_ns: u64,
    /// Event kind, e.g. `span.close` or `llm.run.started`.
    pub kind: Cow<'static, str>,
    /// `key → value` payload in insertion order.
    pub fields: Vec<(Cow<'static, str>, Value)>,
}

impl Event {
    /// Render as one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"ts_ns\":");
        out.push_str(&self.ts_ns.to_string());
        out.push_str(",\"kind\":");
        out.push_str(&json::escape(&self.kind));
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json::escape(k));
            out.push(':');
            out.push_str(&v.to_json_fragment());
        }
        out.push_str("}}");
        out
    }

    /// Parse back from a parsed JSONL line. Returns `None` when the
    /// document is not an `ion-obs/events/2` event object (the reader
    /// also accepts `events/1` lines, which simply lack `trace`/`span`).
    #[must_use]
    pub fn from_json(doc: &Json) -> Option<Event> {
        let seq = doc.get("seq")?.as_u64()?;
        let ts_ns = doc.get("ts_ns")?.as_u64()?;
        let kind = doc.get("kind")?.as_str()?.to_owned();
        let Json::Obj(raw_fields) = doc.get("fields")? else {
            return None;
        };
        let mut fields = Vec::with_capacity(raw_fields.len());
        for (k, v) in raw_fields {
            fields.push((Cow::Owned(k.clone()), Value::from_json(v)?));
        }
        Some(Event {
            seq,
            ts_ns,
            kind: Cow::Owned(kind),
            fields,
        })
    }

    /// Field value by key, if present.
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Bounded multi-producer ring buffer. Full ring ⇒ new events are dropped
/// and counted — producers never wait for the consumer.
pub struct EventRing {
    queue: Mutex<VecDeque<Event>>,
    capacity: usize,
    epoch: OnceLock<Instant>,
    next_seq: AtomicU64,
    dropped: AtomicU64,
}

impl EventRing {
    /// Ring holding at most `capacity` undrained events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            queue: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            epoch: OnceLock::new(),
            next_seq: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum number of undrained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn now_ns(&self) -> u64 {
        let epoch = *self.epoch.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Enqueue one event. Returns `false` (and counts the drop) when the
    /// ring is full; never blocks beyond the O(1) critical section.
    pub fn push(
        &self,
        kind: impl Into<Cow<'static, str>>,
        fields: Vec<(Cow<'static, str>, Value)>,
    ) -> bool {
        let ts_ns = self.now_ns();
        let mut queue = self.queue.lock();
        if queue.len() >= self.capacity {
            drop(queue);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // Sequence assignment happens under the queue lock so drained
        // batches come out strictly seq-ordered.
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        queue.push_back(Event {
            seq,
            ts_ns,
            kind: kind.into(),
            fields,
        });
        true
    }

    /// Take every queued event (FIFO). The swap is O(1); JSONL encoding
    /// and file I/O happen on the caller's (writer's) time.
    #[must_use]
    pub fn drain(&self) -> Vec<Event> {
        let mut queue = self.queue.lock();
        if queue.is_empty() {
            return Vec::new();
        }
        let taken = std::mem::replace(&mut *queue, VecDeque::with_capacity(self.capacity));
        drop(queue);
        taken.into()
    }

    /// Number of currently queued (undrained) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether the ring has no queued events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    /// Total events dropped because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drops accumulated since the last call (the writer's accounting
    /// hook: the delta feeds the `obs.events.dropped` counter).
    pub fn take_dropped(&self) -> u64 {
        self.dropped.swap(0, Ordering::Relaxed)
    }
}

/// Final accounting from a finished [`EventWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventWriterStats {
    /// Events written to the JSONL file.
    pub written: u64,
    /// Events dropped under backpressure over the writer's lifetime.
    pub dropped: u64,
}

/// Background thread that drains an [`EventRing`] to a JSONL file.
pub struct EventWriter {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<io::Result<EventWriterStats>>,
}

impl EventWriter {
    /// Create `path`, write the schema header line, and start draining
    /// `ring` every few milliseconds.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created or the header
    /// cannot be written.
    pub fn spawn(ring: Arc<EventRing>, path: &Path) -> io::Result<EventWriter> {
        let mut file = BufWriter::new(std::fs::File::create(path)?);
        writeln!(
            file,
            "{{\"schema\":{},\"capacity\":{}}}",
            json::escape(SCHEMA),
            ring.capacity()
        )?;
        file.flush()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ion-obs-events".into())
            .spawn(move || {
                let mut written = 0u64;
                let mut dropped = 0u64;
                loop {
                    let stopping = thread_stop.load(Ordering::Acquire);
                    written += Self::write_batch(&ring, &mut file)?;
                    let newly_dropped = ring.take_dropped();
                    if newly_dropped > 0 {
                        dropped += newly_dropped;
                        crate::counter("obs.events.dropped", newly_dropped);
                    }
                    if stopping {
                        // The stop flag was seen *before* this final drain,
                        // so everything enqueued before `finish()` is on
                        // disk when it returns.
                        file.flush()?;
                        return Ok(EventWriterStats { written, dropped });
                    }
                    file.flush()?;
                    std::thread::sleep(Duration::from_millis(10));
                }
            })?;
        Ok(EventWriter { stop, handle })
    }

    fn write_batch(ring: &EventRing, file: &mut BufWriter<std::fs::File>) -> io::Result<u64> {
        let batch = ring.drain();
        let n = batch.len() as u64;
        for event in batch {
            file.write_all(event.to_jsonl().as_bytes())?;
            file.write_all(b"\n")?;
        }
        Ok(n)
    }

    /// Stop the writer, flush everything still queued, and return the
    /// final accounting.
    ///
    /// # Errors
    ///
    /// Returns any I/O error the writer thread hit.
    pub fn finish(self) -> io::Result<EventWriterStats> {
        self.stop.store(true, Ordering::Release);
        self.handle
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("event writer thread panicked")))
    }
}

/// Whether the global event stream records anything. One relaxed load —
/// the only cost instrumented code pays when streaming is off.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    STREAM_ENABLED.load(Ordering::Relaxed)
}

static STREAM_ENABLED: AtomicBool = AtomicBool::new(false);

fn global_ring() -> &'static RwLock<Option<Arc<EventRing>>> {
    static RING: OnceLock<RwLock<Option<Arc<EventRing>>>> = OnceLock::new();
    RING.get_or_init(|| RwLock::new(None))
}

/// Install `ring` as the global event sink and start streaming into it.
pub fn install(ring: Arc<EventRing>) {
    *global_ring().write() = Some(ring);
    STREAM_ENABLED.store(true, Ordering::Relaxed);
}

/// Stop streaming and detach the global ring, returning it (events still
/// queued inside stay drainable by a writer that holds its own `Arc`).
pub fn uninstall() -> Option<Arc<EventRing>> {
    STREAM_ENABLED.store(false, Ordering::Relaxed);
    global_ring().write().take()
}

/// Emit one event into the global stream (no-op when no ring is
/// installed). Prefer the [`event!`](crate::event) macro, which skips
/// field construction entirely while the stream is disabled.
pub fn emit(kind: impl Into<Cow<'static, str>>, fields: Vec<(Cow<'static, str>, Value)>) {
    if !enabled() {
        return;
    }
    let ring = global_ring().read().clone();
    if let Some(ring) = ring {
        let mut fields = fields;
        // Request attribution (ion-obs/events/2): events emitted from a
        // thread working for a trace carry the trace id and the innermost
        // open span, so a consumer can follow one job through the stream.
        if let Some((trace, span)) = crate::thread_trace_ids() {
            fields.push((Cow::Borrowed("trace"), Value::U64(trace)));
            if let Some(span) = span {
                fields.push((Cow::Borrowed("span"), Value::U64(span)));
            }
        }
        let _ = ring.push(kind, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_drain_preserves_fifo_and_seq() {
        let ring = EventRing::new(16);
        for i in 0..5u64 {
            assert!(ring.push("tick", vec![(Cow::Borrowed("i"), Value::U64(i))]));
        }
        let batch = ring.drain();
        assert_eq!(batch.len(), 5);
        for (i, e) in batch.iter().enumerate() {
            assert_eq!(e.seq, i as u64 + 1);
            assert_eq!(e.field("i"), Some(&Value::U64(i as u64)));
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let ring = EventRing::new(2);
        assert!(ring.push("a", Vec::new()));
        assert!(ring.push("b", Vec::new()));
        assert!(!ring.push("c", Vec::new()));
        assert!(!ring.push("d", Vec::new()));
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.len(), 2);
        // Draining frees capacity again.
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.push("e", Vec::new()));
        assert_eq!(ring.take_dropped(), 2);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn jsonl_line_round_trips() {
        let event = Event {
            seq: 7,
            ts_ns: 1234,
            kind: Cow::Borrowed("store.lookup"),
            fields: vec![
                (Cow::Borrowed("key"), Value::Str("trace/ab\"c".into())),
                (Cow::Borrowed("hit"), Value::Bool(true)),
                (Cow::Borrowed("bytes"), Value::U64(4096)),
                (Cow::Borrowed("rate"), Value::F64(0.5)),
            ],
        };
        let line = event.to_jsonl();
        let parsed = Event::from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed.seq, event.seq);
        assert_eq!(parsed.ts_ns, event.ts_ns);
        assert_eq!(parsed.kind, event.kind);
        // Parsed fields come back key-sorted (JSON objects are unordered);
        // every key/value pair must survive exactly.
        assert_eq!(parsed.fields.len(), event.fields.len());
        for (key, value) in &event.fields {
            assert_eq!(parsed.field(key), Some(value), "field {key}");
        }
    }

    #[test]
    fn emit_without_install_is_noop() {
        // Not installed (or torn down by another test) — must not panic.
        emit("ghost", Vec::new());
    }
}
