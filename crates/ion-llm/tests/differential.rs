//! Differential test: the planned, vectorized IQL engine versus the
//! original tree-walking interpreter (compiled behind `legacy-eval`,
//! enabled here through the crate's self-dev-dependency).
//!
//! Random programs over random tables must produce bit-for-bit identical
//! results from both engines: same `Ok`/`Err`, same error, same emitted
//! scalars (floats compared by `to_bits`), same final table cells, same
//! `rows_scanned` accounting. A deterministic corpus pins the trickiest
//! legacy semantics (division by zero, NULL handling, empty inputs,
//! nearest-rank percentile, join column collisions) explicitly.

use extractor::{ChunkedTableBuilder, ColumnData, Table, TableSet, Value};
use ion_llm::iql::legacy::LegacyInterpreter;
use ion_llm::iql::{parse_program, Interpreter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Random generation
// ---------------------------------------------------------------------------

const STR_POOL: [&str; 5] = ["read", "write", "", "aa", "bb"];

/// Column layout shared by the generated tables: a join key plus one
/// column per storage class (typed int/float/str, nullable, mixed).
const COLS: [&str; 6] = ["k", "a", "x", "s", "n", "m"];

fn random_cell(rng: &mut SmallRng, col: &str) -> Value {
    match col {
        // Join key: tiny domain so joins actually match (and collide).
        "k" => Value::Int(rng.gen_range(0..3_i64)),
        // Dense int column; includes zero to exercise `/ 0 == 0`.
        "a" => Value::Int(rng.gen_range(-3..4_i64)),
        // Dense float column.
        "x" => Value::Float(f64::from(rng.gen_range(-20..21_i32)) / 4.0),
        // Dense string column.
        "s" => Value::from(STR_POOL[rng.gen_range(0..STR_POOL.len())]),
        // Nullable int column: typed storage with a validity bitmap.
        "n" => {
            if rng.gen_range(0..4_u8) == 0 {
                Value::Null
            } else {
                Value::Int(rng.gen_range(0..5_i64))
            }
        }
        // Mixed column: heterogeneous cells force the fallback storage.
        "m" => match rng.gen_range(0..4_u8) {
            0 => Value::Int(rng.gen_range(-2..3_i64)),
            1 => Value::Float(f64::from(rng.gen_range(0..8_i32)) / 2.0),
            2 => Value::from(STR_POOL[rng.gen_range(0..STR_POOL.len())]),
            _ => Value::Null,
        },
        other => unreachable!("unknown column {other}"),
    }
}

fn random_table(rng: &mut SmallRng, name: &str) -> Table {
    let mut t = Table::new(name, &COLS);
    let rows = rng.gen_range(0..9_usize); // zero-row tables included
    for _ in 0..rows {
        t.push_row(COLS.iter().map(|c| random_cell(rng, c)).collect());
    }
    t
}

fn random_tables(rng: &mut SmallRng) -> TableSet {
    let mut set = TableSet::default();
    set.insert(random_table(rng, "T0"));
    set.insert(random_table(rng, "T1"));
    set
}

/// Like [`random_table`] but cells repeat in short runs, so the typed
/// columns frequently clear the Dict/RLE compression thresholds.
fn random_runs_table(rng: &mut SmallRng, name: &str) -> Table {
    let rows = rng.gen_range(0..40_usize);
    let cols = COLS
        .iter()
        .map(|c| {
            let mut vals: Vec<Value> = Vec::with_capacity(rows);
            while vals.len() < rows {
                let v = random_cell(rng, c);
                let run = rng.gen_range(1..6_usize).min(rows - vals.len());
                for _ in 0..run {
                    vals.push(v.clone());
                }
            }
            ((*c).to_owned(), Arc::new(ColumnData::from_values(vals)))
        })
        .collect();
    Table::from_columns(name, cols)
}

fn random_runs_tables(rng: &mut SmallRng) -> TableSet {
    let mut set = TableSet::default();
    set.insert(random_runs_table(rng, "T0"));
    set.insert(random_runs_table(rng, "T1"));
    set
}

/// Rebuild every table with each column passed through
/// [`ColumnData::compressed`]: same logical cells, Dict/RLE storage
/// wherever the thresholds allow.
fn compress_tables(set: &TableSet) -> TableSet {
    let mut out = TableSet::default();
    for (_, t) in set.iter() {
        let cols = t
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let data = t.column(i).expect("column index in range").clone();
                (c.name.clone(), Arc::new(data.compressed()))
            })
            .collect();
        out.insert(Table::from_columns(&t.name, cols));
    }
    out
}

/// Rebuild every table through [`ChunkedTableBuilder`] with a small row
/// budget, exactly as the streaming extractor does: rows are sealed into
/// compressed chunks and re-assembled via `ColumnData::append`.
fn chunk_rebuild_tables(set: &TableSet, chunk_rows: usize) -> TableSet {
    let mut out = TableSet::default();
    for (_, t) in set.iter() {
        let names: Vec<&str> = t.column_names();
        let mut b = ChunkedTableBuilder::new(&t.name, &names, chunk_rows);
        for row in t.iter_rows() {
            b.push_row(row.to_vec())
                .expect("in-memory builder is infallible");
        }
        out.insert(b.finish().expect("in-memory builder is infallible"));
    }
    out
}

/// Identifier pool for expressions: columns, a LET-bound scalar, and an
/// unknown name (exercising `NoSuchColumn` / `NoSuchVariable`).
fn random_ident(rng: &mut SmallRng) -> &'static str {
    const IDENTS: [&str; 8] = ["k", "a", "x", "s", "n", "m", "v0", "zz"];
    IDENTS[rng.gen_range(0..IDENTS.len())]
}

fn random_expr(rng: &mut SmallRng, depth: u32) -> String {
    let leaf = depth == 0 || rng.gen_range(0..3_u8) == 0;
    if leaf {
        return match rng.gen_range(0..4_u8) {
            0 => rng.gen_range(-3..4_i32).to_string(),
            1 => format!("{:.2}", f64::from(rng.gen_range(0..10_i32)) / 4.0),
            2 => format!("\"{}\"", STR_POOL[rng.gen_range(0..STR_POOL.len())]),
            _ => random_ident(rng).to_string(),
        };
    }
    match rng.gen_range(0..10_u8) {
        // Binary operators, all precedence levels.
        0..=5 => {
            const OPS: [&str; 13] = [
                "||", "&&", "==", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%",
            ];
            format!(
                "({} {} {})",
                random_expr(rng, depth - 1),
                OPS[rng.gen_range(0..OPS.len())],
                random_expr(rng, depth - 1)
            )
        }
        6 => format!("(-{})", random_expr(rng, depth - 1)),
        7 => format!("(!{})", random_expr(rng, depth - 1)),
        // Scalar calls — sometimes with the wrong arity or an unknown
        // name, which must fail identically in both engines.
        8 => {
            const FNS: [&str; 9] = [
                "abs", "sqrt", "floor", "ceil", "round", "min", "max", "if", "nope",
            ];
            let name = FNS[rng.gen_range(0..FNS.len())];
            let argc = rng.gen_range(1..4_usize);
            let args: Vec<String> = (0..argc).map(|_| random_expr(rng, depth - 1)).collect();
            format!("{}({})", name, args.join(", "))
        }
        _ => format!(
            "contains({}, {})",
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1)
        ),
    }
}

fn random_agg_call(rng: &mut SmallRng) -> String {
    const AGGS: [&str; 8] = [
        "sum", "count", "mean", "min", "max", "std", "distinct", "pct",
    ];
    let name = AGGS[rng.gen_range(0..AGGS.len())];
    match name {
        "count" => "count()".to_owned(),
        "pct" => format!(
            "pct({}, {})",
            random_expr(rng, 1),
            [0, 25, 50, 95, 100][rng.gen_range(0..5_usize)]
        ),
        _ => format!("{}({})", name, random_expr(rng, 1)),
    }
}

/// Generate a random program as source text. Names introduced by DERIVE /
/// AGG / LET are drawn from dedicated fresh pools (`d0…`, `g0…`, `v0…`)
/// so the duplicate-column panic — identical in both engines but not
/// comparable through `Result` — cannot fire.
fn random_program(rng: &mut SmallRng) -> String {
    let mut lines = Vec::new();
    // Usually start with a valid LOAD; sometimes skip it or load an
    // unknown table to pin the error paths.
    match rng.gen_range(0..10_u8) {
        0 => {}
        1 => lines.push("LOAD NOPE".to_owned()),
        _ => lines.push(format!("LOAD T{}", rng.gen_range(0..2_u8))),
    }
    let mut derives = 0_u32;
    let mut lets = 0_u32;
    let mut emittable: Vec<String> = Vec::new();
    for _ in 0..rng.gen_range(1..7_usize) {
        match rng.gen_range(0..9_u8) {
            0 => {
                // Half the filters are kept fast-path shaped
                // (`col op literal`) so the vectorized comparison /
                // contains kernels are exercised, not just the generic
                // row-at-a-time fallback.
                let pred = if rng.gen_range(0..2_u8) == 0 {
                    const CMPS: [&str; 6] = ["==", "!=", "<", "<=", ">", ">="];
                    let rhs = match rng.gen_range(0..3_u8) {
                        0 => rng.gen_range(-2..3_i32).to_string(),
                        1 => format!("\"{}\"", STR_POOL[rng.gen_range(0..STR_POOL.len())]),
                        _ => random_ident(rng).to_string(),
                    };
                    format!(
                        "{} {} {}",
                        random_ident(rng),
                        CMPS[rng.gen_range(0..CMPS.len())],
                        rhs
                    )
                } else {
                    random_expr(rng, 2)
                };
                lines.push(format!("FILTER {pred}"));
            }
            1 => {
                lines.push(format!("DERIVE d{derives} = {}", random_expr(rng, 2)));
                derives += 1;
            }
            2 => {
                // Distinct SELECT list (duplicates would panic, identically,
                // in both engines — not comparable through Result).
                let mut pool: Vec<&str> = COLS.to_vec();
                let keep = rng.gen_range(1..4_usize).min(pool.len());
                let mut list = Vec::new();
                for _ in 0..keep {
                    list.push(pool.swap_remove(rng.gen_range(0..pool.len())));
                }
                if rng.gen_range(0..6_u8) == 0 {
                    list.push("zz"); // unknown column → NoSuchColumn
                }
                lines.push(format!("SELECT {}", list.join(", ")));
            }
            3 => {
                let dir = ["", " ASC", " DESC"][rng.gen_range(0..3_usize)];
                lines.push(format!("SORT {}{dir}", random_ident(rng)));
            }
            4 => lines.push(format!("LIMIT {}", rng.gen_range(0..5_u32))),
            5 => lines.push(format!(
                "JOIN T1 ON {}",
                ["k", "a", "zz"][rng.gen_range(0..3_usize)]
            )),
            6 => {
                let keys = ["k", "s", "a"];
                let nkeys = rng.gen_range(1..3_usize);
                let aggs: Vec<String> = (0..rng.gen_range(1..3_usize))
                    .map(|i| {
                        let name = format!("g{derives}_{i}");
                        emittable.push(name.clone());
                        format!("{name} = {}", random_agg_call(rng))
                    })
                    .collect();
                lines.push(format!(
                    "GROUP {} AGG {}",
                    keys[..nkeys].join(", "),
                    aggs.join(", ")
                ));
                derives += 1;
            }
            7 => {
                let aggs: Vec<String> = (0..rng.gen_range(1..3_usize))
                    .map(|i| {
                        let name = format!("ag{derives}_{i}");
                        emittable.push(name.clone());
                        format!("{name} = {}", random_agg_call(rng))
                    })
                    .collect();
                lines.push(format!("AGG {}", aggs.join(", ")));
                derives += 1;
            }
            _ => {
                let name = format!("v{lets}");
                emittable.push(name.clone());
                lines.push(format!("LET {name} = {}", random_expr(rng, 2)));
                lets += 1;
            }
        }
    }
    if !emittable.is_empty() && rng.gen_range(0..2_u8) == 0 {
        if rng.gen_range(0..6_u8) == 0 {
            emittable.push("zz".to_owned()); // unknown → NoSuchVariable
        }
        lines.push(format!("EMIT {}", emittable.join(", ")));
    }
    lines.join("\n")
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

/// Value equality with floats compared bit-for-bit (NaN == NaN, and no
/// tolerance: the engines must agree on the exact fold order).
fn value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

fn assert_same_run(src: &str, tables: &TableSet, ctx: &str) {
    assert_same_run_on(src, tables, tables, ctx);
}

/// Run the vectorized engine on `fast_tables` and the legacy oracle on
/// `slow_tables` (logically identical relations, possibly in different
/// physical encodings) and demand bit-for-bit agreement.
fn assert_same_run_on(src: &str, fast_tables: &TableSet, slow_tables: &TableSet, ctx: &str) {
    let program = match parse_program(src) {
        Ok(p) => p,
        Err(_) => return, // both engines share the parser; nothing to compare
    };
    let fast = Interpreter::new(fast_tables).run(&program);
    let slow = LegacyInterpreter::new(slow_tables).run(&program);
    match (fast, slow) {
        (Err(a), Err(b)) => {
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "{ctx}: engines disagree on the error\nprogram:\n{src}"
            );
        }
        (Ok(a), Ok(b)) => {
            assert_eq!(
                a.rows_scanned, b.rows_scanned,
                "{ctx}: rows_scanned diverged\nprogram:\n{src}"
            );
            assert_eq!(
                a.emitted.len(),
                b.emitted.len(),
                "{ctx}: emitted arity diverged\nprogram:\n{src}"
            );
            for ((an, av), (bn, bv)) in a.emitted.iter().zip(b.emitted.iter()) {
                assert_eq!(an, bn, "{ctx}: emitted name diverged\nprogram:\n{src}");
                assert!(
                    value_eq(av, bv),
                    "{ctx}: emitted {an} diverged: {av:?} vs {bv:?}\nprogram:\n{src}"
                );
            }
            match (&a.table, &b.table) {
                (None, None) => {}
                (Some(at), Some(bt)) => {
                    assert_eq!(at.name, bt.name, "{ctx}: table name\nprogram:\n{src}");
                    let acols: Vec<&str> = at.columns.iter().map(|c| c.name.as_str()).collect();
                    let bcols: Vec<&str> = bt.columns.iter().map(|c| c.name.as_str()).collect();
                    assert_eq!(acols, bcols, "{ctx}: table schema\nprogram:\n{src}");
                    assert_eq!(at.len(), bt.len(), "{ctx}: table length\nprogram:\n{src}");
                    for (i, (ar, br)) in at.iter_rows().zip(bt.iter_rows()).enumerate() {
                        for (j, (av, bv)) in ar.values().zip(br.values()).enumerate() {
                            assert!(
                                value_eq(&av, &bv),
                                "{ctx}: cell ({i},{j}) diverged: {av:?} vs {bv:?}\nprogram:\n{src}"
                            );
                        }
                    }
                }
                (a, b) => panic!(
                    "{ctx}: one engine produced a table, the other did not \
                     ({a:?} vs {b:?})\nprogram:\n{src}"
                ),
            }
        }
        (a, b) => panic!(
            "{ctx}: engines disagree on success\nvectorized: {a:?}\nlegacy: {b:?}\nprogram:\n{src}"
        ),
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[test]
fn random_programs_match_legacy_engine() {
    for seed in 0..400_u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tables = random_tables(&mut rng);
        let src = random_program(&mut rng);
        assert_same_run(&src, &tables, &format!("seed {seed}"));
    }
}

#[test]
fn random_programs_match_legacy_on_compressed_relations() {
    for seed in 0..300_u64 {
        let mut rng = SmallRng::seed_from_u64(0x1CE0_0000 ^ seed);
        let plain = random_runs_tables(&mut rng);
        let src = random_program(&mut rng);
        let compressed = compress_tables(&plain);
        assert_same_run_on(
            &src,
            &compressed,
            &plain,
            &format!("compressed seed {seed}"),
        );
        let chunked = chunk_rebuild_tables(&plain, 7);
        assert_same_run_on(&src, &chunked, &plain, &format!("chunked seed {seed}"));
    }
}

#[test]
fn compressed_relation_corpus_matches_legacy_on_plain() {
    // Run-heavy fixture: every typed column clears its compression
    // threshold (asserted below), so these programs genuinely scan
    // Dict/RLE storage in the vectorized engine while the legacy oracle
    // sees the same cells in dense columns.
    let mut t0 = Table::new("T0", &COLS);
    for i in 0..24_i64 {
        t0.push_row(vec![
            Value::Int(i / 8),                                      // k: runs of 8
            Value::Int(if i < 12 { 0 } else { 5 }),                 // a: two runs
            Value::Float(0.25 * ((i / 6) as f64)),                  // x: runs of 6
            Value::from(if i % 12 < 6 { "read" } else { "write" }), // s: 2-entry dict
            if i % 7 == 0 {
                Value::Null // n: nullable — must stay dense
            } else {
                Value::Int(i % 3)
            },
            Value::from("const"), // m: single-entry dict
        ]);
    }
    let mut t1 = Table::new("T1", &COLS);
    for i in 0..8_i64 {
        t1.push_row(vec![
            Value::Int(i / 4),
            Value::Int(7),
            Value::Float(2.0),
            Value::from("bb"),
            Value::Int(1),
            Value::from("const"),
        ]);
    }
    let mut plain = TableSet::default();
    plain.insert(t0);
    plain.insert(t1);

    let compressed = compress_tables(&plain);
    let ct = compressed.get("T0").unwrap();
    assert!(matches!(ct.column(0), Some(ColumnData::RleInt { .. })));
    assert!(matches!(ct.column(1), Some(ColumnData::RleInt { .. })));
    assert!(matches!(ct.column(2), Some(ColumnData::RleFloat { .. })));
    assert!(matches!(ct.column(3), Some(ColumnData::Dict { .. })));
    assert!(matches!(ct.column(4), Some(ColumnData::Int { .. })));
    assert!(matches!(ct.column(5), Some(ColumnData::Dict { .. })));
    let chunked = chunk_rebuild_tables(&plain, 5);

    let corpus: &[&str] = &[
        // RLE column vs constant, both operand orders, every comparison.
        "LOAD T0\nFILTER a > 2\nSELECT k, a",
        "LOAD T0\nFILTER a <= 0\nSELECT k, a",
        "LOAD T0\nFILTER 2 <= k\nSELECT k",
        "LOAD T0\nFILTER a == 5 || a != 0\nSELECT k, a",
        "LOAD T0\nFILTER x == 0.25\nSELECT k, x",
        "LOAD T0\nFILTER x < 0.75 && x >= 0.25\nSELECT k, x",
        // Dict column through the string mask and contains kernels.
        "LOAD T0\nFILTER s == \"read\"\nAGG c = count()\nEMIT c",
        "LOAD T0\nFILTER \"read\" <= s\nSELECT k, s",
        "LOAD T0\nFILTER contains(s, \"ea\")\nAGG c = count()\nEMIT c",
        // Sorting through dictionary order and RLE float keys.
        "LOAD T0\nSORT s DESC\nSELECT s, k",
        "LOAD T0\nSORT x\nSELECT x",
        "LOAD T0\nSORT k DESC\nLIMIT 5",
        // Order-sensitive numeric folds over run-expanded values.
        "LOAD T0\nAGG t = sum(x), m = mean(x), sd = std(x), lo = min(a), hi = max(a)\nEMIT t, m, sd, lo, hi",
        "LOAD T0\nAGG p = pct(x, 50), u = distinct(s)\nEMIT p, u",
        // Grouping and joining on RLE keys.
        "LOAD T0\nGROUP k AGG c = count(), t = sum(x)",
        "LOAD T0\nGROUP s AGG c = count()",
        "LOAD T0\nJOIN T1 ON k\nSORT a DESC\nLIMIT 6",
        // Arithmetic compilation over RLE inputs.
        "LOAD T0\nDERIVE d0 = a * 2 + k\nSELECT d0",
        "LOAD T0\nDERIVE d0 = x / 0.5\nAGG t = sum(d0)\nEMIT t",
        // Nullable column stays dense but must still agree.
        "LOAD T0\nFILTER n == 1\nSELECT k, n",
        "LOAD T0\nAGG c = count(n), t = sum(n)\nEMIT c, t",
        // Single-entry dictionary passthrough.
        "LOAD T0\nSELECT m\nLIMIT 3",
        "LOAD T0\nFILTER m == \"const\"\nAGG c = count()\nEMIT c",
    ];
    for (i, src) in corpus.iter().enumerate() {
        assert_same_run_on(src, &compressed, &plain, &format!("compressed corpus[{i}]"));
        assert_same_run_on(src, &chunked, &plain, &format!("chunked corpus[{i}]"));
    }
}

#[test]
fn edge_case_corpus_matches_legacy_engine() {
    let mut t0 = Table::new("T0", &COLS);
    t0.push_row(vec![
        Value::Int(0),
        Value::Int(0),
        Value::Float(1.5),
        Value::from("write"),
        Value::Null,
        Value::from("aa"),
    ]);
    t0.push_row(vec![
        Value::Int(1),
        Value::Int(-2),
        Value::Float(f64::NAN),
        Value::from(""),
        Value::Int(3),
        Value::Float(0.5),
    ]);
    t0.push_row(vec![
        Value::Int(1),
        Value::Int(2),
        Value::Float(-0.25),
        Value::from("read"),
        Value::Int(0),
        Value::Null,
    ]);
    let mut t1 = Table::new("T1", &COLS);
    t1.push_row(vec![
        Value::Int(1),
        Value::Int(7),
        Value::Float(2.0),
        Value::from("bb"),
        Value::Null,
        Value::Int(1),
    ]);
    let empty = Table::new("E", &["a", "b"]);
    let mut tables = TableSet::default();
    tables.insert(t0);
    tables.insert(t1);
    tables.insert(empty);

    let corpus: &[&str] = &[
        // Division and remainder by zero evaluate to 0, not an error.
        "LOAD T0\nDERIVE d0 = a / 0\nDERIVE d1 = a % 0\nAGG s0 = sum(d0), s1 = sum(d1)\nEMIT s0, s1",
        // NULL semantics: falsy in filters, skipped by numeric aggregates,
        // counted by count().
        "LOAD T0\nFILTER n\nAGG c = count()\nEMIT c",
        "LOAD T0\nAGG c = count(), s = sum(n), m = mean(n)\nEMIT c, s, m",
        // Aggregates over an empty table (min/max/mean of nothing → 0).
        "LOAD E\nAGG c = count(), lo = min(a), hi = max(a), m = mean(a)\nEMIT c, lo, hi, m",
        // Nearest-rank percentile at the boundaries.
        "LOAD T0\nAGG p0 = pct(a, 0), p50 = pct(a, 50), p100 = pct(a, 100)\nEMIT p0, p50, p100",
        // Population std and distinct over a mixed column.
        "LOAD T0\nAGG sd = std(a), u = distinct(m)\nEMIT sd, u",
        // Join with collision handling (every shared column beyond the key
        // is dropped from the right side).
        "LOAD T0\nJOIN T1 ON k\nSORT a DESC\nLIMIT 2",
        // Stable sort with equal keys, then projection pruning.
        "LOAD T0\nSORT k\nSELECT k, s",
        // Filter pushed past sort must not change which error surfaces.
        "LOAD T0\nSORT x DESC\nFILTER s + 1 > 0",
        // GROUP over two keys with every aggregate kind.
        "LOAD T0\nGROUP k, s AGG c = count(), t = sum(x), u = distinct(a)",
        // Scalars: LET before FILTER, identifier shadowing (column wins in
        // row context), EMIT of both.
        "LOAD T0\nLET a = 100\nLET lim = 1\nFILTER a >= lim\nAGG c = count()\nEMIT c, lim",
        // Error paths: unknown table, column, variable, function, arity.
        "LOAD NOPE",
        "FILTER a > 0",
        "LOAD T0\nFILTER zz > 0",
        "LOAD T0\nAGG c = nope(a)",
        "LOAD T0\nDERIVE d0 = sqrt(a, x)",
        "LOAD T0\nEMIT zz",
        // String comparison both content-wise and coerced.
        "LOAD T0\nFILTER s == \"write\" || s != m\nAGG c = count()\nEMIT c",
        // Every comparison operator through the vectorized mask kernels:
        // numeric column vs constant, float column, string column vs
        // string constant (both directions), and And/Or/Not composition.
        "LOAD T0\nFILTER a < 1\nSELECT k, a",
        "LOAD T0\nFILTER a <= 0\nSELECT k, a",
        "LOAD T0\nFILTER a > 0\nSELECT k, a",
        "LOAD T0\nFILTER a >= 2\nSELECT k, a",
        "LOAD T0\nFILTER a == 2 || a != 0\nSELECT k, a",
        "LOAD T0\nFILTER x < 1.0 && x >= -0.25\nSELECT k, x",
        "LOAD T0\nFILTER s < \"write\"\nSELECT k, s",
        "LOAD T0\nFILTER \"read\" <= s\nSELECT k, s",
        "LOAD T0\nFILTER !(a == 2) && !(s == \"\")\nSELECT k, s",
        "LOAD T0\nFILTER k + 1 < a * 2\nSELECT k, a",
        // contains() over a dense string column and a non-string operand.
        "LOAD T0\nFILTER contains(s, \"r\")\nAGG c = count()\nEMIT c",
        "LOAD T0\nFILTER contains(a, \"r\")",
        // Arithmetic type rule: Int op Int stays Int, / widens via fract.
        "LOAD T0\nDERIVE half = a / 2\nDERIVE dbl = a * 2\nSELECT half, dbl",
    ];
    for (i, src) in corpus.iter().enumerate() {
        assert_same_run(src, &tables, &format!("corpus[{i}]"));
    }
}
