//! Property-based tests for the IQL language: parser robustness and
//! evaluator algebraic invariants.

use extractor::{Table, TableSet, Value};
use ion_llm::iql::{parse_expression, parse_program, Interpreter};
use proptest::prelude::*;

fn table_with(rows: &[(i64, i64)]) -> TableSet {
    let mut t = Table::new("T", &["a", "b"]);
    for &(a, b) in rows {
        t.push_row(vec![Value::Int(a), Value::Int(b)]);
    }
    let mut set = TableSet::default();
    set.insert(t);
    set
}

proptest! {
    #[test]
    fn parser_never_panics(src in "\\PC{0,300}") {
        let _ = parse_program(&src);
        let _ = parse_expression(&src);
    }

    #[test]
    fn filter_shrinks_count(
        rows in proptest::collection::vec((any::<i64>(), any::<i64>()), 0..40),
        threshold in any::<i64>(),
    ) {
        let tables = table_with(&rows);
        let interp = Interpreter::new(&tables);
        let all = interp
            .run(&parse_program("LOAD T\nAGG n = count()\nEMIT n\n").unwrap())
            .unwrap();
        let src = format!("LOAD T\nFILTER a > {threshold}\nAGG n = count()\nEMIT n\n");
        let filtered = interp.run(&parse_program(&src).unwrap()).unwrap();
        let expected = rows.iter().filter(|(a, _)| *a > threshold).count() as f64;
        prop_assert_eq!(filtered.get_f64("n").unwrap(), expected);
        prop_assert!(filtered.get_f64("n").unwrap() <= all.get_f64("n").unwrap());
    }

    #[test]
    fn sum_decomposes_over_partition(
        rows in proptest::collection::vec((-1000i64..1000, -1000i64..1000), 0..40),
        pivot in -1000i64..1000,
    ) {
        // sum(b) == sum(b | a < pivot) + sum(b | a >= pivot)
        let tables = table_with(&rows);
        let interp = Interpreter::new(&tables);
        let total = interp
            .run(&parse_program("LOAD T\nAGG s = sum(b)\nEMIT s\n").unwrap())
            .unwrap()
            .get_f64("s")
            .unwrap();
        let low = interp
            .run(&parse_program(&format!("LOAD T\nFILTER a < {pivot}\nAGG s = sum(b)\nEMIT s\n")).unwrap())
            .unwrap()
            .get_f64("s")
            .unwrap();
        let high = interp
            .run(&parse_program(&format!("LOAD T\nFILTER a >= {pivot}\nAGG s = sum(b)\nEMIT s\n")).unwrap())
            .unwrap()
            .get_f64("s")
            .unwrap();
        prop_assert!((total - (low + high)).abs() < 1e-6);
    }

    #[test]
    fn group_counts_sum_to_total(
        rows in proptest::collection::vec((0i64..8, any::<i64>()), 0..60),
    ) {
        let tables = table_with(&rows);
        let interp = Interpreter::new(&tables);
        let out = interp
            .run(&parse_program("LOAD T\nGROUP a AGG n = count()\nAGG total = sum(n), groups = count()\nEMIT total, groups\n").unwrap())
            .unwrap();
        prop_assert_eq!(out.get_f64("total").unwrap(), rows.len() as f64);
        let distinct: std::collections::HashSet<i64> = rows.iter().map(|(a, _)| *a).collect();
        prop_assert_eq!(out.get_f64("groups").unwrap(), distinct.len() as f64);
    }

    #[test]
    fn sort_limit_selects_extremum(
        rows in proptest::collection::vec((any::<i64>(), -10_000i64..10_000), 1..40),
    ) {
        let tables = table_with(&rows);
        let interp = Interpreter::new(&tables);
        let out = interp
            .run(&parse_program("LOAD T\nSORT b DESC\nLIMIT 1\nAGG top = max(b)\nEMIT top\n").unwrap())
            .unwrap();
        let expected = rows.iter().map(|(_, b)| *b).max().unwrap() as f64;
        prop_assert_eq!(out.get_f64("top").unwrap(), expected);
    }

    #[test]
    fn mean_between_min_and_max(
        rows in proptest::collection::vec((any::<i64>(), -100_000i64..100_000), 1..60),
    ) {
        let tables = table_with(&rows);
        let interp = Interpreter::new(&tables);
        let out = interp
            .run(&parse_program("LOAD T\nAGG lo = min(b), hi = max(b), m = mean(b), sd = std(b)\nEMIT lo, hi, m, sd\n").unwrap())
            .unwrap();
        let (lo, hi, m, sd) = (
            out.get_f64("lo").unwrap(),
            out.get_f64("hi").unwrap(),
            out.get_f64("m").unwrap(),
            out.get_f64("sd").unwrap(),
        );
        prop_assert!(lo <= m + 1e-9 && m <= hi + 1e-9);
        prop_assert!(sd >= 0.0);
        // Population std is bounded by the half-range.
        prop_assert!(sd <= (hi - lo) / 2.0 + 1e-9);
    }

    #[test]
    fn derive_then_sum_equals_expression_over_rows(
        rows in proptest::collection::vec((-1000i64..1000, -1000i64..1000), 0..40),
    ) {
        let tables = table_with(&rows);
        let interp = Interpreter::new(&tables);
        let out = interp
            .run(&parse_program("LOAD T\nDERIVE c = a * 2 + b\nAGG s = sum(c)\nEMIT s\n").unwrap())
            .unwrap();
        let expected: i64 = rows.iter().map(|(a, b)| a * 2 + b).sum();
        prop_assert_eq!(out.get_f64("s").unwrap(), expected as f64);
    }

    #[test]
    fn percentile_is_monotone_in_rank(
        rows in proptest::collection::vec((any::<i64>(), -10_000i64..10_000), 1..50),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo_p, hi_p) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let tables = table_with(&rows);
        let interp = Interpreter::new(&tables);
        let src = format!("LOAD T\nAGG lo = pct(b, {lo_p}), hi = pct(b, {hi_p})\nEMIT lo, hi\n");
        let out = interp.run(&parse_program(&src).unwrap()).unwrap();
        prop_assert!(out.get_f64("lo").unwrap() <= out.get_f64("hi").unwrap());
    }
}
