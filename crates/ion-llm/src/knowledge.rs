//! The machine-readable layer of ION's *I/O performance issue contexts*.
//!
//! Each issue context is prose plus embedded directives. The prose teaches
//! a (real) LLM; the directives are the same teaching in a form the
//! deterministic expert can follow exactly:
//!
//! ```text
//! ISSUE: small-io
//! TITLE: Small I/O operations
//! MODULES: POSIX, DXT
//!
//! Requests much smaller than the file system RPC size underutilize ...
//!
//! PARAM rpc_size = 4194304
//!
//! COMPUTE op_stats:
//!   LOAD DXT
//!   DERIVE small = length < rpc_size
//!   AGG total_ops = count(), small_ops = sum(small)
//!   LET small_pct = 100 * small_ops / max(total_ops, 1)
//!   EMIT total_ops, small_ops, small_pct
//! END
//!
//! CONCLUDE IF small_pct > 50 SEVERITY high: "... {small_pct:.2}% ..."
//! MITIGATE IF consec_pct > 80: "... largely consecutive, aggregatable ..."
//! NOTE IF total_ops == 0: "no traced operations"
//! ```
//!
//! Crucially, the expert model derives *all* analytical behaviour from
//! these statements at prompt time: editing the context text changes the
//! diagnosis without touching any code, which is ION's claimed advantage
//! over trigger-based tools.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A prose knowledge statement (teaches the model; also rendered in
/// reasoning steps).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnowledgeStatement {
    /// The statement text.
    pub text: String,
}

/// The kind of a rule directive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuleKind {
    /// `CONCLUDE` — a finding, with a severity label.
    Conclude {
        /// Severity label (`high`, `medium`, `low`).
        severity: String,
    },
    /// `MITIGATE` — a factor reducing an issue's impact.
    Mitigate,
    /// `NOTE` — a neutral observation.
    Note,
}

/// One `CONCLUDE`/`MITIGATE`/`NOTE` rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConcludeRule {
    /// Rule kind.
    pub kind: RuleKind,
    /// Condition, IQL expression source over computed metrics.
    pub condition: String,
    /// Message template; `{name}` and `{name:.N}` interpolate metrics.
    pub template: String,
}

/// A named analysis program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComputeBlock {
    /// Block name (appears in reasoning steps).
    pub name: String,
    /// IQL source.
    pub source: String,
}

/// Fully parsed issue context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct IssueContextSpec {
    /// Issue identifier (`small-io`, `misaligned-io`, …).
    pub issue: String,
    /// Human title.
    pub title: String,
    /// Darshan modules this issue's analysis needs.
    pub modules: Vec<String>,
    /// Prose knowledge statements.
    pub knowledge: Vec<KnowledgeStatement>,
    /// System hyper-parameters (`PARAM name = value`).
    pub params: Vec<(String, f64)>,
    /// Analysis programs, in order.
    pub computes: Vec<ComputeBlock>,
    /// Conclusion/mitigation/note rules, in order.
    pub rules: Vec<ConcludeRule>,
}

/// Error from parsing a context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextParseError {
    /// Explanation.
    pub message: String,
    /// Line number (1-based).
    pub line: usize,
}

impl fmt::Display for ContextParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "context parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ContextParseError {}

/// Parse rule directives of the form
/// `KEYWORD IF <expr> [SEVERITY <level>]: "template"`.
fn parse_rule(line: &str, lineno: usize) -> Result<ConcludeRule, ContextParseError> {
    let err = |m: &str| ContextParseError {
        message: m.to_owned(),
        line: lineno,
    };
    let (keyword, rest) = line
        .split_once(' ')
        .ok_or_else(|| err("rule missing body"))?;
    let rest = rest.trim();
    let rest = rest
        .strip_prefix("IF ")
        .ok_or_else(|| err("rule must start with IF"))?;
    // Split at the first ':' that is followed by a quote (the template).
    let colon = rest
        .find(": \"")
        .or_else(|| rest.find(":\""))
        .ok_or_else(|| err("rule missing ': \"template\"'"))?;
    let head = rest[..colon].trim();
    let template = rest[colon..]
        .trim_start_matches(':')
        .trim()
        .trim_matches('"')
        .to_owned();
    let (condition, severity) = if let Some(pos) = head.rfind(" SEVERITY ") {
        let sev = head[pos + " SEVERITY ".len()..].trim().to_owned();
        (head[..pos].trim().to_owned(), Some(sev))
    } else {
        (head.to_owned(), None)
    };
    if condition.is_empty() {
        return Err(err("rule has empty condition"));
    }
    let kind = match keyword {
        "CONCLUDE" => RuleKind::Conclude {
            severity: severity.unwrap_or_else(|| "medium".to_owned()),
        },
        "MITIGATE" => RuleKind::Mitigate,
        "NOTE" => RuleKind::Note,
        other => return Err(err(&format!("unknown rule keyword {other}"))),
    };
    Ok(ConcludeRule {
        kind,
        condition,
        template,
    })
}

/// Parse an issue context (prose + directives) into its specification.
///
/// Lines that are not directives are collected as prose knowledge.
///
/// # Errors
///
/// Returns a [`ContextParseError`] for malformed directives (an unclosed
/// `COMPUTE` block, a rule without a template, a bad `PARAM`).
pub fn parse_context(text: &str) -> Result<IssueContextSpec, ContextParseError> {
    let mut spec = IssueContextSpec::default();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((i, raw)) = lines.next() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(v) = line.strip_prefix("ISSUE:") {
            spec.issue = v.trim().to_owned();
        } else if let Some(v) = line.strip_prefix("TITLE:") {
            spec.title = v.trim().to_owned();
        } else if let Some(v) = line.strip_prefix("MODULES:") {
            spec.modules = v
                .split(',')
                .map(|m| m.trim().to_owned())
                .filter(|m| !m.is_empty())
                .collect();
        } else if let Some(v) = line.strip_prefix("PARAM ") {
            let (name, value) = v.split_once('=').ok_or(ContextParseError {
                message: "PARAM requires name = value".into(),
                line: lineno,
            })?;
            let value: f64 =
                value
                    .trim()
                    .replace('_', "")
                    .parse()
                    .map_err(|_| ContextParseError {
                        message: format!("bad PARAM value {}", value.trim()),
                        line: lineno,
                    })?;
            spec.params.push((name.trim().to_owned(), value));
        } else if let Some(v) = line.strip_prefix("COMPUTE ") {
            let name = v.trim().trim_end_matches(':').to_owned();
            let mut source = String::new();
            let mut closed = false;
            for (_, body) in lines.by_ref() {
                if body.trim() == "END" {
                    closed = true;
                    break;
                }
                source.push_str(body.trim());
                source.push('\n');
            }
            if !closed {
                return Err(ContextParseError {
                    message: format!("COMPUTE {name} missing END"),
                    line: lineno,
                });
            }
            spec.computes.push(ComputeBlock { name, source });
        } else if line.starts_with("CONCLUDE ")
            || line.starts_with("MITIGATE ")
            || line.starts_with("NOTE ")
        {
            spec.rules.push(parse_rule(line, lineno)?);
        } else {
            spec.knowledge.push(KnowledgeStatement {
                text: line.to_owned(),
            });
        }
    }
    Ok(spec)
}

/// Render a template, interpolating `{name}` and `{name:.N}` placeholders
/// from a metric lookup function. Unknown names render as `{name?}` so
/// mistakes are visible rather than silent.
pub fn render_template<F>(template: &str, lookup: F) -> String
where
    F: Fn(&str) -> Option<extractor::Value>,
{
    let mut out = String::new();
    let mut chars = template.chars().peekable();
    while let Some(ch) = chars.next() {
        if ch != '{' {
            out.push(ch);
            continue;
        }
        if chars.peek() == Some(&'{') {
            chars.next();
            out.push('{');
            continue;
        }
        let mut inner = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                break;
            }
            inner.push(c);
        }
        let (name, fmtspec) = match inner.split_once(':') {
            Some((n, f)) => (n.trim(), Some(f.trim())),
            None => (inner.trim(), None),
        };
        match lookup(name) {
            Some(v) => match fmtspec {
                Some(spec) if spec.starts_with('.') => {
                    let digits: usize = spec[1..].parse().unwrap_or(2);
                    match v.as_f64() {
                        Some(f) => out.push_str(&format!("{f:.digits$}")),
                        None => out.push_str(&v.to_string()),
                    }
                }
                Some("human") => match v.as_f64() {
                    Some(f) => out.push_str(&human_bytes(f)),
                    None => out.push_str(&v.to_string()),
                },
                Some("int") => match v.as_f64() {
                    Some(f) => out.push_str(&format!("{}", f.round() as i64)),
                    None => out.push_str(&v.to_string()),
                },
                _ => out.push_str(&v.to_string()),
            },
            None => {
                out.push('{');
                out.push_str(name);
                out.push_str("?}");
            }
        }
    }
    out
}

/// Human-readable byte quantity (`4.0 MiB`).
#[must_use]
pub fn human_bytes(bytes: f64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut v = bytes.abs();
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    let sign = if bytes < 0.0 { "-" } else { "" };
    if unit == 0 {
        format!("{sign}{v:.0} {}", UNITS[unit])
    } else {
        format!("{sign}{v:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractor::Value;

    const SAMPLE: &str = r#"
ISSUE: small-io
TITLE: Small I/O operations
MODULES: POSIX, DXT

Requests much smaller than the RPC size underutilize each round trip.
Sequential small requests can be aggregated client-side.

PARAM rpc_size = 4_194_304

COMPUTE op_stats:
  LOAD DXT
  DERIVE small = length < rpc_size
  AGG total_ops = count(), small_ops = sum(small)
  LET small_pct = 100 * small_ops / max(total_ops, 1)
  EMIT total_ops, small_ops, small_pct
END

CONCLUDE IF small_pct > 50 SEVERITY high: "{small_pct:.2}% of operations are smaller than the RPC size"
MITIGATE IF small_pct > 50 && total_ops > 10: "many are consecutive and aggregatable"
NOTE IF total_ops == 0: "no traced operations found"
"#;

    #[test]
    fn parses_headers_and_knowledge() {
        let spec = parse_context(SAMPLE).unwrap();
        assert_eq!(spec.issue, "small-io");
        assert_eq!(spec.title, "Small I/O operations");
        assert_eq!(spec.modules, vec!["POSIX", "DXT"]);
        assert_eq!(spec.knowledge.len(), 2);
        assert!(spec.knowledge[0].text.contains("underutilize"));
    }

    #[test]
    fn parses_params_with_separators() {
        let spec = parse_context(SAMPLE).unwrap();
        assert_eq!(spec.params, vec![("rpc_size".to_owned(), 4_194_304.0)]);
    }

    #[test]
    fn parses_compute_block() {
        let spec = parse_context(SAMPLE).unwrap();
        assert_eq!(spec.computes.len(), 1);
        assert_eq!(spec.computes[0].name, "op_stats");
        assert!(spec.computes[0].source.contains("LOAD DXT"));
        assert!(!spec.computes[0].source.contains("END"));
    }

    #[test]
    fn parses_rules_in_order() {
        let spec = parse_context(SAMPLE).unwrap();
        assert_eq!(spec.rules.len(), 3);
        assert_eq!(
            spec.rules[0].kind,
            RuleKind::Conclude {
                severity: "high".into()
            }
        );
        assert_eq!(spec.rules[0].condition, "small_pct > 50");
        assert_eq!(spec.rules[1].kind, RuleKind::Mitigate);
        assert_eq!(spec.rules[1].condition, "small_pct > 50 && total_ops > 10");
        assert_eq!(spec.rules[2].kind, RuleKind::Note);
    }

    #[test]
    fn unclosed_compute_rejected() {
        let err = parse_context("COMPUTE x:\nLOAD DXT\n").unwrap_err();
        assert!(err.message.contains("missing END"));
    }

    #[test]
    fn bad_param_rejected() {
        assert!(parse_context("PARAM x = banana\n").is_err());
        assert!(parse_context("PARAM x\n").is_err());
    }

    #[test]
    fn rule_without_template_rejected() {
        assert!(parse_context("CONCLUDE IF x > 1 SEVERITY high\n").is_err());
    }

    #[test]
    fn conclude_defaults_to_medium_severity() {
        let spec = parse_context("CONCLUDE IF x > 1: \"found\"\n").unwrap();
        assert_eq!(
            spec.rules[0].kind,
            RuleKind::Conclude {
                severity: "medium".into()
            }
        );
    }

    #[test]
    fn template_rendering() {
        let lookup = |name: &str| match name {
            "pct" => Some(Value::Float(99.805)),
            "n" => Some(Value::Int(8192)),
            "bytes" => Some(Value::Float(4.0 * 1024.0 * 1024.0)),
            _ => None,
        };
        assert_eq!(
            render_template("{pct:.2}% of {n} ops", lookup),
            "99.81% of 8192 ops"
        );
        assert_eq!(render_template("{bytes:human}", lookup), "4.0 MiB");
        assert_eq!(render_template("{n:int}", lookup), "8192");
        assert_eq!(render_template("missing {zzz}", lookup), "missing {zzz?}");
        assert_eq!(render_template("{{literal}}", lookup), "{literal}}");
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512.0), "512 B");
        assert_eq!(human_bytes(2048.0), "2.0 KiB");
        assert_eq!(human_bytes(4.0 * 1048576.0), "4.0 MiB");
        assert_eq!(human_bytes(-1048576.0), "-1.0 MiB");
    }
}
