//! Simulated LLM runtime for ION: Assistants-style API, IQL code
//! interpreter, and a deterministic in-context-learning expert model.
//!
//! The paper sends each per-issue prompt to GPT-4 through the OpenAI
//! Assistants API, whose built-in code interpreter lets the model write and
//! run analysis code against the attached CSV files, then reason over the
//! results — all within one completion. This crate reproduces that runtime
//! contract in Rust:
//!
//! * [`api`] — threads, messages, runs and tool calls, with the same
//!   model-action loop the Assistants API implements: the model either
//!   requests a tool invocation or produces the final message.
//! * [`iql`] — the **I/O Query Language**, a small SQL-like language
//!   (lexer → parser → evaluator) in which the simulated model writes its
//!   analysis programs. Programs run against the extractor's tables, so
//!   "generated code" is genuinely executed, inspectable and replayable.
//! * [`knowledge`] — the machine-readable layer of ION's *I/O performance
//!   issue contexts*: `KNOWLEDGE`, `COMPUTE`, `CONCLUDE`, `MITIGATE`
//!   statements embedded in the context prose.
//! * [`expert`] — [`expert::DeterministicExpert`], a [`api::LanguageModel`]
//!   whose *entire* analytical behaviour is derived from the knowledge
//!   statements in the prompt: it has no built-in notion of any I/O issue.
//!   Editing the context text changes the diagnosis — the property the
//!   paper contrasts with Drishti's hard-coded triggers.
//! * [`qa`] — the interactive follow-up interface, answering questions from
//!   the recorded analysis artifacts of previous runs.
//!
//! The [`api::LanguageModel`] trait keeps the backend pluggable: a real
//! LLM endpoint could be dropped in without touching the ION pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod expert;
pub mod iql;
pub mod knowledge;
pub mod qa;

pub use api::{
    Completion, LanguageModel, Message, ModelAction, Role, Runtime, Thread, ToolCall, ToolOutput,
};
pub use expert::DeterministicExpert;
pub use iql::{Program, RunOutput};
pub use knowledge::{ConcludeRule, IssueContextSpec, KnowledgeStatement};
