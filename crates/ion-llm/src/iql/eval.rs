//! IQL evaluator: executes programs against extracted tables.

use super::ast::{BinaryOp, Expr, Program, Stmt, UnaryOp};
use super::IqlError;
use extractor::{Table, TableSet, Value};
use std::borrow::Cow;
use std::collections::BTreeMap;

/// Result of running one IQL program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunOutput {
    /// Scalars declared by `EMIT`, in declaration order.
    pub emitted: Vec<(String, Value)>,
    /// The working table at the end of the program, if any.
    pub table: Option<Table>,
    /// Total rows scanned (evaluation effort metric for benches).
    pub rows_scanned: usize,
}

impl RunOutput {
    /// Look up an emitted scalar by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.emitted.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Numeric view of an emitted scalar.
    #[must_use]
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(Value::as_f64)
    }

    /// Emitted scalars as a map.
    #[must_use]
    pub fn emitted_map(&self) -> BTreeMap<String, Value> {
        self.emitted.iter().cloned().collect()
    }
}

const AGG_FNS: [&str; 8] = [
    "sum", "count", "mean", "min", "max", "std", "distinct", "pct",
];

/// The IQL interpreter. Holds the attached tables; [`Interpreter::run`]
/// executes one program.
#[derive(Debug)]
pub struct Interpreter<'a> {
    tables: &'a TableSet,
}

#[derive(Debug, Default)]
struct Env {
    scalars: BTreeMap<String, Value>,
}

impl<'a> Interpreter<'a> {
    /// Create an interpreter over an attached table set.
    #[must_use]
    pub fn new(tables: &'a TableSet) -> Self {
        Interpreter { tables }
    }

    /// Execute a program.
    ///
    /// # Errors
    ///
    /// Returns an [`IqlError`] for unknown tables/columns/variables, bad
    /// function calls, or statements used before `LOAD`.
    pub fn run(&self, program: &Program) -> Result<RunOutput, IqlError> {
        if !ion_obs::enabled() {
            return self.run_inner(program);
        }
        let start = std::time::Instant::now();
        let result = self.run_inner(program);
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        ion_obs::observe("iql.query_ns", ns);
        ion_obs::counter("iql.queries_evaluated", 1);
        if let Ok(out) = &result {
            ion_obs::counter("iql.rows_scanned", out.rows_scanned as u64);
        }
        result
    }

    fn run_inner(&self, program: &Program) -> Result<RunOutput, IqlError> {
        // The working table starts as a borrow of the attached table;
        // transforming statements materialize an owned table. This keeps
        // `LOAD big_table` + aggregate-only programs zero-copy.
        let mut table: Option<Cow<'_, Table>> = None;
        let mut env = Env::default();
        let mut out = RunOutput::default();
        for stmt in &program.statements {
            match stmt {
                Stmt::Load(name) => {
                    let t = self.tables.get(name).ok_or_else(|| IqlError::NoSuchTable {
                        table: name.clone(),
                    })?;
                    out.rows_scanned += t.len();
                    table = Some(Cow::Borrowed(t));
                }
                Stmt::Filter(expr) => {
                    let nt = {
                        let t: &Table = table.as_deref().ok_or(IqlError::NoTableLoaded)?;
                        out.rows_scanned += t.len();
                        let cols = t.column_names_owned();
                        let name_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                        let mut nt = Table::new(&t.name, &name_refs);
                        for row in t.rows() {
                            if eval_row_expr(expr, &cols, row, &env)?.truthy() {
                                nt.push_row(row.clone());
                            }
                        }
                        nt
                    };
                    table = Some(Cow::Owned(nt));
                }
                Stmt::Derive(name, expr) => {
                    let nt = {
                        let t: &Table = table.as_deref().ok_or(IqlError::NoTableLoaded)?;
                        out.rows_scanned += t.len();
                        let cols = t.column_names_owned();
                        let mut names: Vec<&str> = cols.iter().map(String::as_str).collect();
                        names.push(name);
                        let mut nt = Table::new(&t.name, &names);
                        for row in t.rows() {
                            let v = eval_row_expr(expr, &cols, row, &env)?;
                            let mut nr = row.clone();
                            nr.push(v);
                            nt.push_row(nr);
                        }
                        nt
                    };
                    table = Some(Cow::Owned(nt));
                }
                Stmt::Select(names) => {
                    let nt = {
                        let t: &Table = table.as_deref().ok_or(IqlError::NoTableLoaded)?;
                        let idxs: Vec<usize> = names
                            .iter()
                            .map(|n| {
                                t.column_index(n)
                                    .ok_or_else(|| IqlError::NoSuchColumn { column: n.clone() })
                            })
                            .collect::<Result<_, _>>()?;
                        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
                        let mut nt = Table::new(&t.name, &name_refs);
                        for row in t.rows() {
                            nt.push_row(idxs.iter().map(|&i| row[i].clone()).collect());
                        }
                        nt
                    };
                    table = Some(Cow::Owned(nt));
                }
                Stmt::Sort { column, descending } => {
                    let nt = {
                        let t: &Table = table.as_deref().ok_or(IqlError::NoTableLoaded)?;
                        let idx = t
                            .column_index(column)
                            .ok_or_else(|| IqlError::NoSuchColumn {
                                column: column.clone(),
                            })?;
                        let names = t.column_names_owned();
                        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
                        let mut rows: Vec<Vec<Value>> = t.rows().to_vec();
                        rows.sort_by(|a, b| compare_values(&a[idx], &b[idx]));
                        if *descending {
                            rows.reverse();
                        }
                        let mut nt = Table::new(&t.name, &name_refs);
                        for r in rows {
                            nt.push_row(r);
                        }
                        nt
                    };
                    table = Some(Cow::Owned(nt));
                }
                Stmt::Limit(n) => {
                    let nt = {
                        let t: &Table = table.as_deref().ok_or(IqlError::NoTableLoaded)?;
                        let names = t.column_names_owned();
                        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
                        let mut nt = Table::new(&t.name, &name_refs);
                        for r in t.rows().iter().take(*n) {
                            nt.push_row(r.clone());
                        }
                        nt
                    };
                    table = Some(Cow::Owned(nt));
                }
                Stmt::Join {
                    table: right_name,
                    on,
                } => {
                    let nt = {
                        let left: &Table = table.as_deref().ok_or(IqlError::NoTableLoaded)?;
                        let right =
                            self.tables
                                .get(right_name)
                                .ok_or_else(|| IqlError::NoSuchTable {
                                    table: right_name.clone(),
                                })?;
                        out.rows_scanned += left.len() + right.len();
                        let li = left
                            .column_index(on)
                            .ok_or_else(|| IqlError::NoSuchColumn { column: on.clone() })?;
                        let ri = right
                            .column_index(on)
                            .ok_or_else(|| IqlError::NoSuchColumn { column: on.clone() })?;
                        // Right-side columns that collide with left names are
                        // dropped (left wins), including the join column itself.
                        let left_names = left.column_names_owned();
                        let kept_right: Vec<usize> = right
                            .columns
                            .iter()
                            .enumerate()
                            .filter(|(i, c)| *i != ri && !left_names.contains(&c.name))
                            .map(|(i, _)| i)
                            .collect();
                        let mut names: Vec<&str> = left_names.iter().map(String::as_str).collect();
                        for &i in &kept_right {
                            names.push(&right.columns[i].name);
                        }
                        let mut nt = Table::new(&left.name, &names);
                        // Hash join on the stringified key.
                        let mut index: BTreeMap<String, Vec<&Vec<Value>>> = BTreeMap::new();
                        for row in right.rows() {
                            index.entry(row[ri].to_string()).or_default().push(row);
                        }
                        for lrow in left.rows() {
                            if let Some(matches) = index.get(&lrow[li].to_string()) {
                                for rrow in matches {
                                    let mut row = lrow.clone();
                                    for &i in &kept_right {
                                        row.push(rrow[i].clone());
                                    }
                                    nt.push_row(row);
                                }
                            }
                        }
                        nt
                    };
                    table = Some(Cow::Owned(nt));
                }
                Stmt::Group { keys, aggs } => {
                    let nt = {
                        let t: &Table = table.as_deref().ok_or(IqlError::NoTableLoaded)?;
                        out.rows_scanned += t.len();
                        let key_idxs: Vec<usize> = keys
                            .iter()
                            .map(|k| {
                                t.column_index(k)
                                    .ok_or_else(|| IqlError::NoSuchColumn { column: k.clone() })
                            })
                            .collect::<Result<_, _>>()?;
                        let cols = t.column_names_owned();
                        // Group rows by rendered key tuple; BTreeMap over the
                        // tuple keeps output order deterministic.
                        let mut groups: BTreeMap<Vec<String>, Vec<&Vec<Value>>> = BTreeMap::new();
                        for row in t.rows() {
                            let key: Vec<String> =
                                key_idxs.iter().map(|&i| row[i].to_string()).collect();
                            groups.entry(key).or_default().push(row);
                        }
                        let mut names: Vec<&str> = keys.iter().map(String::as_str).collect();
                        for a in aggs {
                            names.push(&a.name);
                        }
                        let mut nt = Table::new(&t.name, &names);
                        for rows in groups.values() {
                            let mut new_row: Vec<Value> =
                                key_idxs.iter().map(|&i| rows[0][i].clone()).collect();
                            for a in aggs {
                                new_row.push(eval_agg_expr(&a.expr, &cols, rows, &env)?);
                            }
                            nt.push_row(new_row);
                        }
                        nt
                    };
                    table = Some(Cow::Owned(nt));
                }
                Stmt::Agg(aggs) => {
                    let t: &Table = table.as_deref().ok_or(IqlError::NoTableLoaded)?;
                    out.rows_scanned += t.len();
                    let cols = t.column_names_owned();
                    let rows: Vec<&Vec<Value>> = t.rows().iter().collect();
                    for a in aggs {
                        let v = eval_agg_expr(&a.expr, &cols, &rows, &env)?;
                        env.scalars.insert(a.name.clone(), v);
                    }
                }
                Stmt::Let(name, expr) => {
                    let v = eval_scalar_expr(expr, &env)?;
                    env.scalars.insert(name.clone(), v);
                }
                Stmt::Emit(names) => {
                    for n in names {
                        let v = env
                            .scalars
                            .get(n)
                            .cloned()
                            .ok_or_else(|| IqlError::NoSuchVariable { name: n.clone() })?;
                        out.emitted.push((n.clone(), v));
                    }
                }
            }
        }
        // Materialize the final table only when the program produced one it
        // transformed; a bare borrowed table is returned by clone (rare and
        // only for preview-style programs).
        out.table = table.map(Cow::into_owned);
        Ok(out)
    }
}

/// Evaluate a standalone expression against a scalar environment (used by
/// the expert model for rule conditions).
///
/// # Errors
///
/// Returns [`IqlError::NoSuchVariable`] for unknown names or a type error.
pub fn eval_with_scalars(
    expr: &Expr,
    scalars: &BTreeMap<String, Value>,
) -> Result<Value, IqlError> {
    let env = Env {
        scalars: scalars.clone(),
    };
    eval_scalar_expr(expr, &env)
}

trait ColumnNamesOwned {
    fn column_names_owned(&self) -> Vec<String>;
}

impl ColumnNamesOwned for Table {
    fn column_names_owned(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }
}

fn compare_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
        _ => a.to_string().cmp(&b.to_string()),
    }
}

fn num(v: &Value, what: &str) -> Result<f64, IqlError> {
    v.as_f64().ok_or_else(|| IqlError::Type {
        message: format!("{what} is not numeric (got {v:?})"),
    })
}

fn binary(op: BinaryOp, l: Value, r: Value) -> Result<Value, IqlError> {
    use BinaryOp::*;
    Ok(match op {
        And => Value::Int(i64::from(l.truthy() && r.truthy())),
        Or => Value::Int(i64::from(l.truthy() || r.truthy())),
        Eq | Ne => {
            let equal = match (&l, &r) {
                (Value::Str(a), Value::Str(b)) => a == b,
                _ => match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => a == b,
                    _ => l.to_string() == r.to_string(),
                },
            };
            Value::Int(i64::from(if op == Eq { equal } else { !equal }))
        }
        Lt | Le | Gt | Ge => {
            let ord = compare_values(&l, &r);
            let res = match op {
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Value::Int(i64::from(res))
        }
        Add | Sub | Mul | Div | Rem => {
            let a = num(&l, "left operand")?;
            let b = num(&r, "right operand")?;
            let v = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                // Division by zero yields 0 rather than NaN: diagnosis
                // ratios over empty populations should read as "0%", not
                // poison every downstream conclusion.
                Div => {
                    if b == 0.0 {
                        0.0
                    } else {
                        a / b
                    }
                }
                Rem => {
                    if b == 0.0 {
                        0.0
                    } else {
                        a % b
                    }
                }
                _ => unreachable!(),
            };
            if v.fract() == 0.0
                && v.abs() < 9e15
                && matches!((l, r), (Value::Int(_), Value::Int(_)))
            {
                Value::Int(v as i64)
            } else {
                Value::Float(v)
            }
        }
    })
}

fn scalar_call(name: &str, args: &[Value]) -> Result<Value, IqlError> {
    let bad = |message: &str| IqlError::BadCall {
        name: name.to_owned(),
        message: message.to_owned(),
    };
    match (name, args.len()) {
        ("abs", 1) => Ok(Value::Float(num(&args[0], "abs arg")?.abs())),
        ("sqrt", 1) => Ok(Value::Float(num(&args[0], "sqrt arg")?.max(0.0).sqrt())),
        ("floor", 1) => Ok(Value::Float(num(&args[0], "floor arg")?.floor())),
        ("ceil", 1) => Ok(Value::Float(num(&args[0], "ceil arg")?.ceil())),
        ("round", 1) => Ok(Value::Float(num(&args[0], "round arg")?.round())),
        ("min", 2) => Ok(Value::Float(
            num(&args[0], "min arg")?.min(num(&args[1], "min arg")?),
        )),
        ("max", 2) => Ok(Value::Float(
            num(&args[0], "max arg")?.max(num(&args[1], "max arg")?),
        )),
        ("if", 3) => Ok(if args[0].truthy() {
            args[1].clone()
        } else {
            args[2].clone()
        }),
        ("contains", 2) => match (&args[0], &args[1]) {
            (Value::Str(h), Value::Str(n)) => Ok(Value::Int(i64::from(h.contains(&**n)))),
            _ => Err(bad("contains expects two strings")),
        },
        ("min" | "max", n) => Err(bad(&format!("expected 2 args, got {n}"))),
        _ => Err(bad("unknown function in this context")),
    }
}

fn eval_row_expr(
    expr: &Expr,
    cols: &[String],
    row: &[Value],
    env: &Env,
) -> Result<Value, IqlError> {
    match expr {
        Expr::Number(n) => Ok(Value::Float(*n)),
        Expr::Str(s) => Ok(Value::Str(s.as_str().into())),
        Expr::Ident(name) => {
            if let Some(i) = cols.iter().position(|c| c == name) {
                Ok(row[i].clone())
            } else if let Some(v) = env.scalars.get(name) {
                Ok(v.clone())
            } else {
                Err(IqlError::NoSuchColumn {
                    column: name.clone(),
                })
            }
        }
        Expr::Unary(op, inner) => {
            let v = eval_row_expr(inner, cols, row, env)?;
            match op {
                UnaryOp::Neg => Ok(Value::Float(-num(&v, "negation operand")?)),
                UnaryOp::Not => Ok(Value::Int(i64::from(!v.truthy()))),
            }
        }
        Expr::Binary(l, op, r) => {
            let lv = eval_row_expr(l, cols, row, env)?;
            let rv = eval_row_expr(r, cols, row, env)?;
            binary(*op, lv, rv)
        }
        Expr::Call(name, args) => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_row_expr(a, cols, row, env))
                .collect::<Result<_, _>>()?;
            scalar_call(name, &vals)
        }
    }
}

fn eval_scalar_expr(expr: &Expr, env: &Env) -> Result<Value, IqlError> {
    match expr {
        Expr::Number(n) => Ok(Value::Float(*n)),
        Expr::Str(s) => Ok(Value::Str(s.as_str().into())),
        Expr::Ident(name) => env
            .scalars
            .get(name)
            .cloned()
            .ok_or_else(|| IqlError::NoSuchVariable { name: name.clone() }),
        Expr::Unary(op, inner) => {
            let v = eval_scalar_expr(inner, env)?;
            match op {
                UnaryOp::Neg => Ok(Value::Float(-num(&v, "negation operand")?)),
                UnaryOp::Not => Ok(Value::Int(i64::from(!v.truthy()))),
            }
        }
        Expr::Binary(l, op, r) => {
            let lv = eval_scalar_expr(l, env)?;
            let rv = eval_scalar_expr(r, env)?;
            binary(*op, lv, rv)
        }
        Expr::Call(name, args) => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_scalar_expr(a, env))
                .collect::<Result<_, _>>()?;
            scalar_call(name, &vals)
        }
    }
}

/// Evaluate an aggregate-context expression over a set of rows.
///
/// Aggregate function calls (`sum(expr)`, `count()`, …) reduce the rows;
/// everything around them is scalar arithmetic. `max`/`min` with one
/// argument aggregate; with two they are scalar.
fn eval_agg_expr(
    expr: &Expr,
    cols: &[String],
    rows: &[&Vec<Value>],
    env: &Env,
) -> Result<Value, IqlError> {
    match expr {
        Expr::Number(n) => Ok(Value::Float(*n)),
        Expr::Str(s) => Ok(Value::Str(s.as_str().into())),
        Expr::Ident(name) => {
            // In aggregate context a bare identifier means "this scalar",
            // or the column value of the first row (useful after GROUP for
            // key columns).
            if let Some(v) = env.scalars.get(name) {
                return Ok(v.clone());
            }
            if let Some(i) = cols.iter().position(|c| c == name) {
                return Ok(rows.first().map_or(Value::Null, |r| r[i].clone()));
            }
            Err(IqlError::NoSuchVariable { name: name.clone() })
        }
        Expr::Unary(op, inner) => {
            let v = eval_agg_expr(inner, cols, rows, env)?;
            match op {
                UnaryOp::Neg => Ok(Value::Float(-num(&v, "negation operand")?)),
                UnaryOp::Not => Ok(Value::Int(i64::from(!v.truthy()))),
            }
        }
        Expr::Binary(l, op, r) => {
            let lv = eval_agg_expr(l, cols, rows, env)?;
            let rv = eval_agg_expr(r, cols, rows, env)?;
            binary(*op, lv, rv)
        }
        Expr::Call(name, args) => {
            let is_agg = AGG_FNS.contains(&name.as_str())
                && matches!(
                    (name.as_str(), args.len()),
                    ("count", 0)
                        | ("sum" | "mean" | "min" | "max" | "std" | "distinct", 1)
                        | ("pct", 2)
                );
            if !is_agg {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| eval_agg_expr(a, cols, rows, env))
                    .collect::<Result<_, _>>()?;
                return scalar_call(name, &vals);
            }
            match name.as_str() {
                "count" => Ok(Value::Int(rows.len() as i64)),
                "distinct" => {
                    let mut seen = std::collections::BTreeSet::new();
                    for row in rows {
                        let v = eval_row_expr(&args[0], cols, row, env)?;
                        seen.insert(v.to_string());
                    }
                    Ok(Value::Int(seen.len() as i64))
                }
                "pct" => {
                    let p = eval_scalar_or_number(&args[1], env)?;
                    let mut vals = collect_numeric(&args[0], cols, rows, env)?;
                    if vals.is_empty() {
                        return Ok(Value::Float(0.0));
                    }
                    vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                    let rank = ((p / 100.0) * vals.len() as f64).ceil().max(1.0) as usize;
                    Ok(Value::Float(vals[rank.min(vals.len()) - 1]))
                }
                _ => {
                    let vals = collect_numeric(&args[0], cols, rows, env)?;
                    let n = vals.len();
                    let v = match name.as_str() {
                        "sum" => vals.iter().sum::<f64>(),
                        "mean" => {
                            if n == 0 {
                                0.0
                            } else {
                                vals.iter().sum::<f64>() / n as f64
                            }
                        }
                        "min" => vals.iter().copied().fold(f64::INFINITY, f64::min),
                        "max" => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                        "std" => {
                            if n == 0 {
                                0.0
                            } else {
                                let m = vals.iter().sum::<f64>() / n as f64;
                                (vals.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / n as f64)
                                    .sqrt()
                            }
                        }
                        _ => unreachable!(),
                    };
                    let v = if n == 0 && (name == "min" || name == "max") {
                        0.0
                    } else {
                        v
                    };
                    Ok(Value::Float(v))
                }
            }
        }
    }
}

fn eval_scalar_or_number(expr: &Expr, env: &Env) -> Result<f64, IqlError> {
    num(&eval_scalar_expr(expr, env)?, "percentile rank")
}

fn collect_numeric(
    expr: &Expr,
    cols: &[String],
    rows: &[&Vec<Value>],
    env: &Env,
) -> Result<Vec<f64>, IqlError> {
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let v = eval_row_expr(expr, cols, row, env)?;
        if let Some(f) = v.as_f64() {
            out.push(f);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse_program;
    use super::*;

    fn dxt_tables() -> TableSet {
        let mut t = Table::new("DXT", &["rank", "op", "offset", "length"]);
        // rank 0: two small sequential writes; rank 1: one large read.
        for (rank, op, offset, length) in [
            (0, "write", 0, 100),
            (0, "write", 100, 100),
            (1, "read", 0, 1_000_000),
            (1, "write", 4096, 50),
        ] {
            t.push_row(vec![
                Value::Int(rank),
                Value::Str(op.into()),
                Value::Int(offset),
                Value::Int(length),
            ]);
        }
        let mut set = TableSet::default();
        set.insert(t);
        set
    }

    fn run(src: &str) -> RunOutput {
        let tables = dxt_tables();
        let program = parse_program(src).unwrap();
        Interpreter::new(&tables).run(&program).unwrap()
    }

    #[test]
    fn load_agg_emit() {
        let out = run("LOAD DXT\nAGG n = count(), total = sum(length)\nEMIT n, total\n");
        assert_eq!(out.get_f64("n"), Some(4.0));
        assert_eq!(out.get_f64("total"), Some(1_000_250.0));
    }

    #[test]
    fn filter_with_string_predicate() {
        let out = run("LOAD DXT\nFILTER op == 'write'\nAGG n = count()\nEMIT n\n");
        assert_eq!(out.get_f64("n"), Some(3.0));
    }

    #[test]
    fn derive_and_aggregate_derived_column() {
        let out = run(
            "LOAD DXT\nDERIVE small = length < 1024\nAGG smalls = sum(small), n = count()\nLET pct = 100 * smalls / n\nEMIT pct\n",
        );
        assert_eq!(out.get_f64("pct"), Some(75.0));
    }

    #[test]
    fn group_by_produces_table() {
        let out = run("LOAD DXT\nGROUP rank AGG n = count(), bytes = sum(length)\n");
        let t = out.table.unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(0, "n"), Some(&Value::Int(2)));
        assert_eq!(t.cell(1, "bytes"), Some(&Value::Float(1_000_050.0)));
    }

    #[test]
    fn sort_and_limit() {
        let out = run("LOAD DXT\nSORT length DESC\nLIMIT 1\nSELECT length\n");
        let t = out.table.unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.cell(0, "length"), Some(&Value::Int(1_000_000)));
    }

    #[test]
    fn scalar_functions_in_let() {
        let out = run(
            "LOAD DXT\nAGG total = sum(length)\nLET r = max(total, 2_000_000) / 1000\nEMIT r\n",
        );
        assert_eq!(out.get_f64("r"), Some(2000.0));
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let out = run("LOAD DXT\nFILTER length > 99999999\nAGG n = count(), s = sum(length)\nLET pct = 100 * s / n\nEMIT pct, n\n");
        assert_eq!(out.get_f64("n"), Some(0.0));
        assert_eq!(out.get_f64("pct"), Some(0.0));
    }

    #[test]
    fn percentile_and_std() {
        let out = run("LOAD DXT\nAGG p50 = pct(length, 50), sd = std(length)\nEMIT p50, sd\n");
        assert_eq!(out.get_f64("p50"), Some(100.0));
        assert!(out.get_f64("sd").unwrap() > 0.0);
    }

    #[test]
    fn distinct_counts_unique_values() {
        let out =
            run("LOAD DXT\nAGG ranks = distinct(rank), ops = distinct(op)\nEMIT ranks, ops\n");
        assert_eq!(out.get_f64("ranks"), Some(2.0));
        assert_eq!(out.get_f64("ops"), Some(2.0));
    }

    #[test]
    fn missing_table_is_error() {
        let tables = dxt_tables();
        let program = parse_program("LOAD POSIX\n").unwrap();
        assert!(matches!(
            Interpreter::new(&tables).run(&program),
            Err(IqlError::NoSuchTable { .. })
        ));
    }

    #[test]
    fn missing_column_is_error() {
        let tables = dxt_tables();
        let program = parse_program("LOAD DXT\nFILTER nope > 1\n").unwrap();
        assert!(matches!(
            Interpreter::new(&tables).run(&program),
            Err(IqlError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn statement_before_load_is_error() {
        let tables = dxt_tables();
        let program = parse_program("FILTER rank == 0\n").unwrap();
        assert!(matches!(
            Interpreter::new(&tables).run(&program),
            Err(IqlError::NoTableLoaded)
        ));
    }

    #[test]
    fn emit_unknown_variable_is_error() {
        let tables = dxt_tables();
        let program = parse_program("LOAD DXT\nEMIT nope\n").unwrap();
        assert!(matches!(
            Interpreter::new(&tables).run(&program),
            Err(IqlError::NoSuchVariable { .. })
        ));
    }

    #[test]
    fn agg_over_group_table_second_stage() {
        // Aggregate the grouped table again: max per-rank op count.
        let out = run(
            "LOAD DXT\nGROUP rank AGG n = count()\nAGG max_ops = max(n), ranks = count()\nEMIT max_ops, ranks\n",
        );
        assert_eq!(out.get_f64("max_ops"), Some(2.0));
        assert_eq!(out.get_f64("ranks"), Some(2.0));
    }

    fn two_table_set() -> TableSet {
        let mut ops = Table::new("OPS", &["file", "rank", "bytes"]);
        for (f, r, b) in [("a", 0, 100), ("a", 1, 200), ("b", 0, 50), ("c", 0, 10)] {
            ops.push_row(vec![Value::Str(f.into()), Value::Int(r), Value::Int(b)]);
        }
        let mut layout = Table::new("LAYOUT", &["file", "stripe_width", "bytes"]);
        for (f, w, b) in [("a", 4, -1), ("b", 1, -1)] {
            layout.push_row(vec![Value::Str(f.into()), Value::Int(w), Value::Int(b)]);
        }
        let mut set = TableSet::default();
        set.insert(ops);
        set.insert(layout);
        set
    }

    #[test]
    fn join_combines_matching_rows() {
        let tables = two_table_set();
        let program = parse_program(
            "LOAD OPS\nJOIN LAYOUT ON file\nAGG n = count(), widths = sum(stripe_width)\nEMIT n, widths\n",
        )
        .unwrap();
        let out = Interpreter::new(&tables).run(&program).unwrap();
        // File c has no layout row: inner join drops it.
        assert_eq!(out.get_f64("n"), Some(3.0));
        assert_eq!(out.get_f64("widths"), Some(4.0 + 4.0 + 1.0));
    }

    #[test]
    fn join_left_wins_on_column_collision() {
        let tables = two_table_set();
        let program = parse_program(
            "LOAD OPS\nJOIN LAYOUT ON file\nFILTER file == 'a'\nAGG b = sum(bytes)\nEMIT b\n",
        )
        .unwrap();
        let out = Interpreter::new(&tables).run(&program).unwrap();
        // `bytes` stays the OPS column (100 + 200), not LAYOUT's -1.
        assert_eq!(out.get_f64("b"), Some(300.0));
    }

    #[test]
    fn join_then_group_supports_layout_analyses() {
        let tables = two_table_set();
        let program = parse_program(
            "LOAD OPS\nJOIN LAYOUT ON file\nGROUP file AGG ranks = distinct(rank), width = max(stripe_width)\nDERIVE crowded = ranks > width\nAGG crowded_files = sum(crowded)\nEMIT crowded_files\n",
        )
        .unwrap();
        let out = Interpreter::new(&tables).run(&program).unwrap();
        // File b: 1 rank on width 1 → not crowded; file a: 2 ranks, width 4.
        assert_eq!(out.get_f64("crowded_files"), Some(0.0));
    }

    #[test]
    fn join_missing_table_or_column_errors() {
        let tables = two_table_set();
        let p = parse_program("LOAD OPS\nJOIN NOPE ON file\n").unwrap();
        assert!(matches!(
            Interpreter::new(&tables).run(&p),
            Err(IqlError::NoSuchTable { .. })
        ));
        let p = parse_program("LOAD OPS\nJOIN LAYOUT ON zzz\n").unwrap();
        assert!(matches!(
            Interpreter::new(&tables).run(&p),
            Err(IqlError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn rows_scanned_accumulates() {
        let out = run("LOAD DXT\nFILTER rank == 0\nAGG n = count()\nEMIT n\n");
        assert!(out.rows_scanned >= 8);
    }

    #[test]
    fn contains_function_on_strings() {
        let out = run("LOAD DXT\nFILTER contains(op, 'rit')\nAGG n = count()\nEMIT n\n");
        assert_eq!(out.get_f64("n"), Some(3.0));
    }
}
