//! IQL evaluation facade: lowers a program to a logical plan, optimizes
//! it, and runs the vectorized columnar executor.
//!
//! The pipeline is `lower → optimize → execute` (see [`super::plan`] and
//! `super::exec`). When the optimizer reordered row-visit order (a filter
//! pushed below a sort) and execution errors, the unoptimized 1:1 plan is
//! re-executed so the reported error is bit-for-bit the legacy one — the
//! transforms preserve *whether* a program errors, but a reordered scan
//! can surface a different failing row first.

use super::ast::Program;
use super::exec;
use super::plan::{lower, optimize, Plan};
use super::IqlError;
use extractor::{Table, TableSet, Value};
use std::collections::BTreeMap;

/// Result of running one IQL program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunOutput {
    /// Scalars declared by `EMIT`, in declaration order.
    pub emitted: Vec<(String, Value)>,
    /// The working table at the end of the program, if any.
    pub table: Option<Table>,
    /// Total rows scanned (evaluation effort metric for benches).
    pub rows_scanned: usize,
}

impl RunOutput {
    /// Look up an emitted scalar by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.emitted.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Numeric view of an emitted scalar.
    #[must_use]
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(Value::as_f64)
    }

    /// Emitted scalars as a map.
    #[must_use]
    pub fn emitted_map(&self) -> BTreeMap<String, Value> {
        self.emitted.iter().cloned().collect()
    }
}

/// The IQL interpreter. Holds the attached tables; [`Interpreter::run`]
/// executes one program.
#[derive(Debug)]
pub struct Interpreter<'a> {
    tables: &'a TableSet,
}

impl<'a> Interpreter<'a> {
    /// Create an interpreter over an attached table set.
    #[must_use]
    pub fn new(tables: &'a TableSet) -> Self {
        Interpreter { tables }
    }

    /// Execute a program.
    ///
    /// # Errors
    ///
    /// Returns an [`IqlError`] for unknown tables/columns/variables, bad
    /// function calls, or statements used before `LOAD`.
    pub fn run(&self, program: &Program) -> Result<RunOutput, IqlError> {
        self.run_with_plan(program).0
    }

    /// Execute a program and also return the optimized plan it ran (for
    /// transcript/EXPLAIN surfaces that want both without re-planning).
    pub fn run_with_plan(&self, program: &Program) -> (Result<RunOutput, IqlError>, Plan) {
        let plan = self.plan(program);
        if !ion_obs::enabled() {
            return (self.execute(&plan, program), plan);
        }
        let start = std::time::Instant::now();
        let result = self.execute(&plan, program);
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        ion_obs::observe("iql.query_ns", ns);
        ion_obs::counter("iql.queries_evaluated", 1);
        if let Ok(out) = &result {
            ion_obs::counter("iql.rows_scanned", out.rows_scanned as u64);
        }
        (result, plan)
    }

    fn execute(&self, plan: &Plan, program: &Program) -> Result<RunOutput, IqlError> {
        match exec::execute(plan, self.tables) {
            Err(_) if plan.reordered => {
                // Re-run without optimizations: same outcome kind, but the
                // original row-visit order decides which error surfaces.
                exec::execute(&lower(program), self.tables)
            }
            result => result,
        }
    }

    /// Lower and optimize a program into its execution [`Plan`].
    #[must_use]
    pub fn plan(&self, program: &Program) -> Plan {
        let plan = optimize(lower(program), self.tables);
        if ion_obs::enabled() {
            ion_obs::counter("iql.plan.ops", plan.ops.len() as u64);
            ion_obs::counter("iql.plan.folded", plan.stats.folded as u64);
            ion_obs::counter("iql.plan.filters_pushed", plan.stats.filters_pushed as u64);
            ion_obs::counter(
                "iql.plan.projections_pushed",
                plan.stats.projections_pushed as u64,
            );
            ion_obs::counter("iql.plan.cols_pruned", plan.stats.cols_pruned as u64);
        }
        plan
    }

    /// Render the optimized plan for a program (`EXPLAIN` output).
    #[must_use]
    pub fn explain(&self, program: &Program) -> String {
        self.plan(program).render(self.tables)
    }
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse_program;
    use super::*;

    fn dxt_tables() -> TableSet {
        let mut t = Table::new("DXT", &["rank", "op", "offset", "length"]);
        // rank 0: two small sequential writes; rank 1: one large read.
        for (rank, op, offset, length) in [
            (0, "write", 0, 100),
            (0, "write", 100, 100),
            (1, "read", 0, 1_000_000),
            (1, "write", 4096, 50),
        ] {
            t.push_row(vec![
                Value::Int(rank),
                Value::Str(op.into()),
                Value::Int(offset),
                Value::Int(length),
            ]);
        }
        let mut set = TableSet::default();
        set.insert(t);
        set
    }

    fn run(src: &str) -> RunOutput {
        let tables = dxt_tables();
        let program = parse_program(src).unwrap();
        Interpreter::new(&tables).run(&program).unwrap()
    }

    #[test]
    fn load_agg_emit() {
        let out = run("LOAD DXT\nAGG n = count(), total = sum(length)\nEMIT n, total\n");
        assert_eq!(out.get_f64("n"), Some(4.0));
        assert_eq!(out.get_f64("total"), Some(1_000_250.0));
    }

    #[test]
    fn filter_with_string_predicate() {
        let out = run("LOAD DXT\nFILTER op == 'write'\nAGG n = count()\nEMIT n\n");
        assert_eq!(out.get_f64("n"), Some(3.0));
    }

    #[test]
    fn derive_and_aggregate_derived_column() {
        let out = run(
            "LOAD DXT\nDERIVE small = length < 1024\nAGG smalls = sum(small), n = count()\nLET pct = 100 * smalls / n\nEMIT pct\n",
        );
        assert_eq!(out.get_f64("pct"), Some(75.0));
    }

    #[test]
    fn group_by_produces_table() {
        let out = run("LOAD DXT\nGROUP rank AGG n = count(), bytes = sum(length)\n");
        let t = out.table.unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(0, "n"), Some(Value::Int(2)));
        assert_eq!(t.cell(1, "bytes"), Some(Value::Float(1_000_050.0)));
    }

    #[test]
    fn sort_and_limit() {
        let out = run("LOAD DXT\nSORT length DESC\nLIMIT 1\nSELECT length\n");
        let t = out.table.unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.cell(0, "length"), Some(Value::Int(1_000_000)));
    }

    #[test]
    fn scalar_functions_in_let() {
        let out = run(
            "LOAD DXT\nAGG total = sum(length)\nLET r = max(total, 2_000_000) / 1000\nEMIT r\n",
        );
        assert_eq!(out.get_f64("r"), Some(2000.0));
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let out = run("LOAD DXT\nFILTER length > 99999999\nAGG n = count(), s = sum(length)\nLET pct = 100 * s / n\nEMIT pct, n\n");
        assert_eq!(out.get_f64("n"), Some(0.0));
        assert_eq!(out.get_f64("pct"), Some(0.0));
    }

    #[test]
    fn percentile_and_std() {
        let out = run("LOAD DXT\nAGG p50 = pct(length, 50), sd = std(length)\nEMIT p50, sd\n");
        assert_eq!(out.get_f64("p50"), Some(100.0));
        assert!(out.get_f64("sd").unwrap() > 0.0);
    }

    #[test]
    fn distinct_counts_unique_values() {
        let out =
            run("LOAD DXT\nAGG ranks = distinct(rank), ops = distinct(op)\nEMIT ranks, ops\n");
        assert_eq!(out.get_f64("ranks"), Some(2.0));
        assert_eq!(out.get_f64("ops"), Some(2.0));
    }

    #[test]
    fn missing_table_is_error() {
        let tables = dxt_tables();
        let program = parse_program("LOAD POSIX\n").unwrap();
        assert!(matches!(
            Interpreter::new(&tables).run(&program),
            Err(IqlError::NoSuchTable { .. })
        ));
    }

    #[test]
    fn missing_column_is_error() {
        let tables = dxt_tables();
        let program = parse_program("LOAD DXT\nFILTER nope > 1\n").unwrap();
        assert!(matches!(
            Interpreter::new(&tables).run(&program),
            Err(IqlError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn statement_before_load_is_error() {
        let tables = dxt_tables();
        let program = parse_program("FILTER rank == 0\n").unwrap();
        assert!(matches!(
            Interpreter::new(&tables).run(&program),
            Err(IqlError::NoTableLoaded)
        ));
    }

    #[test]
    fn emit_unknown_variable_is_error() {
        let tables = dxt_tables();
        let program = parse_program("LOAD DXT\nEMIT nope\n").unwrap();
        assert!(matches!(
            Interpreter::new(&tables).run(&program),
            Err(IqlError::NoSuchVariable { .. })
        ));
    }

    #[test]
    fn agg_over_group_table_second_stage() {
        // Aggregate the grouped table again: max per-rank op count.
        let out = run(
            "LOAD DXT\nGROUP rank AGG n = count()\nAGG max_ops = max(n), ranks = count()\nEMIT max_ops, ranks\n",
        );
        assert_eq!(out.get_f64("max_ops"), Some(2.0));
        assert_eq!(out.get_f64("ranks"), Some(2.0));
    }

    fn two_table_set() -> TableSet {
        let mut ops = Table::new("OPS", &["file", "rank", "bytes"]);
        for (f, r, b) in [("a", 0, 100), ("a", 1, 200), ("b", 0, 50), ("c", 0, 10)] {
            ops.push_row(vec![Value::Str(f.into()), Value::Int(r), Value::Int(b)]);
        }
        let mut layout = Table::new("LAYOUT", &["file", "stripe_width", "bytes"]);
        for (f, w, b) in [("a", 4, -1), ("b", 1, -1)] {
            layout.push_row(vec![Value::Str(f.into()), Value::Int(w), Value::Int(b)]);
        }
        let mut set = TableSet::default();
        set.insert(ops);
        set.insert(layout);
        set
    }

    #[test]
    fn join_combines_matching_rows() {
        let tables = two_table_set();
        let program = parse_program(
            "LOAD OPS\nJOIN LAYOUT ON file\nAGG n = count(), widths = sum(stripe_width)\nEMIT n, widths\n",
        )
        .unwrap();
        let out = Interpreter::new(&tables).run(&program).unwrap();
        // File c has no layout row: inner join drops it.
        assert_eq!(out.get_f64("n"), Some(3.0));
        assert_eq!(out.get_f64("widths"), Some(4.0 + 4.0 + 1.0));
    }

    #[test]
    fn join_left_wins_on_column_collision() {
        let tables = two_table_set();
        let program = parse_program(
            "LOAD OPS\nJOIN LAYOUT ON file\nFILTER file == 'a'\nAGG b = sum(bytes)\nEMIT b\n",
        )
        .unwrap();
        let out = Interpreter::new(&tables).run(&program).unwrap();
        // `bytes` stays the OPS column (100 + 200), not LAYOUT's -1.
        assert_eq!(out.get_f64("b"), Some(300.0));
    }

    #[test]
    fn join_then_group_supports_layout_analyses() {
        let tables = two_table_set();
        let program = parse_program(
            "LOAD OPS\nJOIN LAYOUT ON file\nGROUP file AGG ranks = distinct(rank), width = max(stripe_width)\nDERIVE crowded = ranks > width\nAGG crowded_files = sum(crowded)\nEMIT crowded_files\n",
        )
        .unwrap();
        let out = Interpreter::new(&tables).run(&program).unwrap();
        // File b: 1 rank on width 1 → not crowded; file a: 2 ranks, width 4.
        assert_eq!(out.get_f64("crowded_files"), Some(0.0));
    }

    #[test]
    fn join_missing_table_or_column_errors() {
        let tables = two_table_set();
        let p = parse_program("LOAD OPS\nJOIN NOPE ON file\n").unwrap();
        assert!(matches!(
            Interpreter::new(&tables).run(&p),
            Err(IqlError::NoSuchTable { .. })
        ));
        let p = parse_program("LOAD OPS\nJOIN LAYOUT ON zzz\n").unwrap();
        assert!(matches!(
            Interpreter::new(&tables).run(&p),
            Err(IqlError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn rows_scanned_accumulates() {
        let out = run("LOAD DXT\nFILTER rank == 0\nAGG n = count()\nEMIT n\n");
        assert!(out.rows_scanned >= 8);
    }

    #[test]
    fn contains_function_on_strings() {
        let out = run("LOAD DXT\nFILTER contains(op, 'rit')\nAGG n = count()\nEMIT n\n");
        assert_eq!(out.get_f64("n"), Some(3.0));
    }

    #[test]
    fn explain_renders_the_optimized_plan() {
        let tables = dxt_tables();
        let program =
            parse_program("LOAD DXT\nSORT length DESC\nFILTER rank == 0\nLIMIT 2\n").unwrap();
        let text = Interpreter::new(&tables).explain(&program);
        assert!(text.contains("scan DXT"), "plan text:\n{text}");
        let filter_at = text.find("filter").unwrap();
        let sort_at = text.find("sort").unwrap();
        assert!(
            filter_at < sort_at,
            "filter should be pushed below sort:\n{text}"
        );
    }

    #[test]
    fn reordered_plan_falls_back_to_legacy_error() {
        // Column `x` is Mixed; after SORT y the first failing row differs
        // from pre-sort order, so the reordered (filter-first) plan must
        // re-run unoptimized to report the legacy error.
        let mut t = Table::new("T", &["y", "x"]);
        t.push_row(vec![Value::Int(2), Value::Str("bbb".into())]);
        t.push_row(vec![Value::Int(1), Value::Str("aaa".into())]);
        let mut tables = TableSet::default();
        tables.insert(t);
        let program = parse_program("LOAD T\nSORT y\nFILTER x + 1 > 0\n").unwrap();
        let err = Interpreter::new(&tables).run(&program).unwrap_err();
        match err {
            IqlError::Type { message } => {
                assert!(
                    message.contains("aaa"),
                    "should fail on post-sort first row: {message}"
                );
            }
            other => panic!("expected type error, got {other:?}"),
        }
    }

    #[test]
    fn optimized_filter_pushdown_keeps_results_identical() {
        // SELECT prunes `op`/`offset`; FILTER on `rank` pushes below both
        // the sort and the projection. Results must match the naive order.
        let out = run(
            "LOAD DXT\nSORT length DESC\nSELECT rank, length\nFILTER rank == 0\nAGG n = count(), total = sum(length)\nEMIT n, total\n",
        );
        assert_eq!(out.get_f64("n"), Some(2.0));
        assert_eq!(out.get_f64("total"), Some(200.0));
    }
}
