//! IQL lexer.

use super::IqlError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized by the parser,
    /// case-insensitively).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// String literal (single or double quoted).
    Str(String),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// End of one statement line.
    Newline,
}

/// Tokenize IQL source. Lines are significant (statements are
/// line-oriented); `#` starts a comment to end of line.
pub fn tokenize(src: &str) -> Result<Vec<(Token, usize)>, IqlError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&ch) = chars.peek() {
        match ch {
            '\n' => {
                chars.next();
                // Collapse consecutive newlines.
                if !matches!(out.last(), Some((Token::Newline, _)) | None) {
                    out.push((Token::Newline, line));
                }
                line += 1;
            }
            ' ' | '\t' | '\r' => {
                chars.next();
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                }
            }
            '"' | '\'' => {
                let quote = ch;
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    if c == quote {
                        closed = true;
                        break;
                    }
                    if c == '\n' {
                        line += 1;
                    }
                    s.push(c);
                }
                if !closed {
                    return Err(IqlError::UnterminatedString { line });
                }
                out.push((Token::Str(s), line));
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    let sign_after_exponent =
                        (c == '+' || c == '-') && matches!(s.chars().last(), Some('e') | Some('E'));
                    if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || sign_after_exponent
                    {
                        s.push(c);
                        chars.next();
                    } else if c == '_' {
                        chars.next(); // digit separators: 1_000_000
                    } else {
                        break;
                    }
                }
                let n: f64 = s.parse().map_err(|_| IqlError::Parse {
                    message: format!("bad number literal {s}"),
                    line,
                })?;
                out.push((Token::Number(n), line));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Token::Ident(s), line));
            }
            _ => {
                chars.next();
                let tok = match ch {
                    '+' => Token::Plus,
                    '-' => Token::Minus,
                    '*' => Token::Star,
                    '/' => Token::Slash,
                    '%' => Token::Percent,
                    '(' => Token::LParen,
                    ')' => Token::RParen,
                    ',' => Token::Comma,
                    '=' => {
                        if chars.peek() == Some(&'=') {
                            chars.next();
                            Token::EqEq
                        } else {
                            Token::Assign
                        }
                    }
                    '!' => {
                        if chars.peek() == Some(&'=') {
                            chars.next();
                            Token::NotEq
                        } else {
                            Token::Bang
                        }
                    }
                    '<' => {
                        if chars.peek() == Some(&'=') {
                            chars.next();
                            Token::Le
                        } else {
                            Token::Lt
                        }
                    }
                    '>' => {
                        if chars.peek() == Some(&'=') {
                            chars.next();
                            Token::Ge
                        } else {
                            Token::Gt
                        }
                    }
                    '&' => {
                        if chars.peek() == Some(&'&') {
                            chars.next();
                            Token::AndAnd
                        } else {
                            return Err(IqlError::BadChar { ch, line });
                        }
                    }
                    '|' => {
                        if chars.peek() == Some(&'|') {
                            chars.next();
                            Token::OrOr
                        } else {
                            return Err(IqlError::BadChar { ch, line });
                        }
                    }
                    other => return Err(IqlError::BadChar { ch: other, line }),
                };
                out.push((tok, line));
            }
        }
    }
    if !matches!(out.last(), Some((Token::Newline, _)) | None) {
        out.push((Token::Newline, line));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("LOAD POSIX\n"),
            vec![
                Token::Ident("LOAD".into()),
                Token::Ident("POSIX".into()),
                Token::Newline
            ]
        );
    }

    #[test]
    fn operators_and_numbers() {
        assert_eq!(
            toks("a >= 1.5e3 && b != 2"),
            vec![
                Token::Ident("a".into()),
                Token::Ge,
                Token::Number(1500.0),
                Token::AndAnd,
                Token::Ident("b".into()),
                Token::NotEq,
                Token::Number(2.0),
                Token::Newline
            ]
        );
    }

    #[test]
    fn digit_separators() {
        assert_eq!(toks("1_048_576")[0], Token::Number(1_048_576.0));
    }

    #[test]
    fn strings_both_quote_styles() {
        assert_eq!(toks("\"x,y\"")[0], Token::Str("x,y".into()));
        assert_eq!(toks("'file.h5'")[0], Token::Str("file.h5".into()));
    }

    #[test]
    fn comments_stripped() {
        assert_eq!(
            toks("a # comment here\nb"),
            vec![
                Token::Ident("a".into()),
                Token::Newline,
                Token::Ident("b".into()),
                Token::Newline
            ]
        );
    }

    #[test]
    fn consecutive_newlines_collapse() {
        assert_eq!(
            toks("a\n\n\nb"),
            vec![
                Token::Ident("a".into()),
                Token::Newline,
                Token::Ident("b".into()),
                Token::Newline
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(
            tokenize("'oops"),
            Err(IqlError::UnterminatedString { .. })
        ));
    }

    #[test]
    fn bad_char_errors_with_line() {
        match tokenize("a\n@") {
            Err(IqlError::BadChar { ch: '@', line: 2 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lone_ampersand_rejected() {
        assert!(matches!(tokenize("a & b"), Err(IqlError::BadChar { .. })));
    }
}
