//! The original row-at-a-time IQL tree-walker, kept behind the
//! `legacy-eval` feature solely as the differential-test oracle (and the
//! "before" side of `exp_iql`). It materializes every intermediate table
//! as `Vec<Vec<Value>>` rows — exactly the cloning behavior the
//! vectorized executor replaced — and must never be extended with new
//! semantics: the planned engine in [`super::exec`] is checked against
//! this implementation bit-for-bit.

use super::ast::{Expr, Program, Stmt, UnaryOp};
use super::eval::RunOutput;
use super::value_ops::{
    binary, compare_values, eval_scalar_expr, eval_scalar_or_number, is_agg_call, num, numeric_agg,
    percentile, scalar_call, Env,
};
use super::IqlError;
use extractor::{Table, TableSet, Value};
use std::collections::BTreeMap;

/// Row-major working table: the legacy engine's native representation.
#[derive(Debug, Clone)]
struct RowTable {
    name: String,
    cols: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl RowTable {
    fn from_table(t: &Table) -> Self {
        RowTable {
            name: t.name.clone(),
            cols: t.columns.iter().map(|c| c.name.clone()).collect(),
            rows: t.iter_rows().map(|r| r.to_vec()).collect(),
        }
    }

    fn new(name: &str, cols: Vec<String>) -> Self {
        // Same duplicate-header invariant (and panic) as `Table::new`.
        let mut seen = std::collections::HashSet::new();
        for c in &cols {
            assert!(seen.insert(c.as_str()), "duplicate column name {c}");
        }
        RowTable {
            name: name.to_owned(),
            cols,
            rows: Vec::new(),
        }
    }

    fn column_index(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| c == name)
    }

    fn into_table(self) -> Table {
        let refs: Vec<&str> = self.cols.iter().map(String::as_str).collect();
        let mut t = Table::new(&self.name, &refs);
        for r in self.rows {
            t.push_row(r);
        }
        t
    }
}

/// The legacy interpreter: same public contract as
/// [`super::eval::Interpreter`], row-cloning execution strategy.
#[derive(Debug)]
pub struct LegacyInterpreter<'a> {
    tables: &'a TableSet,
}

impl<'a> LegacyInterpreter<'a> {
    /// Create a legacy interpreter over an attached table set.
    #[must_use]
    pub fn new(tables: &'a TableSet) -> Self {
        LegacyInterpreter { tables }
    }

    /// Execute a program with the original tree-walking evaluator.
    ///
    /// # Errors
    ///
    /// Returns an [`IqlError`] for unknown tables/columns/variables, bad
    /// function calls, or statements used before `LOAD`.
    #[allow(clippy::too_many_lines)]
    pub fn run(&self, program: &Program) -> Result<RunOutput, IqlError> {
        let mut table: Option<RowTable> = None;
        let mut env = Env::default();
        let mut out = RunOutput::default();
        for stmt in &program.statements {
            match stmt {
                Stmt::Load(name) => {
                    let t = self.tables.get(name).ok_or_else(|| IqlError::NoSuchTable {
                        table: name.clone(),
                    })?;
                    out.rows_scanned += t.len();
                    table = Some(RowTable::from_table(t));
                }
                Stmt::Filter(expr) => {
                    let t = table.as_ref().ok_or(IqlError::NoTableLoaded)?;
                    out.rows_scanned += t.rows.len();
                    let mut nt = RowTable::new(&t.name, t.cols.clone());
                    for row in &t.rows {
                        if eval_row_expr(expr, &t.cols, row, &env)?.truthy() {
                            nt.rows.push(row.clone());
                        }
                    }
                    table = Some(nt);
                }
                Stmt::Derive(name, expr) => {
                    let t = table.as_ref().ok_or(IqlError::NoTableLoaded)?;
                    out.rows_scanned += t.rows.len();
                    let mut cols = t.cols.clone();
                    cols.push(name.clone());
                    let mut nt = RowTable::new(&t.name, cols);
                    for row in &t.rows {
                        let v = eval_row_expr(expr, &t.cols, row, &env)?;
                        let mut nr = row.clone();
                        nr.push(v);
                        nt.rows.push(nr);
                    }
                    table = Some(nt);
                }
                Stmt::Select(names) => {
                    let t = table.as_ref().ok_or(IqlError::NoTableLoaded)?;
                    let idxs: Vec<usize> = names
                        .iter()
                        .map(|n| {
                            t.column_index(n)
                                .ok_or_else(|| IqlError::NoSuchColumn { column: n.clone() })
                        })
                        .collect::<Result<_, _>>()?;
                    let mut nt = RowTable::new(&t.name, names.clone());
                    for row in &t.rows {
                        nt.rows.push(idxs.iter().map(|&i| row[i].clone()).collect());
                    }
                    table = Some(nt);
                }
                Stmt::Sort { column, descending } => {
                    let t = table.as_mut().ok_or(IqlError::NoTableLoaded)?;
                    let idx = t
                        .column_index(column)
                        .ok_or_else(|| IqlError::NoSuchColumn {
                            column: column.clone(),
                        })?;
                    t.rows.sort_by(|a, b| compare_values(&a[idx], &b[idx]));
                    if *descending {
                        t.rows.reverse();
                    }
                }
                Stmt::Limit(n) => {
                    let t = table.as_mut().ok_or(IqlError::NoTableLoaded)?;
                    t.rows.truncate(*n);
                }
                Stmt::Join {
                    table: right_name,
                    on,
                } => {
                    let left = table.as_ref().ok_or(IqlError::NoTableLoaded)?;
                    let right = self
                        .tables
                        .get(right_name)
                        .map(RowTable::from_table)
                        .ok_or_else(|| IqlError::NoSuchTable {
                            table: right_name.clone(),
                        })?;
                    out.rows_scanned += left.rows.len() + right.rows.len();
                    let li = left
                        .column_index(on)
                        .ok_or_else(|| IqlError::NoSuchColumn { column: on.clone() })?;
                    let ri = right
                        .column_index(on)
                        .ok_or_else(|| IqlError::NoSuchColumn { column: on.clone() })?;
                    // Right-side columns that collide with left names are
                    // dropped (left wins), including the join column itself.
                    let kept_right: Vec<usize> = right
                        .cols
                        .iter()
                        .enumerate()
                        .filter(|(i, c)| *i != ri && !left.cols.contains(c))
                        .map(|(i, _)| i)
                        .collect();
                    let mut cols = left.cols.clone();
                    for &i in &kept_right {
                        cols.push(right.cols[i].clone());
                    }
                    let mut nt = RowTable::new(&left.name, cols);
                    // Hash join on the stringified key.
                    let mut index: BTreeMap<String, Vec<&Vec<Value>>> = BTreeMap::new();
                    for row in &right.rows {
                        index.entry(row[ri].to_string()).or_default().push(row);
                    }
                    for lrow in &left.rows {
                        if let Some(matches) = index.get(&lrow[li].to_string()) {
                            for rrow in matches {
                                let mut row = lrow.clone();
                                for &i in &kept_right {
                                    row.push(rrow[i].clone());
                                }
                                nt.rows.push(row);
                            }
                        }
                    }
                    table = Some(nt);
                }
                Stmt::Group { keys, aggs } => {
                    let t = table.as_ref().ok_or(IqlError::NoTableLoaded)?;
                    out.rows_scanned += t.rows.len();
                    let key_idxs: Vec<usize> = keys
                        .iter()
                        .map(|k| {
                            t.column_index(k)
                                .ok_or_else(|| IqlError::NoSuchColumn { column: k.clone() })
                        })
                        .collect::<Result<_, _>>()?;
                    // Group rows by rendered key tuple; BTreeMap over the
                    // tuple keeps output order deterministic.
                    let mut groups: BTreeMap<Vec<String>, Vec<&Vec<Value>>> = BTreeMap::new();
                    for row in &t.rows {
                        let key: Vec<String> =
                            key_idxs.iter().map(|&i| row[i].to_string()).collect();
                        groups.entry(key).or_default().push(row);
                    }
                    let mut cols = keys.clone();
                    for a in aggs {
                        cols.push(a.name.clone());
                    }
                    let mut nt = RowTable::new(&t.name, cols);
                    for rows in groups.values() {
                        let mut new_row: Vec<Value> =
                            key_idxs.iter().map(|&i| rows[0][i].clone()).collect();
                        for a in aggs {
                            new_row.push(eval_agg_expr(&a.expr, &t.cols, rows, &env)?);
                        }
                        nt.rows.push(new_row);
                    }
                    table = Some(nt);
                }
                Stmt::Agg(aggs) => {
                    let t = table.as_ref().ok_or(IqlError::NoTableLoaded)?;
                    out.rows_scanned += t.rows.len();
                    let rows: Vec<&Vec<Value>> = t.rows.iter().collect();
                    for a in aggs {
                        let v = eval_agg_expr(&a.expr, &t.cols, &rows, &env)?;
                        env.scalars.insert(a.name.clone(), v);
                    }
                }
                Stmt::Let(name, expr) => {
                    let v = eval_scalar_expr(expr, &env)?;
                    env.scalars.insert(name.clone(), v);
                }
                Stmt::Emit(names) => {
                    for n in names {
                        let v = env
                            .scalars
                            .get(n)
                            .cloned()
                            .ok_or_else(|| IqlError::NoSuchVariable { name: n.clone() })?;
                        out.emitted.push((n.clone(), v));
                    }
                }
            }
        }
        out.table = table.map(RowTable::into_table);
        Ok(out)
    }
}

fn eval_row_expr(
    expr: &Expr,
    cols: &[String],
    row: &[Value],
    env: &Env,
) -> Result<Value, IqlError> {
    match expr {
        Expr::Number(n) => Ok(Value::Float(*n)),
        Expr::Str(s) => Ok(Value::Str(s.as_str().into())),
        Expr::Ident(name) => {
            if let Some(i) = cols.iter().position(|c| c == name) {
                Ok(row[i].clone())
            } else if let Some(v) = env.scalars.get(name) {
                Ok(v.clone())
            } else {
                Err(IqlError::NoSuchColumn {
                    column: name.clone(),
                })
            }
        }
        Expr::Unary(op, inner) => {
            let v = eval_row_expr(inner, cols, row, env)?;
            match op {
                UnaryOp::Neg => Ok(Value::Float(-num(&v, "negation operand")?)),
                UnaryOp::Not => Ok(Value::Int(i64::from(!v.truthy()))),
            }
        }
        Expr::Binary(l, op, r) => {
            let lv = eval_row_expr(l, cols, row, env)?;
            let rv = eval_row_expr(r, cols, row, env)?;
            binary(*op, lv, rv)
        }
        Expr::Call(name, args) => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_row_expr(a, cols, row, env))
                .collect::<Result<_, _>>()?;
            scalar_call(name, &vals)
        }
    }
}

/// Evaluate an aggregate-context expression over a set of rows.
///
/// Aggregate function calls (`sum(expr)`, `count()`, …) reduce the rows;
/// everything around them is scalar arithmetic. `max`/`min` with one
/// argument aggregate; with two they are scalar.
fn eval_agg_expr(
    expr: &Expr,
    cols: &[String],
    rows: &[&Vec<Value>],
    env: &Env,
) -> Result<Value, IqlError> {
    match expr {
        Expr::Number(n) => Ok(Value::Float(*n)),
        Expr::Str(s) => Ok(Value::Str(s.as_str().into())),
        Expr::Ident(name) => {
            // In aggregate context a bare identifier means "this scalar",
            // or the column value of the first row (useful after GROUP for
            // key columns).
            if let Some(v) = env.scalars.get(name) {
                return Ok(v.clone());
            }
            if let Some(i) = cols.iter().position(|c| c == name) {
                return Ok(rows.first().map_or(Value::Null, |r| r[i].clone()));
            }
            Err(IqlError::NoSuchVariable { name: name.clone() })
        }
        Expr::Unary(op, inner) => {
            let v = eval_agg_expr(inner, cols, rows, env)?;
            match op {
                UnaryOp::Neg => Ok(Value::Float(-num(&v, "negation operand")?)),
                UnaryOp::Not => Ok(Value::Int(i64::from(!v.truthy()))),
            }
        }
        Expr::Binary(l, op, r) => {
            let lv = eval_agg_expr(l, cols, rows, env)?;
            let rv = eval_agg_expr(r, cols, rows, env)?;
            binary(*op, lv, rv)
        }
        Expr::Call(name, args) => {
            if !is_agg_call(name, args.len()) {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| eval_agg_expr(a, cols, rows, env))
                    .collect::<Result<_, _>>()?;
                return scalar_call(name, &vals);
            }
            match name.as_str() {
                "count" => Ok(Value::Int(rows.len() as i64)),
                "distinct" => {
                    let mut seen = std::collections::BTreeSet::new();
                    for row in rows {
                        let v = eval_row_expr(&args[0], cols, row, env)?;
                        seen.insert(v.to_string());
                    }
                    Ok(Value::Int(seen.len() as i64))
                }
                "pct" => {
                    let p = eval_scalar_or_number(&args[1], env)?;
                    let vals = collect_numeric(&args[0], cols, rows, env)?;
                    Ok(Value::Float(percentile(vals, p)))
                }
                _ => {
                    let vals = collect_numeric(&args[0], cols, rows, env)?;
                    Ok(Value::Float(numeric_agg(name, &vals)))
                }
            }
        }
    }
}

fn collect_numeric(
    expr: &Expr,
    cols: &[String],
    rows: &[&Vec<Value>],
    env: &Env,
) -> Result<Vec<f64>, IqlError> {
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let v = eval_row_expr(expr, cols, row, env)?;
        if let Some(f) = v.as_f64() {
            out.push(f);
        }
    }
    Ok(out)
}
