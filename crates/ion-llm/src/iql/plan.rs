//! IQL logical plan: the typed IR between the AST and the vectorized
//! executor, plus the optimizer passes and `EXPLAIN` rendering.
//!
//! Lowering is 1:1 — one [`PlanOp`] per statement, in program order. The
//! optimizer then applies three semantics-preserving rewrites:
//!
//! * **constant folding** — arithmetic over numeric literals collapses at
//!   plan time. Only float-typed arithmetic and float-returning scalar
//!   calls fold: comparisons and logic produce `Int` values, and folding
//!   them into `Number` literals (which evaluate to `Float`) would change
//!   the observable cell type.
//! * **predicate pushdown** — a `FILTER` bubbles up past `SORT` (always)
//!   and past a valid `SELECT` when every identifier it references is
//!   either kept by the projection or was never a column at all.
//! * **projection pushdown (pruning)** — a `SELECT` bubbles up past
//!   `LIMIT` (always), past `SORT` when the sort key is kept, and past
//!   `FILTER` under the same identifier condition, so downstream
//!   operators touch fewer columns.
//!
//! Every rewrite is checked against error semantics, not just `Ok`
//! results: an identifier that would have resolved to a column, a scalar,
//! or an error must resolve the same way after the rewrite. The one
//! transform that can change *which* error surfaces first — pushing a
//! filter past a sort reorders the rows the predicate visits — sets
//! [`Plan::reordered`], and the interpreter re-executes the unoptimized
//! plan on any error so the surfaced error is bit-identical to the legacy
//! tree-walker's.

use super::ast::{AggCall, BinaryOp, Expr, Program, Stmt, UnaryOp};
use super::value_ops::{arith_f64, scalar_call};
use extractor::{TableSet, Value};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One operator of the logical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Load an attached table as the working relation.
    Scan {
        /// Attached table name.
        table: String,
    },
    /// Keep rows whose predicate is truthy.
    Filter {
        /// Row predicate.
        pred: Expr,
        /// Set when the optimizer moved this filter earlier.
        pushed: bool,
    },
    /// Append a computed column.
    Derive {
        /// New column name.
        name: String,
        /// Row expression.
        expr: Expr,
    },
    /// Project to the named columns, in order.
    Project {
        /// Kept columns.
        columns: Vec<String>,
        /// Set when the optimizer moved this projection earlier.
        pushed: bool,
    },
    /// Stable sort by one column.
    Sort {
        /// Sort key column.
        column: String,
        /// Descending order when true.
        descending: bool,
    },
    /// Keep the first `n` rows.
    Limit(usize),
    /// Inner hash join with another attached table.
    Join {
        /// Right-side attached table.
        table: String,
        /// Join column (present on both sides).
        on: String,
    },
    /// Group-by aggregate producing a new relation.
    Group {
        /// Grouping key columns.
        keys: Vec<String>,
        /// Per-group aggregates.
        aggs: Vec<AggCall>,
    },
    /// Whole-relation aggregates into scalars.
    Agg(Vec<AggCall>),
    /// Scalar binding.
    Let {
        /// Variable name.
        name: String,
        /// Scalar expression.
        expr: Expr,
    },
    /// Declare program outputs.
    Emit(Vec<String>),
}

/// What the optimizer did to a plan (surfaced as `iql.plan.*` counters
/// and in `EXPLAIN` output).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Constant subexpressions folded.
    pub folded: usize,
    /// Filters moved earlier.
    pub filters_pushed: usize,
    /// Projections moved earlier.
    pub projections_pushed: usize,
    /// Columns dropped earlier than the program wrote them (summed over
    /// moved projections: input width minus projected width).
    pub cols_pruned: usize,
}

/// A lowered (and possibly optimized) IQL program.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Operators in execution order.
    pub ops: Vec<PlanOp>,
    /// Optimizer activity.
    pub stats: PlanStats,
    /// True when a rewrite changed the order rows are visited in by some
    /// fallible expression (filter pushed past sort). The interpreter
    /// falls back to the unoptimized plan on error so error output stays
    /// identical to the legacy engine.
    pub reordered: bool,
}

/// Lower a program into the 1:1 unoptimized plan.
#[must_use]
pub fn lower(program: &Program) -> Plan {
    let ops = program
        .statements
        .iter()
        .map(|stmt| match stmt {
            Stmt::Load(t) => PlanOp::Scan { table: t.clone() },
            Stmt::Filter(e) => PlanOp::Filter {
                pred: e.clone(),
                pushed: false,
            },
            Stmt::Derive(n, e) => PlanOp::Derive {
                name: n.clone(),
                expr: e.clone(),
            },
            Stmt::Select(cols) => PlanOp::Project {
                columns: cols.clone(),
                pushed: false,
            },
            Stmt::Sort { column, descending } => PlanOp::Sort {
                column: column.clone(),
                descending: *descending,
            },
            Stmt::Limit(n) => PlanOp::Limit(*n),
            Stmt::Join { table, on } => PlanOp::Join {
                table: table.clone(),
                on: on.clone(),
            },
            Stmt::Group { keys, aggs } => PlanOp::Group {
                keys: keys.clone(),
                aggs: aggs.clone(),
            },
            Stmt::Agg(aggs) => PlanOp::Agg(aggs.clone()),
            Stmt::Let(n, e) => PlanOp::Let {
                name: n.clone(),
                expr: e.clone(),
            },
            Stmt::Emit(names) => PlanOp::Emit(names.clone()),
        })
        .collect();
    Plan {
        ops,
        stats: PlanStats::default(),
        reordered: false,
    }
}

/// Run all optimizer passes.
#[must_use]
pub fn optimize(mut plan: Plan, tables: &TableSet) -> Plan {
    fold_constants(&mut plan);
    push_down_filters(&mut plan, tables);
    push_down_projections(&mut plan, tables);
    plan
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

fn fold_constants(plan: &mut Plan) {
    let mut folded = 0usize;
    for op in &mut plan.ops {
        match op {
            PlanOp::Filter { pred, .. } => fold_expr(pred, &mut folded),
            PlanOp::Derive { expr, .. } | PlanOp::Let { expr, .. } => fold_expr(expr, &mut folded),
            PlanOp::Group { aggs, .. } | PlanOp::Agg(aggs) => {
                for a in aggs {
                    fold_expr(&mut a.expr, &mut folded);
                }
            }
            _ => {}
        }
    }
    plan.stats.folded = folded;
}

/// Fold float-producing constant subexpressions in place. Legality: a
/// `Number` literal evaluates to `Value::Float`, so only rewrites whose
/// legacy result is *always* `Float` may become literals — arithmetic on
/// numbers (operands are `Float`, so the `Int`-preserving rule never
/// fires), negation, and the always-`Float` scalar calls. Comparison and
/// logic operators yield `Value::Int` and must not fold.
fn fold_expr(expr: &mut Expr, folded: &mut usize) {
    match expr {
        Expr::Number(_) | Expr::Str(_) | Expr::Ident(_) => {}
        Expr::Unary(op, inner) => {
            fold_expr(inner, folded);
            if *op == UnaryOp::Neg {
                if let Expr::Number(n) = **inner {
                    *expr = Expr::Number(-n);
                    *folded += 1;
                }
            }
        }
        Expr::Binary(l, op, r) => {
            fold_expr(l, folded);
            fold_expr(r, folded);
            if matches!(
                op,
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Rem
            ) {
                if let (Expr::Number(a), Expr::Number(b)) = (&**l, &**r) {
                    *expr = Expr::Number(arith_f64(*op, *a, *b));
                    *folded += 1;
                }
            }
        }
        Expr::Call(name, args) => {
            for a in args.iter_mut() {
                fold_expr(a, folded);
            }
            // Only calls that are scalar in *every* context (never
            // aggregates) and always return Float fold. `min`/`max` with
            // one argument aggregate over rows, so only arity 2 folds.
            let always_float_scalar = matches!(
                (name.as_str(), args.len()),
                ("abs" | "sqrt" | "floor" | "ceil" | "round", 1) | ("min" | "max", 2)
            );
            if always_float_scalar {
                let consts: Option<Vec<Value>> = args
                    .iter()
                    .map(|a| match a {
                        Expr::Number(n) => Some(Value::Float(*n)),
                        _ => None,
                    })
                    .collect();
                if let Some(consts) = consts {
                    // Numeric args can't fail these calls; keep the call
                    // on the (unreachable) error path anyway.
                    if let Ok(Value::Float(v)) = scalar_call(name, &consts) {
                        *expr = Expr::Number(v);
                        *folded += 1;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Schema tracking
// ---------------------------------------------------------------------------

/// Column schema at a plan point; `None` = unknown (unknown table, an
/// operator that will error, or no table loaded yet) — the optimizer
/// never rewrites across an unknown schema.
type Schema = Option<Vec<String>>;

/// Schema of the working relation *before* each op (index `i` = input of
/// `ops[i]`), plus one trailing entry for the final schema.
fn schemas(ops: &[PlanOp], tables: &TableSet) -> Vec<Schema> {
    let mut out = Vec::with_capacity(ops.len() + 1);
    let mut cur: Schema = None;
    for op in ops {
        out.push(cur.clone());
        cur = step_schema(cur, op, tables);
    }
    out.push(cur);
    out
}

fn step_schema(cur: Schema, op: &PlanOp, tables: &TableSet) -> Schema {
    match op {
        PlanOp::Scan { table } => tables
            .get(table)
            .map(|t| t.columns.iter().map(|c| c.name.clone()).collect()),
        PlanOp::Filter { .. } | PlanOp::Sort { .. } | PlanOp::Limit(_) => cur,
        PlanOp::Derive { name, .. } => {
            let mut s = cur?;
            if s.iter().any(|c| c == name) {
                return None; // duplicate column: legacy panics, do not optimize
            }
            s.push(name.clone());
            Some(s)
        }
        PlanOp::Project { columns, .. } => {
            let s = cur?;
            if columns.iter().all(|c| s.contains(c)) {
                Some(columns.clone())
            } else {
                None // projection will error at execution
            }
        }
        PlanOp::Join { table, on } => {
            let left = cur?;
            let right = tables.get(table)?;
            if !left.contains(on) || right.column_index(on).is_none() {
                return None;
            }
            let ri = right.column_index(on);
            let mut s = left.clone();
            for (i, c) in right.columns.iter().enumerate() {
                if Some(i) != ri && !left.contains(&c.name) {
                    s.push(c.name.clone());
                }
            }
            Some(s)
        }
        PlanOp::Group { keys, aggs } => {
            let s = cur?;
            if !keys.iter().all(|k| s.contains(k)) {
                return None;
            }
            let mut out: Vec<String> = keys.clone();
            out.extend(aggs.iter().map(|a| a.name.clone()));
            Some(out)
        }
        PlanOp::Agg(_) | PlanOp::Let { .. } | PlanOp::Emit(_) => cur,
    }
}

/// Collect every identifier referenced by an expression.
fn idents(expr: &Expr, out: &mut BTreeSet<String>) {
    match expr {
        Expr::Number(_) | Expr::Str(_) => {}
        Expr::Ident(name) => {
            out.insert(name.clone());
        }
        Expr::Unary(_, inner) => idents(inner, out),
        Expr::Binary(l, _, r) => {
            idents(l, out);
            idents(r, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                idents(a, out);
            }
        }
    }
}

/// Whether every identifier of `pred` resolves identically on both sides
/// of a projection to `kept`: it is either kept, or was never a column of
/// the wider schema (so it resolves as scalar-or-error either way).
fn idents_survive_projection(pred: &Expr, wide: &[String], kept: &[String]) -> bool {
    let mut names = BTreeSet::new();
    idents(pred, &mut names);
    names
        .iter()
        .all(|n| kept.contains(n) || !wide.iter().any(|c| c == n))
}

// ---------------------------------------------------------------------------
// Predicate pushdown
// ---------------------------------------------------------------------------

fn push_down_filters(plan: &mut Plan, tables: &TableSet) {
    loop {
        let pre = schemas(&plan.ops, tables);
        let mut moved = None;
        'scan: for i in 1..plan.ops.len() {
            if !matches!(plan.ops[i], PlanOp::Filter { .. }) {
                continue;
            }
            let PlanOp::Filter { pred, .. } = &plan.ops[i] else {
                unreachable!()
            };
            match &plan.ops[i - 1] {
                // Sorting preserves the row set, so filtering first keeps
                // the same rows — but the predicate now visits them in a
                // different order (reordered => error fallback).
                PlanOp::Sort { .. } => {
                    moved = Some((i, true));
                    break 'scan;
                }
                // A valid projection preserves rows and order; legality
                // is per-identifier (see idents_survive_projection).
                PlanOp::Project { columns, .. } => {
                    if let Some(wide) = &pre[i - 1] {
                        let valid = columns.iter().all(|c| wide.contains(c));
                        if valid && idents_survive_projection(pred, wide, columns) {
                            moved = Some((i, false));
                            break 'scan;
                        }
                    }
                }
                _ => {}
            }
        }
        let Some((i, reorders)) = moved else { break };
        plan.ops.swap(i - 1, i);
        if let PlanOp::Filter { pushed, .. } = &mut plan.ops[i - 1] {
            if !*pushed {
                plan.stats.filters_pushed += 1;
            }
            *pushed = true;
        }
        plan.reordered |= reorders;
    }
}

// ---------------------------------------------------------------------------
// Projection pushdown (pruning)
// ---------------------------------------------------------------------------

fn push_down_projections(plan: &mut Plan, tables: &TableSet) {
    let mut moved_any: BTreeSet<usize> = BTreeSet::new(); // positions after all moves
    loop {
        let pre = schemas(&plan.ops, tables);
        let mut moved = None;
        for (i, input) in pre.iter().enumerate().take(plan.ops.len()).skip(1) {
            let PlanOp::Project { columns, .. } = &plan.ops[i] else {
                continue;
            };
            // The projection itself must be valid where it stands, or the
            // eager NoSuchColumn error could fire in the wrong place.
            let Some(wide) = input else { continue };
            if !columns.iter().all(|c| wide.contains(c)) {
                continue;
            }
            let swap = match &plan.ops[i - 1] {
                PlanOp::Limit(_) => true,
                PlanOp::Sort { column, .. } => columns.contains(column),
                // Never undo predicate pushdown: a filter this pass's
                // predecessor already hoisted (`pushed`) stays upstream.
                PlanOp::Filter {
                    pred,
                    pushed: false,
                } => idents_survive_projection(pred, wide, columns),
                _ => false,
            };
            if swap {
                moved = Some(i);
                break;
            }
        }
        let Some(i) = moved else { break };
        plan.ops.swap(i - 1, i);
        let was_new = !moved_any.remove(&i);
        moved_any.insert(i - 1);
        if was_new {
            plan.stats.projections_pushed += 1;
        }
    }
    // Width saved: input width at the projection's final position minus
    // its output width, for every projection the pass actually moved.
    let pre = schemas(&plan.ops, tables);
    for &i in &moved_any {
        if let (PlanOp::Project { columns, pushed }, Some(wide)) = (&mut plan.ops[i], &pre[i]) {
            *pushed = true;
            plan.stats.cols_pruned += wide.len().saturating_sub(columns.len());
        }
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

impl PlanOp {
    /// Short operator mnemonic (used by the compact summary).
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            PlanOp::Scan { .. } => "scan",
            PlanOp::Filter { .. } => "filter",
            PlanOp::Derive { .. } => "derive",
            PlanOp::Project { .. } => "select",
            PlanOp::Sort { .. } => "sort",
            PlanOp::Limit(_) => "limit",
            PlanOp::Join { .. } => "join",
            PlanOp::Group { .. } => "group",
            PlanOp::Agg(_) => "agg",
            PlanOp::Let { .. } => "let",
            PlanOp::Emit(_) => "emit",
        }
    }

    fn render_line(&self) -> String {
        fn aggs(list: &[AggCall]) -> String {
            list.iter()
                .map(|a| format!("{} = {}", a.name, a.expr))
                .collect::<Vec<_>>()
                .join(", ")
        }
        match self {
            PlanOp::Scan { table } => format!("scan {table}"),
            PlanOp::Filter { pred, pushed } => {
                let tag = if *pushed { "  [pushed down]" } else { "" };
                format!("filter {pred}{tag}")
            }
            PlanOp::Derive { name, expr } => format!("derive {name} = {expr}"),
            PlanOp::Project { columns, pushed } => {
                let tag = if *pushed { "  [pushed down]" } else { "" };
                format!("select {}{tag}", columns.join(", "))
            }
            PlanOp::Sort { column, descending } => {
                format!("sort {column} {}", if *descending { "desc" } else { "asc" })
            }
            PlanOp::Limit(n) => format!("limit {n}"),
            PlanOp::Join { table, on } => format!("join {table} on {on}"),
            PlanOp::Group { keys, aggs: a } => {
                format!("group {} agg {}", keys.join(", "), aggs(a))
            }
            PlanOp::Agg(a) => format!("agg {}", aggs(a)),
            PlanOp::Let { name, expr } => format!("let {name} = {expr}"),
            PlanOp::Emit(names) => format!("emit {}", names.join(", ")),
        }
    }
}

impl Plan {
    /// Multi-line `EXPLAIN` rendering of the plan with per-op schemas
    /// (when resolvable against the attached tables) and optimizer
    /// statistics.
    #[must_use]
    pub fn render(&self, tables: &TableSet) -> String {
        let pre = schemas(&self.ops, tables);
        let mut out = String::from("plan:\n");
        for (i, op) in self.ops.iter().enumerate() {
            let line = op.render_line();
            let after = &pre[i + 1];
            match after {
                Some(cols)
                    if !matches!(op, PlanOp::Let { .. } | PlanOp::Emit(_) | PlanOp::Agg(_)) =>
                {
                    let _ = writeln!(out, "  {line:<44} cols=[{}]", cols.join(", "));
                }
                _ => {
                    let _ = writeln!(out, "  {line}");
                }
            }
        }
        let s = &self.stats;
        let _ = writeln!(
            out,
            "optimizer: {} constant(s) folded, {} filter(s) pushed down, \
             {} projection(s) pushed down, {} column(s) pruned early",
            s.folded, s.filters_pushed, s.projections_pushed, s.cols_pruned
        );
        out
    }

    /// One-line plan summary for tool-call transcripts:
    /// `scan DXT → filter → agg → emit  [1 filter pushed]`.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut parts: Vec<String> = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            match op {
                PlanOp::Scan { table } => parts.push(format!("scan {table}")),
                other => parts.push(other.mnemonic().to_owned()),
            }
        }
        let mut line = parts.join(" → ");
        let s = &self.stats;
        let mut notes = Vec::new();
        if s.folded > 0 {
            notes.push(format!("{} folded", s.folded));
        }
        if s.filters_pushed > 0 {
            notes.push(format!("{} filter pushed", s.filters_pushed));
        }
        if s.projections_pushed > 0 {
            notes.push(format!("{} select pushed", s.projections_pushed));
        }
        if s.cols_pruned > 0 {
            notes.push(format!("{} cols pruned", s.cols_pruned));
        }
        if !notes.is_empty() {
            let _ = write!(line, "  [{}]", notes.join(", "));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse_program;
    use super::*;
    use extractor::Table;

    fn tables() -> TableSet {
        let mut t = Table::new("DXT", &["rank", "op", "offset", "length"]);
        t.push_row(vec![
            Value::Int(0),
            Value::from("write"),
            Value::Int(0),
            Value::Int(100),
        ]);
        let mut set = TableSet::default();
        set.insert(t);
        set
    }

    fn planned(src: &str) -> Plan {
        optimize(lower(&parse_program(src).unwrap()), &tables())
    }

    fn mnemonics(plan: &Plan) -> Vec<&'static str> {
        plan.ops.iter().map(PlanOp::mnemonic).collect()
    }

    #[test]
    fn lowering_is_one_to_one() {
        let p =
            lower(&parse_program("LOAD DXT\nFILTER rank == 0\nAGG n = count()\nEMIT n\n").unwrap());
        assert_eq!(mnemonics(&p), vec!["scan", "filter", "agg", "emit"]);
        assert!(!p.reordered);
    }

    #[test]
    fn folds_float_arithmetic_but_not_comparisons() {
        let p =
            planned("LOAD DXT\nFILTER length < 4 * 1024 && rank == 0\nDERIVE x = length > 1 + 1\n");
        assert_eq!(p.stats.folded, 2);
        let PlanOp::Filter { pred, .. } = &p.ops[1] else {
            panic!("expected filter")
        };
        // 4 * 1024 folded to one literal; the comparison itself survives.
        assert!(pred.to_string().contains("4096"));
        assert!(pred.to_string().contains("&&"));
    }

    #[test]
    fn folds_scalar_calls_on_constants() {
        let p = planned("LOAD DXT\nLET x = max(2, 3) + floor(1.5)\n");
        let PlanOp::Let { expr, .. } = &p.ops[1] else {
            panic!("expected let")
        };
        assert_eq!(expr, &Expr::Number(4.0));
        assert_eq!(p.stats.folded, 3);
    }

    #[test]
    fn filter_pushes_past_sort_and_sets_reordered() {
        let p = planned("LOAD DXT\nSORT length DESC\nFILTER rank == 0\n");
        assert_eq!(mnemonics(&p), vec!["scan", "filter", "sort"]);
        assert_eq!(p.stats.filters_pushed, 1);
        assert!(p.reordered);
    }

    #[test]
    fn filter_pushes_past_select_only_when_idents_survive() {
        // rank is kept: push is legal.
        let p = planned("LOAD DXT\nSELECT rank, length\nFILTER rank == 0\n");
        assert_eq!(mnemonics(&p), vec!["scan", "filter", "select"]);
        assert!(!p.reordered);
        // op is dropped by the projection: in program order the filter
        // sees a NoSuchColumn error; pushing it would silently bind the
        // pre-projection column. Must not move.
        let p = planned("LOAD DXT\nSELECT rank, length\nFILTER op == 'write'\n");
        assert_eq!(mnemonics(&p), vec!["scan", "select", "filter"]);
    }

    #[test]
    fn select_pushes_past_limit_and_matching_sort() {
        let p = planned("LOAD DXT\nSORT length DESC\nLIMIT 5\nSELECT length\n");
        assert_eq!(mnemonics(&p), vec!["scan", "select", "sort", "limit"]);
        assert_eq!(p.stats.projections_pushed, 1);
        assert_eq!(p.stats.cols_pruned, 3);
        // Sort key not kept: projection must stay after the sort.
        let p = planned("LOAD DXT\nSORT offset ASC\nSELECT length\n");
        assert_eq!(mnemonics(&p), vec!["scan", "sort", "select"]);
    }

    #[test]
    fn no_rewrites_across_unknown_tables() {
        let p = planned("LOAD NOPE\nSORT length DESC\nFILTER rank == 0\n");
        // Filter past sort never needs a schema; but select legality does.
        assert_eq!(mnemonics(&p), vec!["scan", "filter", "sort"]);
        let p = planned("LOAD NOPE\nSELECT rank\nFILTER rank == 0\n");
        assert_eq!(mnemonics(&p), vec!["scan", "select", "filter"]);
    }

    #[test]
    fn explain_renders_schemas_and_stats() {
        let p = planned("LOAD DXT\nFILTER op == 'write'\nGROUP rank AGG n = count()\n");
        let text = p.render(&tables());
        assert!(text.contains("scan DXT"));
        assert!(text.contains("cols=[rank, op, offset, length]"));
        assert!(text.contains("group rank agg n = count()"));
        assert!(text.contains("cols=[rank, n]"));
        assert!(text.contains("optimizer:"));
        let line = p.summary();
        assert!(line.starts_with("scan DXT → filter → group"));
    }
}
