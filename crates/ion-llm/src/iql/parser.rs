//! IQL recursive-descent parser.

use super::ast::{AggCall, BinaryOp, Expr, Program, Stmt, UnaryOp};
use super::lexer::{tokenize, Token};
use super::IqlError;

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |(_, l)| *l)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> IqlError {
        IqlError::Parse {
            message: message.into(),
            line: self.line(),
        }
    }

    fn expect_ident(&mut self) -> Result<String, IqlError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<(), IqlError> {
        match self.next() {
            Some(t) if &t == tok => Ok(()),
            other => Err(self.err(format!("expected {tok:?}, found {other:?}"))),
        }
    }

    fn eat_newline(&mut self) -> Result<(), IqlError> {
        match self.next() {
            Some(Token::Newline) | None => Ok(()),
            other => Err(self.err(format!("expected end of statement, found {other:?}"))),
        }
    }

    fn at_newline(&self) -> bool {
        matches!(self.peek(), Some(Token::Newline) | None)
    }

    // Expression grammar (precedence climbing):
    // or → and (|| and)* ; and → cmp (&& cmp)* ; cmp → add ((==|!=|<|<=|>|>=) add)?
    // add → mul ((+|-) mul)* ; mul → unary ((*|/|%) unary)* ; unary → (-|!)* primary
    fn parse_expr(&mut self) -> Result<Expr, IqlError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, IqlError> {
        let mut left = self.parse_and()?;
        while self.peek() == Some(&Token::OrOr) {
            self.next();
            let right = self.parse_and()?;
            left = Expr::Binary(Box::new(left), BinaryOp::Or, Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, IqlError> {
        let mut left = self.parse_cmp()?;
        while self.peek() == Some(&Token::AndAnd) {
            self.next();
            let right = self.parse_cmp()?;
            left = Expr::Binary(Box::new(left), BinaryOp::And, Box::new(right));
        }
        Ok(left)
    }

    fn parse_cmp(&mut self) -> Result<Expr, IqlError> {
        let left = self.parse_add()?;
        let op = match self.peek() {
            Some(Token::EqEq) => Some(BinaryOp::Eq),
            Some(Token::NotEq) => Some(BinaryOp::Ne),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::Le) => Some(BinaryOp::Le),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::Ge) => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let right = self.parse_add()?;
            return Ok(Expr::Binary(Box::new(left), op, Box::new(right)));
        }
        Ok(left)
    }

    fn parse_add(&mut self) -> Result<Expr, IqlError> {
        let mut left = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.next();
            let right = self.parse_mul()?;
            left = Expr::Binary(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn parse_mul(&mut self) -> Result<Expr, IqlError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Percent) => BinaryOp::Rem,
                _ => break,
            };
            self.next();
            let right = self.parse_unary()?;
            left = Expr::Binary(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, IqlError> {
        match self.peek() {
            Some(Token::Minus) => {
                self.next();
                Ok(Expr::Unary(UnaryOp::Neg, Box::new(self.parse_unary()?)))
            }
            Some(Token::Bang) => {
                self.next();
                Ok(Expr::Unary(UnaryOp::Not, Box::new(self.parse_unary()?)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, IqlError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(Expr::Number(n)),
            Some(Token::Str(s)) => Ok(Expr::Str(s)),
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::LParen) {
                    self.next();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.peek() == Some(&Token::Comma) {
                                self.next();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            Some(Token::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    fn parse_agg_list(&mut self) -> Result<Vec<AggCall>, IqlError> {
        let mut aggs = Vec::new();
        loop {
            let name = self.expect_ident()?;
            self.expect(&Token::Assign)?;
            let expr = self.parse_expr()?;
            aggs.push(AggCall { name, expr });
            if self.peek() == Some(&Token::Comma) {
                self.next();
            } else {
                break;
            }
        }
        Ok(aggs)
    }

    fn parse_name_list(&mut self) -> Result<Vec<String>, IqlError> {
        let mut names = vec![self.expect_ident()?];
        while self.peek() == Some(&Token::Comma) {
            self.next();
            names.push(self.expect_ident()?);
        }
        Ok(names)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, IqlError> {
        let keyword = self.expect_ident()?;
        let stmt = match keyword.to_ascii_uppercase().as_str() {
            "LOAD" => Stmt::Load(self.expect_ident()?),
            "FILTER" => Stmt::Filter(self.parse_expr()?),
            "DERIVE" => {
                let name = self.expect_ident()?;
                self.expect(&Token::Assign)?;
                Stmt::Derive(name, self.parse_expr()?)
            }
            "SELECT" => Stmt::Select(self.parse_name_list()?),
            "SORT" => {
                let column = self.expect_ident()?;
                let descending = match self.peek() {
                    Some(Token::Ident(dir)) => {
                        let d = dir.to_ascii_uppercase();
                        if d == "DESC" {
                            self.next();
                            true
                        } else if d == "ASC" {
                            self.next();
                            false
                        } else {
                            return Err(self.err(format!("expected ASC or DESC, found {dir}")));
                        }
                    }
                    _ => false,
                };
                Stmt::Sort { column, descending }
            }
            "LIMIT" => match self.next() {
                Some(Token::Number(n)) if n >= 0.0 => Stmt::Limit(n as usize),
                other => return Err(self.err(format!("expected row count, found {other:?}"))),
            },
            "JOIN" => {
                let table = self.expect_ident()?;
                let on_kw = self.expect_ident()?;
                if !on_kw.eq_ignore_ascii_case("ON") {
                    return Err(self.err(format!("expected ON, found {on_kw}")));
                }
                let on = self.expect_ident()?;
                Stmt::Join { table, on }
            }
            "GROUP" => {
                let keys = self.parse_name_list_until_agg()?;
                Stmt::Group {
                    keys,
                    aggs: self.parse_agg_list()?,
                }
            }
            "AGG" => Stmt::Agg(self.parse_agg_list()?),
            "LET" => {
                let name = self.expect_ident()?;
                self.expect(&Token::Assign)?;
                Stmt::Let(name, self.parse_expr()?)
            }
            "EMIT" => Stmt::Emit(self.parse_name_list()?),
            other => return Err(self.err(format!("unknown statement {other}"))),
        };
        self.eat_newline()?;
        Ok(stmt)
    }

    /// Parse `a, b, c AGG` — names up to the AGG keyword.
    fn parse_name_list_until_agg(&mut self) -> Result<Vec<String>, IqlError> {
        let mut names = Vec::new();
        loop {
            let name = self.expect_ident()?;
            if name.eq_ignore_ascii_case("AGG") {
                if names.is_empty() {
                    return Err(self.err("GROUP requires at least one key column"));
                }
                return Ok(names);
            }
            names.push(name);
            if self.peek() == Some(&Token::Comma) {
                self.next();
            }
        }
    }
}

/// Parse a standalone IQL expression (used for rule conditions).
///
/// # Errors
///
/// Returns the first lexical or syntactic error.
pub fn parse_expression(src: &str) -> Result<Expr, IqlError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.parse_expr()?;
    p.eat_newline()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

/// Parse a complete IQL program.
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its line number.
pub fn parse_program(src: &str) -> Result<Program, IqlError> {
    ion_obs::counter("iql.queries_parsed", 1);
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut statements = Vec::new();
    let mut explain = false;
    // Optional leading EXPLAIN keyword before the first statement.
    while p.at_newline() && p.peek().is_some() {
        p.next();
    }
    if let Some(Token::Ident(kw)) = p.peek() {
        if kw.eq_ignore_ascii_case("EXPLAIN") {
            explain = true;
            p.next();
            if p.peek() == Some(&Token::Newline) {
                p.next();
            }
        }
    }
    while p.peek().is_some() {
        if p.at_newline() {
            p.next();
            continue;
        }
        statements.push(p.parse_stmt()?);
    }
    Ok(Program {
        statements,
        explain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_pipeline() {
        let src = "
LOAD POSIX
FILTER rank >= 0 && POSIX_WRITES > 0
DERIVE small = POSIX_SIZE_WRITE_0_100 + POSIX_SIZE_WRITE_100_1K
AGG total = sum(POSIX_WRITES), small_total = sum(small)
LET pct = 100 * small_total / max(total, 1)
EMIT pct, total
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.statements.len(), 6);
        assert_eq!(p.emitted_names(), vec!["pct", "total"]);
        assert_eq!(p.loaded_tables(), vec!["POSIX"]);
    }

    #[test]
    fn parses_group_by() {
        let p =
            parse_program("LOAD DXT\nGROUP rank AGG n = count(), bytes = sum(length)\n").unwrap();
        match &p.statements[1] {
            Stmt::Group { keys, aggs } => {
                assert_eq!(keys, &["rank"]);
                assert_eq!(aggs.len(), 2);
                assert_eq!(aggs[0].name, "n");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_multi_key_group() {
        let p = parse_program("LOAD DXT\nGROUP file_name, rank AGG n = count()\n").unwrap();
        match &p.statements[1] {
            Stmt::Group { keys, .. } => assert_eq!(keys, &["file_name", "rank"]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_sort_and_limit() {
        let p =
            parse_program("LOAD DXT\nSORT length DESC\nLIMIT 10\nSELECT rank, length\n").unwrap();
        assert!(matches!(
            p.statements[1],
            Stmt::Sort {
                descending: true,
                ..
            }
        ));
        assert!(matches!(p.statements[2], Stmt::Limit(10)));
    }

    #[test]
    fn precedence_mul_binds_tighter_than_cmp() {
        let p = parse_program("FILTER a + b * 2 > c\n").unwrap();
        match &p.statements[0] {
            Stmt::Filter(e) => assert_eq!(e.to_string(), "((a + (b * 2)) > c)"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn keywords_case_insensitive() {
        let p = parse_program("load POSIX\nfilter rank == 0\n").unwrap();
        assert_eq!(p.statements.len(), 2);
    }

    #[test]
    fn error_carries_line_number() {
        match parse_program("LOAD POSIX\nFILTER >\n") {
            Err(IqlError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_statement_rejected() {
        assert!(matches!(
            parse_program("FROBNICATE x\n"),
            Err(IqlError::Parse { .. })
        ));
    }

    #[test]
    fn group_without_keys_rejected() {
        assert!(parse_program("LOAD DXT\nGROUP AGG n = count()\n").is_err());
    }

    #[test]
    fn explain_prefix_sets_flag() {
        let p = parse_program("EXPLAIN\nLOAD DXT\nFILTER rank == 0\n").unwrap();
        assert!(p.explain);
        assert_eq!(p.statements.len(), 2);
        // Same line works too.
        let p = parse_program("explain LOAD DXT\n").unwrap();
        assert!(p.explain);
        assert_eq!(p.statements.len(), 1);
        // Plain programs stay unflagged; EXPLAIN is not a statement.
        let p = parse_program("LOAD DXT\n").unwrap();
        assert!(!p.explain);
        assert!(parse_program("LOAD DXT\nEXPLAIN x\n").is_err());
    }

    #[test]
    fn string_literals_in_filters() {
        let p = parse_program("LOAD DXT\nFILTER op == 'write'\n").unwrap();
        match &p.statements[1] {
            Stmt::Filter(Expr::Binary(_, BinaryOp::Eq, r)) => {
                assert_eq!(**r, Expr::Str("write".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
