//! Value-level IQL semantics shared by the vectorized executor and the
//! legacy tree-walking oracle.
//!
//! Everything observable about IQL arithmetic lives here: comparison
//! ordering, binary-operator coercions (including the `Int`-preserving
//! rule and division-by-zero → 0), scalar function calls, and scalar
//! expression evaluation. Both engines call these functions so they
//! cannot drift apart on value semantics; the differential test in
//! `tests/differential.rs` checks the rest.

use super::ast::{BinaryOp, Expr, UnaryOp};
use super::IqlError;
use extractor::Value;
use std::collections::BTreeMap;

/// Functions that aggregate rows when called (with aggregate arity)
/// inside an `AGG`/`GROUP … AGG` expression.
pub(crate) const AGG_FNS: [&str; 8] = [
    "sum", "count", "mean", "min", "max", "std", "distinct", "pct",
];

/// Whether `name(args)` is an aggregate call in aggregate context
/// (`min`/`max` with two args stay scalar).
pub(crate) fn is_agg_call(name: &str, argc: usize) -> bool {
    AGG_FNS.contains(&name)
        && matches!(
            (name, argc),
            ("count", 0) | ("sum" | "mean" | "min" | "max" | "std" | "distinct", 1) | ("pct", 2)
        )
}

/// Scalar environment: variables bound by `LET` and `AGG`.
#[derive(Debug, Default)]
pub(crate) struct Env {
    pub(crate) scalars: BTreeMap<String, Value>,
}

/// Total order used by `SORT` and the comparison operators: numeric when
/// both sides coerce to `f64`, else lexicographic on the rendered text.
pub(crate) fn compare_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
        _ => a.to_string().cmp(&b.to_string()),
    }
}

pub(crate) fn num(v: &Value, what: &str) -> Result<f64, IqlError> {
    v.as_f64().ok_or_else(|| IqlError::Type {
        message: format!("{what} is not numeric (got {v:?})"),
    })
}

pub(crate) fn binary(op: BinaryOp, l: Value, r: Value) -> Result<Value, IqlError> {
    use BinaryOp::*;
    Ok(match op {
        And => Value::Int(i64::from(l.truthy() && r.truthy())),
        Or => Value::Int(i64::from(l.truthy() || r.truthy())),
        Eq | Ne => {
            let equal = match (&l, &r) {
                (Value::Str(a), Value::Str(b)) => a == b,
                _ => match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => a == b,
                    _ => l.to_string() == r.to_string(),
                },
            };
            Value::Int(i64::from(if op == Eq { equal } else { !equal }))
        }
        Lt | Le | Gt | Ge => {
            let ord = compare_values(&l, &r);
            let res = match op {
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Value::Int(i64::from(res))
        }
        Add | Sub | Mul | Div | Rem => {
            let a = num(&l, "left operand")?;
            let b = num(&r, "right operand")?;
            let v = arith_f64(op, a, b);
            if v.fract() == 0.0
                && v.abs() < 9e15
                && matches!((l, r), (Value::Int(_), Value::Int(_)))
            {
                Value::Int(v as i64)
            } else {
                Value::Float(v)
            }
        }
    })
}

/// The `f64` arithmetic kernel behind [`binary`]; the vectorized executor
/// calls it directly on unboxed columns.
pub(crate) fn arith_f64(op: BinaryOp, a: f64, b: f64) -> f64 {
    match op {
        BinaryOp::Add => a + b,
        BinaryOp::Sub => a - b,
        BinaryOp::Mul => a * b,
        // Division by zero yields 0 rather than NaN: diagnosis ratios over
        // empty populations should read as "0%", not poison every
        // downstream conclusion.
        BinaryOp::Div => {
            if b == 0.0 {
                0.0
            } else {
                a / b
            }
        }
        BinaryOp::Rem => {
            if b == 0.0 {
                0.0
            } else {
                a % b
            }
        }
        _ => unreachable!("arith_f64 only handles arithmetic operators"),
    }
}

pub(crate) fn scalar_call(name: &str, args: &[Value]) -> Result<Value, IqlError> {
    let bad = |message: &str| IqlError::BadCall {
        name: name.to_owned(),
        message: message.to_owned(),
    };
    match (name, args.len()) {
        ("abs", 1) => Ok(Value::Float(num(&args[0], "abs arg")?.abs())),
        ("sqrt", 1) => Ok(Value::Float(num(&args[0], "sqrt arg")?.max(0.0).sqrt())),
        ("floor", 1) => Ok(Value::Float(num(&args[0], "floor arg")?.floor())),
        ("ceil", 1) => Ok(Value::Float(num(&args[0], "ceil arg")?.ceil())),
        ("round", 1) => Ok(Value::Float(num(&args[0], "round arg")?.round())),
        ("min", 2) => Ok(Value::Float(
            num(&args[0], "min arg")?.min(num(&args[1], "min arg")?),
        )),
        ("max", 2) => Ok(Value::Float(
            num(&args[0], "max arg")?.max(num(&args[1], "max arg")?),
        )),
        ("if", 3) => Ok(if args[0].truthy() {
            args[1].clone()
        } else {
            args[2].clone()
        }),
        ("contains", 2) => match (&args[0], &args[1]) {
            (Value::Str(h), Value::Str(n)) => Ok(Value::Int(i64::from(h.contains(&**n)))),
            _ => Err(bad("contains expects two strings")),
        },
        ("min" | "max", n) => Err(bad(&format!("expected 2 args, got {n}"))),
        _ => Err(bad("unknown function in this context")),
    }
}

pub(crate) fn eval_scalar_expr(expr: &Expr, env: &Env) -> Result<Value, IqlError> {
    match expr {
        Expr::Number(n) => Ok(Value::Float(*n)),
        Expr::Str(s) => Ok(Value::Str(s.as_str().into())),
        Expr::Ident(name) => env
            .scalars
            .get(name)
            .cloned()
            .ok_or_else(|| IqlError::NoSuchVariable { name: name.clone() }),
        Expr::Unary(op, inner) => {
            let v = eval_scalar_expr(inner, env)?;
            match op {
                UnaryOp::Neg => Ok(Value::Float(-num(&v, "negation operand")?)),
                UnaryOp::Not => Ok(Value::Int(i64::from(!v.truthy()))),
            }
        }
        Expr::Binary(l, op, r) => {
            let lv = eval_scalar_expr(l, env)?;
            let rv = eval_scalar_expr(r, env)?;
            binary(*op, lv, rv)
        }
        Expr::Call(name, args) => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_scalar_expr(a, env))
                .collect::<Result<_, _>>()?;
            scalar_call(name, &vals)
        }
    }
}

pub(crate) fn eval_scalar_or_number(expr: &Expr, env: &Env) -> Result<f64, IqlError> {
    num(&eval_scalar_expr(expr, env)?, "percentile rank")
}

/// Evaluate a standalone expression against a scalar environment (used by
/// the expert model for rule conditions).
///
/// # Errors
///
/// Returns [`IqlError::NoSuchVariable`] for unknown names or a type error.
pub fn eval_with_scalars(
    expr: &Expr,
    scalars: &BTreeMap<String, Value>,
) -> Result<Value, IqlError> {
    let env = Env {
        scalars: scalars.clone(),
    };
    eval_scalar_expr(expr, &env)
}

/// Nearest-rank percentile over an already-collected numeric population;
/// shared by both engines' `pct` aggregate.
pub(crate) fn percentile(mut vals: Vec<f64>, p: f64) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * vals.len() as f64).ceil().max(1.0) as usize;
    vals[rank.min(vals.len()) - 1]
}

/// Fold an already-collected numeric population with one of the numeric
/// aggregate functions (`sum`/`mean`/`min`/`max`/`std`); shared by both
/// engines so the floating-point evaluation order is identical.
pub(crate) fn numeric_agg(name: &str, vals: &[f64]) -> f64 {
    let n = vals.len();
    let v = match name {
        "sum" => vals.iter().sum::<f64>(),
        "mean" => {
            if n == 0 {
                0.0
            } else {
                vals.iter().sum::<f64>() / n as f64
            }
        }
        "min" => vals.iter().copied().fold(f64::INFINITY, f64::min),
        "max" => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        "std" => {
            if n == 0 {
                0.0
            } else {
                let m = vals.iter().sum::<f64>() / n as f64;
                (vals.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / n as f64).sqrt()
            }
        }
        _ => unreachable!("not a numeric aggregate: {name}"),
    };
    if n == 0 && (name == "min" || name == "max") {
        0.0
    } else {
        v
    }
}
