//! Vectorized columnar executor for IQL plans.
//!
//! The working relation is a set of [`ColRef`] column views: a shared
//! (`Arc`) [`ColumnData`] plus an optional selection vector mapping
//! logical row ordinals to physical rows. Filters, sorts, limits and
//! joins only rewrite selection vectors — column payloads are never
//! copied until the final table is materialized (and a dense full-length
//! view materializes by pointer clone).
//!
//! Semantics parity with the legacy tree-walker is load-bearing (the
//! differential suite compares bit-for-bit, errors included), so the
//! executor has two tiers per operator:
//!
//! * **fast kernels** that run only when static inspection proves the
//!   expression infallible over the column types present (numeric
//!   comparisons over non-null numeric columns, float arithmetic with a
//!   statically-`Float` result, direct column aggregates, …); and
//! * a **generic tier** that evaluates the expression row-at-a-time over
//!   the column views in exactly the legacy visit order, reproducing the
//!   legacy error (and error *position*) when there is one.
//!
//! Fast kernels never change observable values: they are used only where
//! the legacy result type is statically known (see `NumTy`), and they
//! evaluate through the same shared `value_ops` kernels.

use super::ast::{BinaryOp, Expr, UnaryOp};
use super::eval::RunOutput;
use super::plan::{Plan, PlanOp};
use super::value_ops::{
    arith_f64, binary, compare_values, eval_scalar_expr, eval_scalar_or_number, is_agg_call, num,
    numeric_agg, percentile, scalar_call, Env,
};
use super::IqlError;
use extractor::{ColumnData, Table, TableSet, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A column view: shared payload + optional row-selection vector.
#[derive(Clone)]
struct ColRef {
    data: Arc<ColumnData>,
    /// Logical ordinal -> physical row. `None` = dense identity (the
    /// view may still be shorter than the payload after `LIMIT`).
    sel: Option<Arc<Vec<u32>>>,
}

impl ColRef {
    fn dense(data: Arc<ColumnData>) -> Self {
        ColRef { data, sel: None }
    }

    #[inline]
    fn phys(&self, i: usize) -> usize {
        match &self.sel {
            Some(s) => s[i] as usize,
            None => i,
        }
    }

    #[inline]
    fn value(&self, i: usize) -> Value {
        self.data.value(self.phys(i))
    }

    #[inline]
    fn f64_at(&self, i: usize) -> Option<f64> {
        self.data.f64_at(self.phys(i))
    }

    /// Materialize the first `len` logical rows into owned column data —
    /// or share the payload pointer when the view is the identity.
    fn materialize(&self, len: usize) -> Arc<ColumnData> {
        match &self.sel {
            None if self.data.len() == len => Arc::clone(&self.data),
            None => {
                let idx: Vec<u32> = (0..len as u32).collect();
                Arc::new(self.data.gather(&idx))
            }
            Some(s) => Arc::new(self.data.gather(&s[..len])),
        }
    }
}

/// The working relation: named column views of equal logical length.
struct Relation {
    name: String,
    names: Vec<String>,
    cols: Vec<ColRef>,
    len: usize,
}

impl Relation {
    fn from_table(t: &Table) -> Self {
        Relation {
            name: t.name.clone(),
            names: t.columns.iter().map(|c| c.name.clone()).collect(),
            cols: (0..t.columns.len())
                .map(|i| ColRef::dense(t.column_arc(i).expect("column in range")))
                .collect(),
            len: t.len(),
        }
    }

    fn col_idx(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|c| c == name)
    }

    /// Restrict the relation to `kept` logical ordinals (in the given
    /// order, duplicates allowed). Composed selection vectors are shared
    /// across columns that shared one before.
    fn select_rows(&mut self, kept: Vec<u32>) {
        let kept = Arc::new(kept);
        let mut composed: Vec<(*const Vec<u32>, Arc<Vec<u32>>)> = Vec::new();
        for col in &mut self.cols {
            col.sel = match &col.sel {
                None => Some(Arc::clone(&kept)),
                Some(old) => {
                    let ptr = Arc::as_ptr(old);
                    if let Some((_, c)) = composed.iter().find(|(p, _)| *p == ptr) {
                        Some(Arc::clone(c))
                    } else {
                        let c: Arc<Vec<u32>> =
                            Arc::new(kept.iter().map(|&i| old[i as usize]).collect());
                        composed.push((ptr, Arc::clone(&c)));
                        Some(c)
                    }
                }
            };
        }
        self.len = kept.len();
    }

    fn materialize(&self) -> Table {
        Table::from_columns(
            &self.name,
            self.names
                .iter()
                .zip(&self.cols)
                .map(|(n, c)| (n.clone(), c.materialize(self.len)))
                .collect(),
        )
    }
}

/// Row set an aggregate reduces over: the whole relation or a subset.
#[derive(Clone, Copy)]
enum Rows<'a> {
    All(usize),
    Subset(&'a [u32]),
}

impl Rows<'_> {
    fn len(&self) -> usize {
        match self {
            Rows::All(n) => *n,
            Rows::Subset(s) => s.len(),
        }
    }

    fn first(&self) -> Option<usize> {
        match self {
            Rows::All(0) => None,
            Rows::All(_) => Some(0),
            Rows::Subset(s) => s.first().map(|&i| i as usize),
        }
    }

    fn iter(&self) -> Box<dyn Iterator<Item = usize> + '_> {
        match self {
            Rows::All(n) => Box::new(0..*n),
            Rows::Subset(s) => Box::new(s.iter().map(|&i| i as usize)),
        }
    }
}

/// Physical-effort counters surfaced as `iql.rows.scanned` /
/// `iql.rows.pruned`.
#[derive(Default)]
struct Effort {
    scanned: u64,
    pruned: u64,
}

/// Execute an (optimized or 1:1) plan against the attached tables.
pub(crate) fn execute(plan: &Plan, tables: &TableSet) -> Result<RunOutput, IqlError> {
    let mut rel: Option<Relation> = None;
    let mut env = Env::default();
    let mut out = RunOutput::default();
    let mut effort = Effort::default();
    let obs = ion_obs::enabled();
    let result = (|| {
        for op in &plan.ops {
            let _span = obs.then(|| ion_obs::span(format!("iql.op.{}", op.mnemonic())));
            apply(op, tables, &mut rel, &mut env, &mut out, &mut effort)?;
        }
        out.table = rel.as_ref().map(Relation::materialize);
        Ok(())
    })();
    if obs {
        ion_obs::counter("iql.rows.scanned", effort.scanned);
        ion_obs::counter("iql.rows.pruned", effort.pruned);
    }
    result.map(|()| out)
}

#[allow(clippy::too_many_lines)]
fn apply(
    op: &PlanOp,
    tables: &TableSet,
    rel: &mut Option<Relation>,
    env: &mut Env,
    out: &mut RunOutput,
    effort: &mut Effort,
) -> Result<(), IqlError> {
    match op {
        PlanOp::Scan { table } => {
            let t = tables.get(table).ok_or_else(|| IqlError::NoSuchTable {
                table: table.clone(),
            })?;
            out.rows_scanned += t.len();
            effort.scanned += t.len() as u64;
            *rel = Some(Relation::from_table(t));
        }
        PlanOp::Filter { pred, .. } => {
            let r = rel.as_mut().ok_or(IqlError::NoTableLoaded)?;
            out.rows_scanned += r.len;
            effort.scanned += r.len as u64;
            let kept: Vec<u32> = match fast_filter_mask(pred, r, env) {
                Some(mask) => mask
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &keep)| keep.then_some(i as u32))
                    .collect(),
                None => {
                    let mut kept = Vec::new();
                    for i in 0..r.len {
                        if eval_row(pred, r, i, env)?.truthy() {
                            kept.push(i as u32);
                        }
                    }
                    kept
                }
            };
            effort.pruned += (r.len - kept.len()) as u64;
            r.select_rows(kept);
        }
        PlanOp::Derive { name, expr } => {
            let r = rel.as_mut().ok_or(IqlError::NoTableLoaded)?;
            out.rows_scanned += r.len;
            effort.scanned += r.len as u64;
            // Same invariant (and panic) as the legacy Table::new call.
            assert!(
                !r.names.iter().any(|c| c == name),
                "duplicate column name {name}"
            );
            let data = match fast_derive(expr, r, env) {
                Some(data) => data,
                None => {
                    let mut c = ColumnData::empty();
                    for i in 0..r.len {
                        c.push(eval_row(expr, r, i, env)?);
                    }
                    c
                }
            };
            r.names.push(name.clone());
            r.cols.push(ColRef::dense(Arc::new(data)));
        }
        PlanOp::Project { columns, .. } => {
            let r = rel.as_mut().ok_or(IqlError::NoTableLoaded)?;
            let idxs: Vec<usize> = columns
                .iter()
                .map(|n| {
                    r.col_idx(n)
                        .ok_or_else(|| IqlError::NoSuchColumn { column: n.clone() })
                })
                .collect::<Result<_, _>>()?;
            // Same invariant (and panic) as the legacy Table::new call.
            let mut seen = std::collections::HashSet::new();
            for c in columns {
                assert!(seen.insert(c.as_str()), "duplicate column name {c}");
            }
            r.cols = idxs.iter().map(|&i| r.cols[i].clone()).collect();
            r.names = columns.clone();
        }
        PlanOp::Sort { column, descending } => {
            let r = rel.as_mut().ok_or(IqlError::NoTableLoaded)?;
            let idx = r.col_idx(column).ok_or_else(|| IqlError::NoSuchColumn {
                column: column.clone(),
            })?;
            let mut perm: Vec<u32> = (0..r.len as u32).collect();
            let col = &r.cols[idx];
            match sort_keys(col, r.len) {
                SortKeys::F64(keys) => perm.sort_by(|&a, &b| {
                    keys[a as usize]
                        .partial_cmp(&keys[b as usize])
                        .unwrap_or(std::cmp::Ordering::Equal)
                }),
                SortKeys::Str => match col.data.as_ref() {
                    ColumnData::Str { values, .. } => {
                        perm.sort_by(|&a, &b| {
                            values[col.phys(a as usize)].cmp(&values[col.phys(b as usize)])
                        });
                    }
                    ColumnData::Dict { codes, dict, .. } => {
                        // Compare through the dictionary — codes are
                        // first-occurrence ordinals, not sort order.
                        perm.sort_by(|&a, &b| {
                            dict[codes[col.phys(a as usize)] as usize]
                                .cmp(&dict[codes[col.phys(b as usize)] as usize])
                        });
                    }
                    _ => unreachable!(),
                },
                SortKeys::Generic => {
                    let keys: Vec<Value> = (0..r.len).map(|i| col.value(i)).collect();
                    perm.sort_by(|&a, &b| compare_values(&keys[a as usize], &keys[b as usize]));
                }
            }
            if *descending {
                perm.reverse();
            }
            r.select_rows(perm);
        }
        PlanOp::Limit(n) => {
            let r = rel.as_mut().ok_or(IqlError::NoTableLoaded)?;
            if *n < r.len {
                effort.pruned += (r.len - n) as u64;
                // Truncation needs no gather: views read only the first
                // `len` ordinals; materialize slices selection vectors.
                r.len = *n;
            }
        }
        PlanOp::Join {
            table: right_name,
            on,
        } => {
            let left = rel.as_mut().ok_or(IqlError::NoTableLoaded)?;
            let right = tables
                .get(right_name)
                .ok_or_else(|| IqlError::NoSuchTable {
                    table: right_name.clone(),
                })?;
            out.rows_scanned += left.len + right.len();
            effort.scanned += (left.len + right.len()) as u64;
            let li = left
                .col_idx(on)
                .ok_or_else(|| IqlError::NoSuchColumn { column: on.clone() })?;
            let ri = right
                .column_index(on)
                .ok_or_else(|| IqlError::NoSuchColumn { column: on.clone() })?;
            // Right-side columns that collide with left names are dropped
            // (left wins), including the join column itself.
            let kept_right: Vec<usize> = right
                .columns
                .iter()
                .enumerate()
                .filter(|(i, c)| *i != ri && !left.names.contains(&c.name))
                .map(|(i, _)| i)
                .collect();
            // Hash join on the stringified key (BTreeMap, as in legacy:
            // right rows stay in insertion order per key).
            let rkey_col = right.column(ri).expect("join column in range");
            let mut index: BTreeMap<String, Vec<u32>> = BTreeMap::new();
            for i in 0..right.len() {
                index
                    .entry(rkey_col.value(i).to_string())
                    .or_default()
                    .push(i as u32);
            }
            let lkey_col = &left.cols[li];
            let mut lkeep: Vec<u32> = Vec::new();
            let mut rkeep: Vec<u32> = Vec::new();
            for i in 0..left.len {
                if let Some(matches) = index.get(&lkey_col.value(i).to_string()) {
                    for &rrow in matches {
                        lkeep.push(i as u32);
                        rkeep.push(rrow);
                    }
                }
            }
            left.select_rows(lkeep);
            let rsel = Arc::new(rkeep);
            for &i in &kept_right {
                left.names.push(right.columns[i].name.clone());
                left.cols.push(ColRef {
                    data: right.column_arc(i).expect("column in range"),
                    sel: Some(Arc::clone(&rsel)),
                });
            }
        }
        PlanOp::Group { keys, aggs } => {
            let r = rel.as_mut().ok_or(IqlError::NoTableLoaded)?;
            out.rows_scanned += r.len;
            effort.scanned += r.len as u64;
            let key_idxs: Vec<usize> = keys
                .iter()
                .map(|k| {
                    r.col_idx(k)
                        .ok_or_else(|| IqlError::NoSuchColumn { column: k.clone() })
                })
                .collect::<Result<_, _>>()?;
            // Same invariant (and panic) as the legacy Table::new call.
            let mut seen = std::collections::HashSet::new();
            for c in keys
                .iter()
                .map(String::as_str)
                .chain(aggs.iter().map(|a| a.name.as_str()))
            {
                assert!(seen.insert(c), "duplicate column name {c}");
            }
            // Group ordinals by rendered key tuple; BTreeMap keeps output
            // order deterministic (and legacy-identical).
            let mut groups: BTreeMap<Vec<String>, Vec<u32>> = BTreeMap::new();
            for i in 0..r.len {
                let key: Vec<String> = key_idxs
                    .iter()
                    .map(|&k| r.cols[k].value(i).to_string())
                    .collect();
                groups.entry(key).or_default().push(i as u32);
            }
            let mut out_cols: Vec<ColumnData> = (0..keys.len() + aggs.len())
                .map(|_| ColumnData::empty())
                .collect();
            for ordinals in groups.values() {
                let first = ordinals[0] as usize;
                for (c, &k) in key_idxs.iter().enumerate() {
                    out_cols[c].push(r.cols[k].value(first));
                }
                for (a, agg) in aggs.iter().enumerate() {
                    let v = eval_agg(&agg.expr, r, Rows::Subset(ordinals), env)?;
                    out_cols[keys.len() + a].push(v);
                }
            }
            let names: Vec<String> = keys
                .iter()
                .cloned()
                .chain(aggs.iter().map(|a| a.name.clone()))
                .collect();
            let len = groups.len();
            *r = Relation {
                name: r.name.clone(),
                names,
                cols: out_cols
                    .into_iter()
                    .map(|c| ColRef::dense(Arc::new(c)))
                    .collect(),
                len,
            };
        }
        PlanOp::Agg(aggs) => {
            let r = rel.as_ref().ok_or(IqlError::NoTableLoaded)?;
            out.rows_scanned += r.len;
            effort.scanned += r.len as u64;
            for a in aggs {
                let v = eval_agg(&a.expr, r, Rows::All(r.len), env)?;
                env.scalars.insert(a.name.clone(), v);
            }
        }
        PlanOp::Let { name, expr } => {
            let v = eval_scalar_expr(expr, env)?;
            env.scalars.insert(name.clone(), v);
        }
        PlanOp::Emit(names) => {
            for n in names {
                let v = env
                    .scalars
                    .get(n)
                    .cloned()
                    .ok_or_else(|| IqlError::NoSuchVariable { name: n.clone() })?;
                out.emitted.push((n.clone(), v));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Generic row-at-a-time tier (legacy visit order, exact error parity)
// ---------------------------------------------------------------------------

fn eval_row(expr: &Expr, rel: &Relation, i: usize, env: &Env) -> Result<Value, IqlError> {
    match expr {
        Expr::Number(n) => Ok(Value::Float(*n)),
        Expr::Str(s) => Ok(Value::Str(s.as_str().into())),
        Expr::Ident(name) => {
            if let Some(c) = rel.col_idx(name) {
                Ok(rel.cols[c].value(i))
            } else if let Some(v) = env.scalars.get(name) {
                Ok(v.clone())
            } else {
                Err(IqlError::NoSuchColumn {
                    column: name.clone(),
                })
            }
        }
        Expr::Unary(op, inner) => {
            let v = eval_row(inner, rel, i, env)?;
            match op {
                UnaryOp::Neg => Ok(Value::Float(-num(&v, "negation operand")?)),
                UnaryOp::Not => Ok(Value::Int(i64::from(!v.truthy()))),
            }
        }
        Expr::Binary(l, op, r) => {
            let lv = eval_row(l, rel, i, env)?;
            let rv = eval_row(r, rel, i, env)?;
            binary(*op, lv, rv)
        }
        Expr::Call(name, args) => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_row(a, rel, i, env))
                .collect::<Result<_, _>>()?;
            scalar_call(name, &vals)
        }
    }
}

/// Aggregate-context evaluation (mirrors the legacy `eval_agg_expr`).
fn eval_agg(expr: &Expr, rel: &Relation, rows: Rows<'_>, env: &Env) -> Result<Value, IqlError> {
    match expr {
        Expr::Number(n) => Ok(Value::Float(*n)),
        Expr::Str(s) => Ok(Value::Str(s.as_str().into())),
        Expr::Ident(name) => {
            // In aggregate context a bare identifier means "this scalar",
            // or the column value of the first row (useful after GROUP for
            // key columns).
            if let Some(v) = env.scalars.get(name) {
                return Ok(v.clone());
            }
            if let Some(c) = rel.col_idx(name) {
                return Ok(rows.first().map_or(Value::Null, |i| rel.cols[c].value(i)));
            }
            Err(IqlError::NoSuchVariable { name: name.clone() })
        }
        Expr::Unary(op, inner) => {
            let v = eval_agg(inner, rel, rows, env)?;
            match op {
                UnaryOp::Neg => Ok(Value::Float(-num(&v, "negation operand")?)),
                UnaryOp::Not => Ok(Value::Int(i64::from(!v.truthy()))),
            }
        }
        Expr::Binary(l, op, r) => {
            let lv = eval_agg(l, rel, rows, env)?;
            let rv = eval_agg(r, rel, rows, env)?;
            binary(*op, lv, rv)
        }
        Expr::Call(name, args) => {
            if !is_agg_call(name, args.len()) {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| eval_agg(a, rel, rows, env))
                    .collect::<Result<_, _>>()?;
                return scalar_call(name, &vals);
            }
            match name.as_str() {
                "count" => Ok(Value::Int(rows.len() as i64)),
                "distinct" => {
                    let mut seen = std::collections::BTreeSet::new();
                    for i in rows.iter() {
                        let v = eval_row(&args[0], rel, i, env)?;
                        seen.insert(v.to_string());
                    }
                    Ok(Value::Int(seen.len() as i64))
                }
                "pct" => {
                    let p = eval_scalar_or_number(&args[1], env)?;
                    let vals = collect_numeric(&args[0], rel, rows, env)?;
                    Ok(Value::Float(percentile(vals, p)))
                }
                _ => {
                    let vals = collect_numeric(&args[0], rel, rows, env)?;
                    Ok(Value::Float(numeric_agg(name, &vals)))
                }
            }
        }
    }
}

/// Collect the numeric population of `expr` over `rows` (non-numeric
/// cells are skipped). Direct column references read unboxed `f64`s.
fn collect_numeric(
    expr: &Expr,
    rel: &Relation,
    rows: Rows<'_>,
    env: &Env,
) -> Result<Vec<f64>, IqlError> {
    // Fast path: a bare column reference (columns shadow scalars in row
    // context, so `Ident ∈ columns` is infallible).
    if let Expr::Ident(name) = expr {
        if let Some(c) = rel.col_idx(name) {
            let col = &rel.cols[c];
            // Run-expansion fast path: a dense full-length RLE view
            // expands sequentially in O(rows) instead of paying a
            // per-row binary search. Emission order is identical to the
            // per-row loop, so order-sensitive folds (sum/mean/std)
            // stay bit-identical.
            if col.sel.is_none() {
                if let Rows::All(n) = rows {
                    let expand = |ends: &[u64], get: &dyn Fn(usize) -> f64| -> Vec<f64> {
                        let mut out = Vec::with_capacity(n);
                        let mut start = 0usize;
                        for (run, &e) in ends.iter().enumerate() {
                            let end = (e as usize).min(n);
                            out.extend(std::iter::repeat_n(get(run), end.saturating_sub(start)));
                            start = end;
                            if start >= n {
                                break;
                            }
                        }
                        out
                    };
                    match col.data.as_ref() {
                        ColumnData::RleInt { values, ends } => {
                            return Ok(expand(ends, &|run| values[run] as f64));
                        }
                        ColumnData::RleFloat { values, ends } => {
                            return Ok(expand(ends, &|run| values[run]));
                        }
                        _ => {}
                    }
                }
            }
            let mut out = Vec::with_capacity(rows.len());
            for i in rows.iter() {
                if let Some(f) = col.f64_at(i) {
                    out.push(f);
                }
            }
            return Ok(out);
        }
    }
    let mut out = Vec::with_capacity(rows.len());
    for i in rows.iter() {
        let v = eval_row(expr, rel, i, env)?;
        if let Some(f) = v.as_f64() {
            out.push(f);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Fast kernels (statically-infallible expressions only)
// ---------------------------------------------------------------------------

/// Sort-key strategy for a column view.
enum SortKeys {
    /// Non-null numeric column: compare as `f64` (legacy `compare_values`
    /// coerces through `as_f64`, so `i64` keys must NOT compare as
    /// integers — the difference is observable above 2^53).
    F64(Vec<f64>),
    /// Non-null string column: legacy falls through to rendered-text
    /// comparison, which equals direct content comparison for `Str`.
    Str,
    /// Nullable or mixed: materialize values, use `compare_values`.
    Generic,
}

fn sort_keys(col: &ColRef, len: usize) -> SortKeys {
    match col.data.as_ref() {
        ColumnData::Int { .. }
        | ColumnData::Float { .. }
        | ColumnData::RleInt { .. }
        | ColumnData::RleFloat { .. }
            if col.data.null_count() == 0 =>
        {
            SortKeys::F64(
                (0..len)
                    .map(|i| col.f64_at(i).expect("non-null numeric"))
                    .collect(),
            )
        }
        ColumnData::Str { .. } | ColumnData::Dict { .. } if col.data.null_count() == 0 => {
            SortKeys::Str
        }
        _ => SortKeys::Generic,
    }
}

/// A compiled infallible numeric expression over the relation.
enum NumNode {
    Const(f64),
    Col(usize),
    Bin(BinaryOp, Box<NumNode>, Box<NumNode>),
    Neg(Box<NumNode>),
    Call1(fn(f64) -> f64, Box<NumNode>),
    Call2(fn(f64, f64) -> f64, Box<NumNode>, Box<NumNode>),
}

impl NumNode {
    fn eval(&self, rel: &Relation, i: usize) -> f64 {
        match self {
            NumNode::Const(v) => *v,
            NumNode::Col(c) => rel.cols[*c].f64_at(i).unwrap_or(0.0),
            NumNode::Bin(op, a, b) => arith_f64(*op, a.eval(rel, i), b.eval(rel, i)),
            NumNode::Neg(a) => -a.eval(rel, i),
            NumNode::Call1(f, a) => f(a.eval(rel, i)),
            NumNode::Call2(f, a, b) => f(a.eval(rel, i), b.eval(rel, i)),
        }
    }
}

/// Static result type of a compiled numeric expression: whether every
/// row's legacy value is `Value::Int`, always `Value::Float`, or varies
/// per row (`Int op Int` keeps `Int` only when the result is integral
/// and small — not statically known).
#[derive(Clone, Copy, PartialEq, Eq)]
enum NumTy {
    Int,
    Float,
    Varies,
}

/// Compile `expr` into an infallible unboxed-`f64` program, or `None`
/// when fallibility or value semantics can't be statically guaranteed.
fn compile_num(expr: &Expr, rel: &Relation, env: &Env) -> Option<(NumNode, NumTy)> {
    match expr {
        Expr::Number(n) => Some((NumNode::Const(*n), NumTy::Float)),
        Expr::Str(_) => None,
        Expr::Ident(name) => {
            if let Some(c) = rel.col_idx(name) {
                if rel.cols[c].data.null_count() > 0 {
                    return None;
                }
                match rel.cols[c].data.as_ref() {
                    ColumnData::Int { .. } | ColumnData::RleInt { .. } => {
                        Some((NumNode::Col(c), NumTy::Int))
                    }
                    ColumnData::Float { .. } | ColumnData::RleFloat { .. } => {
                        Some((NumNode::Col(c), NumTy::Float))
                    }
                    _ => None,
                }
            } else {
                match env.scalars.get(name)? {
                    Value::Int(v) => Some((NumNode::Const(*v as f64), NumTy::Int)),
                    Value::Float(v) => Some((NumNode::Const(*v), NumTy::Float)),
                    _ => None,
                }
            }
        }
        Expr::Unary(UnaryOp::Neg, inner) => {
            let (n, _) = compile_num(inner, rel, env)?;
            Some((NumNode::Neg(Box::new(n)), NumTy::Float))
        }
        Expr::Unary(UnaryOp::Not, _) => None,
        Expr::Binary(l, op, r) => {
            if !matches!(
                op,
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Rem
            ) {
                return None;
            }
            let (ln, lt) = compile_num(l, rel, env)?;
            let (rn, rt) = compile_num(r, rel, env)?;
            let ty = if lt == NumTy::Float || rt == NumTy::Float {
                // At least one operand is always Float: the Int-preserving
                // rule can never fire, result is always Float.
                NumTy::Float
            } else {
                NumTy::Varies
            };
            Some((NumNode::Bin(*op, Box::new(ln), Box::new(rn)), ty))
        }
        Expr::Call(name, args) => {
            let node = match (name.as_str(), args.len()) {
                ("abs", 1) => {
                    NumNode::Call1(f64::abs, Box::new(compile_num(&args[0], rel, env)?.0))
                }
                ("sqrt", 1) => NumNode::Call1(
                    |v| v.max(0.0).sqrt(),
                    Box::new(compile_num(&args[0], rel, env)?.0),
                ),
                ("floor", 1) => {
                    NumNode::Call1(f64::floor, Box::new(compile_num(&args[0], rel, env)?.0))
                }
                ("ceil", 1) => {
                    NumNode::Call1(f64::ceil, Box::new(compile_num(&args[0], rel, env)?.0))
                }
                ("round", 1) => {
                    NumNode::Call1(f64::round, Box::new(compile_num(&args[0], rel, env)?.0))
                }
                ("min", 2) => NumNode::Call2(
                    f64::min,
                    Box::new(compile_num(&args[0], rel, env)?.0),
                    Box::new(compile_num(&args[1], rel, env)?.0),
                ),
                ("max", 2) => NumNode::Call2(
                    f64::max,
                    Box::new(compile_num(&args[0], rel, env)?.0),
                    Box::new(compile_num(&args[1], rel, env)?.0),
                ),
                _ => return None,
            };
            Some((node, NumTy::Float))
        }
    }
}

/// Fast boolean mask for a predicate, or `None` when any subexpression
/// could error or needs per-row `Value` semantics we don't specialize.
fn fast_filter_mask(pred: &Expr, rel: &Relation, env: &Env) -> Option<Vec<bool>> {
    match pred {
        Expr::Binary(l, BinaryOp::And, r) => {
            let (a, b) = (
                fast_filter_mask(l, rel, env)?,
                fast_filter_mask(r, rel, env)?,
            );
            Some(a.iter().zip(&b).map(|(&x, &y)| x && y).collect())
        }
        Expr::Binary(l, BinaryOp::Or, r) => {
            let (a, b) = (
                fast_filter_mask(l, rel, env)?,
                fast_filter_mask(r, rel, env)?,
            );
            Some(a.iter().zip(&b).map(|(&x, &y)| x || y).collect())
        }
        Expr::Unary(UnaryOp::Not, inner) => {
            let mut m = fast_filter_mask(inner, rel, env)?;
            for b in &mut m {
                *b = !*b;
            }
            Some(m)
        }
        Expr::Binary(l, op, r)
            if matches!(
                op,
                BinaryOp::Eq
                    | BinaryOp::Ne
                    | BinaryOp::Lt
                    | BinaryOp::Le
                    | BinaryOp::Gt
                    | BinaryOp::Ge
            ) =>
        {
            cmp_mask(l, *op, r, rel, env)
        }
        Expr::Call(name, args) if name == "contains" && args.len() == 2 => {
            contains_mask(&args[0], &args[1], rel, env)
        }
        // Bare truthiness of a column, literal, or bound scalar.
        Expr::Number(n) => Some(vec![Value::Float(*n).truthy(); rel.len]),
        Expr::Str(s) => Some(vec![!s.is_empty(); rel.len]),
        Expr::Ident(name) => {
            if let Some(c) = rel.col_idx(name) {
                let col = &rel.cols[c];
                Some((0..rel.len).map(|i| col.value(i).truthy()).collect())
            } else {
                let v = env.scalars.get(name)?;
                Some(vec![v.truthy(); rel.len])
            }
        }
        _ => None,
    }
}

/// Comparison operand: a typed column or a constant value.
enum CmpSide {
    NumCol(usize),
    StrCol(usize),
    Num(NumNode),
    Const(Value),
}

fn cmp_side(e: &Expr, rel: &Relation, env: &Env) -> Option<CmpSide> {
    if let Expr::Ident(name) = e {
        if let Some(c) = rel.col_idx(name) {
            let data = rel.cols[c].data.as_ref();
            if data.null_count() > 0 {
                return None;
            }
            return match data {
                ColumnData::Int { .. }
                | ColumnData::Float { .. }
                | ColumnData::RleInt { .. }
                | ColumnData::RleFloat { .. } => Some(CmpSide::NumCol(c)),
                ColumnData::Str { .. } | ColumnData::Dict { .. } => Some(CmpSide::StrCol(c)),
                ColumnData::Mixed(_) => None,
            };
        }
        return env.scalars.get(name).cloned().map(CmpSide::Const);
    }
    match e {
        Expr::Number(n) => Some(CmpSide::Const(Value::Float(*n))),
        Expr::Str(s) => Some(CmpSide::Const(Value::Str(s.as_str().into()))),
        _ => compile_num(e, rel, env).map(|(n, _)| CmpSide::Num(n)),
    }
}

/// Legacy comparison result for two `f64`-coercible values.
#[inline]
fn cmp_f64(op: BinaryOp, x: f64, y: f64) -> bool {
    use std::cmp::Ordering;
    match op {
        BinaryOp::Eq => x == y,
        BinaryOp::Ne => x != y,
        _ => {
            let ord = x.partial_cmp(&y).unwrap_or(Ordering::Equal);
            match op {
                BinaryOp::Lt => ord == Ordering::Less,
                BinaryOp::Le => ord != Ordering::Greater,
                BinaryOp::Gt => ord == Ordering::Greater,
                BinaryOp::Ge => ord != Ordering::Less,
                _ => unreachable!(),
            }
        }
    }
}

/// Run-fill comparison: a dense full-view RLE column against a numeric
/// constant decides each *run* once and repeats the verdict, instead of
/// paying a per-row binary search. Bit-identical to the per-row path —
/// each row's verdict is exactly `cmp_f64` over the same operands.
fn rle_const_mask(
    col_side: &CmpSide,
    const_side: &CmpSide,
    op: BinaryOp,
    rel: &Relation,
    flipped: bool,
) -> Option<Vec<bool>> {
    let CmpSide::NumCol(c) = col_side else {
        return None;
    };
    let CmpSide::Const(v) = const_side else {
        return None;
    };
    let k = v.as_f64()?;
    let col = &rel.cols[*c];
    if col.sel.is_some() {
        return None;
    }
    let n = rel.len;
    let mut mask = Vec::with_capacity(n);
    let mut fill = |runs: &mut dyn Iterator<Item = (f64, u64)>| {
        let mut start = 0usize;
        for (v, e) in runs {
            let keep = if flipped {
                cmp_f64(op, k, v)
            } else {
                cmp_f64(op, v, k)
            };
            let end = (e as usize).min(n);
            mask.extend(std::iter::repeat_n(keep, end.saturating_sub(start)));
            start = end;
            if start >= n {
                break;
            }
        }
    };
    match col.data.as_ref() {
        ColumnData::RleInt { values, ends } => {
            fill(&mut values.iter().zip(ends).map(|(&v, &e)| (v as f64, e)));
        }
        ColumnData::RleFloat { values, ends } => {
            fill(&mut values.iter().zip(ends).map(|(&v, &e)| (v, e)));
        }
        _ => return None,
    }
    (mask.len() == n).then_some(mask)
}

fn cmp_mask(l: &Expr, op: BinaryOp, r: &Expr, rel: &Relation, env: &Env) -> Option<Vec<bool>> {
    let ls = cmp_side(l, rel, env)?;
    let rs = cmp_side(r, rel, env)?;
    let n = rel.len;
    if let Some(mask) =
        rle_const_mask(&ls, &rs, op, rel, false).or_else(|| rle_const_mask(&rs, &ls, op, rel, true))
    {
        return Some(mask);
    }
    // f64 view of a side, when it is numeric for every row.
    let num_at = |s: &CmpSide, i: usize| -> Option<f64> {
        match s {
            CmpSide::NumCol(c) => rel.cols[*c].f64_at(i),
            CmpSide::Num(node) => Some(node.eval(rel, i)),
            CmpSide::Const(v) => v.as_f64(),
            CmpSide::StrCol(_) => None,
        }
    };
    let numeric = |s: &CmpSide| {
        matches!(s, CmpSide::NumCol(_) | CmpSide::Num(_))
            || matches!(s, CmpSide::Const(v) if v.as_f64().is_some())
    };
    if numeric(&ls) && numeric(&rs) {
        return Some(
            (0..n)
                .map(|i| {
                    cmp_f64(
                        op,
                        num_at(&ls, i).expect("numeric side"),
                        num_at(&rs, i).expect("numeric side"),
                    )
                })
                .collect(),
        );
    }
    // String column vs string constant (either direction): legacy Eq/Ne
    // compares contents; the orderings fall through to rendered text,
    // which for two non-null strings is content comparison.
    let str_pair = match (&ls, &rs) {
        (CmpSide::StrCol(c), CmpSide::Const(Value::Str(s))) => Some((*c, s.clone(), false)),
        (CmpSide::Const(Value::Str(s)), CmpSide::StrCol(c)) => Some((*c, s.clone(), true)),
        _ => None,
    };
    if let Some((c, konst, flipped)) = str_pair {
        let verdict = |cell: &str| {
            let (x, y) = if flipped {
                (konst.as_ref(), cell)
            } else {
                (cell, konst.as_ref())
            };
            match op {
                BinaryOp::Eq => x == y,
                BinaryOp::Ne => x != y,
                BinaryOp::Lt => x < y,
                BinaryOp::Le => x <= y,
                BinaryOp::Gt => x > y,
                BinaryOp::Ge => x >= y,
                _ => unreachable!(),
            }
        };
        let col = &rel.cols[c];
        return Some(match col.data.as_ref() {
            ColumnData::Str { values, .. } => {
                (0..n).map(|i| verdict(&values[col.phys(i)])).collect()
            }
            ColumnData::Dict { codes, dict, .. } => {
                // Decide once per dictionary entry, then map codes.
                let per_entry: Vec<bool> = dict.iter().map(|d| verdict(d)).collect();
                (0..n)
                    .map(|i| per_entry[codes[col.phys(i)] as usize])
                    .collect()
            }
            _ => unreachable!(),
        });
    }
    // Constant-vs-constant: comparisons never error; evaluate once.
    if let (CmpSide::Const(a), CmpSide::Const(b)) = (&ls, &rs) {
        let v = binary(op, a.clone(), b.clone()).ok()?;
        return Some(vec![v.truthy(); n]);
    }
    None
}

fn contains_mask(hay: &Expr, needle: &Expr, rel: &Relation, env: &Env) -> Option<Vec<bool>> {
    let needle = match needle {
        Expr::Str(s) => Arc::<str>::from(s.as_str()),
        Expr::Ident(name) if rel.col_idx(name).is_none() => match env.scalars.get(name)? {
            Value::Str(s) => Arc::clone(s),
            _ => return None,
        },
        _ => return None,
    };
    let Expr::Ident(name) = hay else { return None };
    let c = rel.col_idx(name)?;
    let col = &rel.cols[c];
    if col.data.null_count() > 0 {
        return None;
    }
    match col.data.as_ref() {
        ColumnData::Str { values, .. } => Some(
            (0..rel.len)
                .map(|i| values[col.phys(i)].contains(needle.as_ref()))
                .collect(),
        ),
        ColumnData::Dict { codes, dict, .. } => {
            // One substring scan per distinct string, not per row.
            let per_entry: Vec<bool> = dict.iter().map(|d| d.contains(needle.as_ref())).collect();
            Some(
                (0..rel.len)
                    .map(|i| per_entry[codes[col.phys(i)] as usize])
                    .collect(),
            )
        }
        _ => None,
    }
}

/// Fast vectorized DERIVE: either a boolean-mask-shaped expression
/// (legacy yields `Int` 0/1) or a statically-`Float` numeric expression.
fn fast_derive(expr: &Expr, rel: &Relation, env: &Env) -> Option<ColumnData> {
    if let Some((node, NumTy::Float)) = compile_num(expr, rel, env) {
        let values: Vec<f64> = (0..rel.len).map(|i| node.eval(rel, i)).collect();
        return Some(ColumnData::Float {
            values,
            validity: None,
        });
    }
    // Mask-shaped: comparisons, logic, contains — all produce Int 0/1.
    if matches!(
        expr,
        Expr::Binary(
            _,
            BinaryOp::And
                | BinaryOp::Or
                | BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge,
            _
        ) | Expr::Unary(UnaryOp::Not, _)
            | Expr::Call(_, _)
    ) {
        let mask = fast_filter_mask(expr, rel, env)?;
        return Some(ColumnData::Int {
            values: mask.iter().map(|&b| i64::from(b)).collect(),
            validity: None,
        });
    }
    None
}
