//! IQL abstract syntax tree.

use std::fmt;

/// Binary operators, lowest precedence first in the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `||`
    Or,
    /// `&&`
    And,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Or => "||",
            BinaryOp::And => "&&",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// An IQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Str(String),
    /// Column or scalar-variable reference (resolved at evaluation time:
    /// columns shadow variables in row context).
    Ident(String),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(Box<Expr>, BinaryOp, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Number(n) => write!(f, "{n}"),
            Expr::Str(s) => write!(f, "{s:?}"),
            Expr::Ident(s) => f.write_str(s),
            Expr::Unary(op, e) => match op {
                UnaryOp::Neg => write!(f, "-({e})"),
                UnaryOp::Not => write!(f, "!({e})"),
            },
            Expr::Binary(l, op, r) => write!(f, "({l} {op} {r})"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// One named aggregate in an `AGG`/`GROUP … AGG` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// Output name.
    pub name: String,
    /// Aggregating expression (contains aggregate function calls).
    pub expr: Expr,
}

/// An IQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `LOAD <table>`
    Load(String),
    /// `FILTER <expr>`
    Filter(Expr),
    /// `DERIVE <name> = <expr>`
    Derive(String, Expr),
    /// `SELECT <col>, …`
    Select(Vec<String>),
    /// `SORT <col> [ASC|DESC]`
    Sort {
        /// Column to order by.
        column: String,
        /// Descending order when true.
        descending: bool,
    },
    /// `LIMIT <n>`
    Limit(usize),
    /// `JOIN <table> ON <column>` — inner hash join of the working table
    /// with another attached table on column equality. Right-side columns
    /// whose names already exist on the left are dropped (left wins).
    Join {
        /// Attached table to join with.
        table: String,
        /// Join column, present in both tables.
        on: String,
    },
    /// `GROUP <col>, … AGG <name> = <expr>, …`
    Group {
        /// Grouping key columns.
        keys: Vec<String>,
        /// Aggregates computed per group.
        aggs: Vec<AggCall>,
    },
    /// `AGG <name> = <expr>, …` — whole-table aggregates into scalars.
    Agg(Vec<AggCall>),
    /// `LET <name> = <expr>` — scalar computation.
    Let(String, Expr),
    /// `EMIT <name>, …` — declare outputs.
    Emit(Vec<String>),
}

/// A parsed IQL program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Statements in execution order.
    pub statements: Vec<Stmt>,
    /// `EXPLAIN` prefix present: render the optimized plan instead of
    /// (or alongside) executing the program.
    pub explain: bool,
}

impl Program {
    /// Names the program emits.
    #[must_use]
    pub fn emitted_names(&self) -> Vec<&str> {
        self.statements
            .iter()
            .filter_map(|s| match s {
                Stmt::Emit(names) => Some(names.iter().map(String::as_str)),
                _ => None,
            })
            .flatten()
            .collect()
    }

    /// Tables the program loads.
    #[must_use]
    pub fn loaded_tables(&self) -> Vec<&str> {
        self.statements
            .iter()
            .filter_map(|s| match s {
                Stmt::Load(t) => Some(t.as_str()),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_display_parenthesizes() {
        let e = Expr::Binary(
            Box::new(Expr::Ident("a".into())),
            BinaryOp::Add,
            Box::new(Expr::Binary(
                Box::new(Expr::Ident("b".into())),
                BinaryOp::Mul,
                Box::new(Expr::Number(2.0)),
            )),
        );
        assert_eq!(e.to_string(), "(a + (b * 2))");
    }

    #[test]
    fn program_introspection() {
        let p = Program {
            statements: vec![
                Stmt::Load("POSIX".into()),
                Stmt::Agg(vec![AggCall {
                    name: "n".into(),
                    expr: Expr::Call("count".into(), vec![]),
                }]),
                Stmt::Emit(vec!["n".into()]),
            ],
            ..Program::default()
        };
        assert_eq!(p.emitted_names(), vec!["n"]);
        assert_eq!(p.loaded_tables(), vec!["POSIX"]);
    }
}
