//! IQL — the I/O Query Language the simulated model writes analysis in.
//!
//! IQL is a small, line-oriented query language over the extractor's CSV
//! tables. A program is a pipeline of statements:
//!
//! ```text
//! LOAD POSIX
//! FILTER rank >= 0 && POSIX_WRITES > 0
//! DERIVE small = POSIX_SIZE_WRITE_0_100 + POSIX_SIZE_WRITE_100_1K
//! AGG total_writes = sum(POSIX_WRITES), small_writes = sum(small)
//! LET small_pct = 100 * small_writes / max(total_writes, 1)
//! EMIT small_pct
//! ```
//!
//! * `LOAD <table>` — start from one of the attached tables.
//! * `FILTER <expr>` — keep rows whose expression is truthy.
//! * `DERIVE <name> = <expr>` — append a computed column.
//! * `JOIN <table> ON <col>` — inner hash join with another attached
//!   table (left columns win on name collision).
//! * `GROUP <col>[, <col>…] AGG <name> = <agg>(…)` — group-by aggregate.
//! * `AGG <name> = <agg>(…)` — whole-table aggregates into scalars.
//! * `SORT <col> [ASC|DESC]`, `LIMIT <n>`, `SELECT <col>, …` — shaping.
//! * `LET <name> = <expr>` — scalar computation over previous scalars.
//! * `EMIT <name>[, <name>…]` — declare program outputs.
//!
//! Aggregate functions: `sum`, `count`, `mean`, `min`, `max`, `std`,
//! `distinct`, `pct(col, p)` (percentile). Scalar functions: `abs`, `min`,
//! `max`, `sqrt`, `if(cond, a, b)`.
//!
//! A program may start with `EXPLAIN`, which asks the engine to render
//! the optimized execution plan instead of running the pipeline.
//!
//! Execution is planned and vectorized: programs lower to a logical
//! [`Plan`] (`plan` module), the optimizer applies predicate pushdown,
//! projection pruning and constant folding, and a columnar executor runs
//! the result. The original tree-walking interpreter survives behind the
//! `legacy-eval` feature purely as the oracle for differential tests.

mod ast;
mod eval;
mod exec;
#[cfg(feature = "legacy-eval")]
pub mod legacy;
mod lexer;
mod parser;
mod plan;
mod value_ops;

pub use ast::{AggCall, BinaryOp, Expr, Program, Stmt, UnaryOp};
pub use eval::{Interpreter, RunOutput};
pub use lexer::{tokenize, Token};
pub use parser::{parse_expression, parse_program};
pub use plan::{lower, optimize, Plan, PlanOp, PlanStats};
pub use value_ops::eval_with_scalars;

use std::fmt;

/// Errors from parsing or evaluating IQL.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IqlError {
    /// Lexical error: unexpected character.
    BadChar {
        /// Offending character.
        ch: char,
        /// Line (1-based).
        line: usize,
    },
    /// Unterminated string literal.
    UnterminatedString {
        /// Line (1-based).
        line: usize,
    },
    /// Parse error with context.
    Parse {
        /// Human-readable message.
        message: String,
        /// Line (1-based).
        line: usize,
    },
    /// A statement referenced a table that is not attached.
    NoSuchTable {
        /// Requested table name.
        table: String,
    },
    /// An expression referenced an unknown column.
    NoSuchColumn {
        /// Requested column name.
        column: String,
    },
    /// An expression referenced an unknown scalar variable.
    NoSuchVariable {
        /// Requested variable name.
        name: String,
    },
    /// A function was called that does not exist or got the wrong arity.
    BadCall {
        /// Function name.
        name: String,
        /// Explanation.
        message: String,
    },
    /// A statement needed a working table but none was loaded.
    NoTableLoaded,
    /// Type error during evaluation.
    Type {
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for IqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IqlError::BadChar { ch, line } => {
                write!(f, "unexpected character {ch:?} on line {line}")
            }
            IqlError::UnterminatedString { line } => {
                write!(f, "unterminated string literal on line {line}")
            }
            IqlError::Parse { message, line } => write!(f, "parse error on line {line}: {message}"),
            IqlError::NoSuchTable { table } => write!(f, "no attached table named {table}"),
            IqlError::NoSuchColumn { column } => write!(f, "no column named {column}"),
            IqlError::NoSuchVariable { name } => write!(f, "no variable named {name}"),
            IqlError::BadCall { name, message } => write!(f, "bad call to {name}: {message}"),
            IqlError::NoTableLoaded => write!(f, "no table loaded; start the program with LOAD"),
            IqlError::Type { message } => write!(f, "type error: {message}"),
        }
    }
}

impl std::error::Error for IqlError {}
