//! Interactive follow-up interface over recorded analysis artifacts.
//!
//! After ION produces its diagnoses, the paper exposes a message window
//! where the user asks questions about any analysis, reasoning or result.
//! This module answers such questions deterministically by retrieval over
//! the artifacts each run recorded: computed metrics, reasoning steps,
//! generated code and conclusions.

use extractor::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything recorded about one per-issue analysis run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AnalysisRecord {
    /// Issue identifier (`small-io`, …).
    pub issue: String,
    /// Human title.
    pub title: String,
    /// Metrics computed during the run.
    pub metrics: BTreeMap<String, Value>,
    /// Chain-of-thought steps.
    pub steps: Vec<String>,
    /// Generated analysis code (IQL source blocks).
    pub code: Vec<String>,
    /// Findings (severity, text).
    pub findings: Vec<(String, String)>,
    /// Mitigation notes.
    pub mitigations: Vec<String>,
    /// Final conclusion paragraph.
    pub conclusion: String,
}

/// A question-answering session over a set of analysis records.
#[derive(Debug, Clone, Default)]
pub struct QaSession {
    records: Vec<AnalysisRecord>,
    summary: String,
    history: Vec<(String, String)>,
    /// Index of the record the conversation last focused on, so follow-ups
    /// like "why is that a problem?" resolve against it.
    focus: Option<usize>,
}

fn tokens(text: &str) -> Vec<String> {
    text.to_ascii_lowercase()
        .split(|c: char| !c.is_ascii_alphanumeric() && c != '_' && c != '-')
        .filter(|t| t.len() > 2)
        .map(ToOwned::to_owned)
        .collect()
}

impl QaSession {
    /// Create a session over records and a global summary.
    #[must_use]
    pub fn new(records: Vec<AnalysisRecord>, summary: String) -> Self {
        QaSession {
            records,
            summary,
            history: Vec::new(),
            focus: None,
        }
    }

    /// The Q&A exchanges so far.
    #[must_use]
    pub fn history(&self) -> &[(String, String)] {
        &self.history
    }

    fn score(record: &AnalysisRecord, question_tokens: &[String]) -> usize {
        let mut haystack = tokens(&record.issue);
        haystack.extend(tokens(&record.title));
        haystack.extend(tokens(&record.conclusion));
        for (_, f) in &record.findings {
            haystack.extend(tokens(f));
        }
        for m in record.metrics.keys() {
            haystack.extend(tokens(m));
        }
        question_tokens
            .iter()
            .filter(|t| haystack.iter().any(|h| h == *t))
            .count()
    }

    /// Whether a question reads like a follow-up on the previous topic
    /// rather than a fresh one.
    fn is_followup(q: &str) -> bool {
        [
            "it",
            "that",
            "this",
            "why",
            "how",
            "more",
            "elaborate",
            "detail",
        ]
        .iter()
        .any(|w| {
            q.split(|c: char| !c.is_ascii_alphanumeric())
                .any(|t| t == *w)
        })
    }

    /// Answer a question about the analyses. Never fails: follow-up
    /// questions ("why is that a problem?") resolve against the analysis
    /// the conversation last focused on, and anything unmatched falls back
    /// to the global summary.
    pub fn ask(&mut self, question: &str) -> String {
        let q = question.to_ascii_lowercase();
        let qtok = tokens(&q);
        let best = self
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| (Self::score(r, &qtok), i))
            .max_by_key(|(s, _)| *s);
        let answer = match best {
            Some((score, idx)) if score > 0 => {
                self.focus = Some(idx);
                self.answer_about(&self.records[idx], &q, &qtok)
            }
            _ => match self.focus.filter(|_| Self::is_followup(&q)) {
                // Carry-over: unmatched follow-up stays on the last topic.
                Some(idx) => self.answer_about(&self.records[idx], &q, &qtok),
                None => {
                    if q.contains("summary") || q.contains("overall") {
                        self.summary.clone()
                    } else {
                        format!(
                            "I could not match your question to a specific analysis. Here is the overall summary:\n{}",
                            self.summary
                        )
                    }
                }
            },
        };
        self.history.push((question.to_owned(), answer.clone()));
        answer
    }

    fn answer_about(&self, record: &AnalysisRecord, q: &str, qtok: &[String]) -> String {
        // Asking for the generated code?
        if q.contains("code") || q.contains("program") || q.contains("query") {
            return format!(
                "For the '{}' analysis I ran the following code:\n{}",
                record.title,
                record.code.join("\n---\n")
            );
        }
        // Asking how/why — return the reasoning steps.
        if q.contains("how") || q.contains("why") || q.contains("steps") || q.contains("reason") {
            let steps = record
                .steps
                .iter()
                .enumerate()
                .map(|(i, s)| format!("{}. {}", i + 1, s))
                .collect::<Vec<_>>()
                .join("\n");
            return format!(
                "Here is the reasoning behind the '{}' diagnosis:\n{steps}\nConclusion: {}",
                record.title, record.conclusion
            );
        }
        // Asking about a specific metric?
        let mentioned: Vec<(&String, &Value)> = record
            .metrics
            .iter()
            .filter(|(name, _)| {
                let ntok = tokens(name);
                ntok.iter().any(|t| qtok.contains(t)) || q.contains(&name.to_ascii_lowercase())
            })
            .collect();
        if !mentioned.is_empty() {
            let vals = mentioned
                .iter()
                .map(|(n, v)| format!("{n} = {v}"))
                .collect::<Vec<_>>()
                .join(", ");
            return format!(
                "In the '{}' analysis I measured {vals}. {}",
                record.title, record.conclusion
            );
        }
        // Default: conclusion plus findings.
        let mut out = format!("Regarding '{}': {}", record.title, record.conclusion);
        if !record.mitigations.is_empty() {
            out.push_str(&format!(
                " Mitigating factors: {}.",
                record.mitigations.join("; ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> QaSession {
        let mut metrics = BTreeMap::new();
        metrics.insert("small_pct".to_owned(), Value::Float(98.78));
        metrics.insert("total_ops".to_owned(), Value::Int(703_226));
        let small = AnalysisRecord {
            issue: "small-io".into(),
            title: "Small I/O operations".into(),
            metrics,
            steps: vec![
                "Considered: small requests underutilize RPCs".into(),
                "Ran analysis `op_stats`; observed small_pct = 98.78".into(),
            ],
            code: vec!["LOAD DXT\nAGG n = count()\nEMIT n".into()],
            findings: vec![("high".into(), "98.78% of operations are small".into())],
            mitigations: vec!["most small operations are consecutive".into()],
            conclusion: "The application issues mostly small operations.".into(),
        };
        let align = AnalysisRecord {
            issue: "misaligned-io".into(),
            title: "Misaligned file access".into(),
            metrics: BTreeMap::new(),
            steps: vec!["Checked alignment counters".into()],
            code: vec![],
            findings: vec![("high".into(), "100% of requests misaligned".into())],
            mitigations: vec![],
            conclusion: "File accesses are pervasively misaligned.".into(),
        };
        QaSession::new(vec![small, align], "SUMMARY: two issues found".into())
    }

    #[test]
    fn question_about_issue_returns_its_conclusion() {
        let mut s = session();
        let a = s.ask("what did you find about misaligned access?");
        assert!(a.contains("pervasively misaligned"));
    }

    #[test]
    fn question_about_metric_returns_value() {
        let mut s = session();
        let a = s.ask("what was the small_pct you measured?");
        assert!(a.contains("small_pct = 98.78"));
    }

    #[test]
    fn how_question_returns_steps() {
        let mut s = session();
        let a = s.ask("how did you conclude the small I/O issue?");
        assert!(a.contains("1. Considered"));
        assert!(a.contains("Conclusion:"));
    }

    #[test]
    fn code_question_returns_code() {
        let mut s = session();
        let a = s.ask("show me the code for the small io analysis");
        assert!(a.contains("LOAD DXT"));
    }

    #[test]
    fn unmatched_question_falls_back_to_summary() {
        let mut s = session();
        let a = s.ask("zzz qqq xyzzy?");
        assert!(a.contains("SUMMARY: two issues found"));
    }

    #[test]
    fn mitigations_mentioned_in_default_answer() {
        let mut s = session();
        let a = s.ask("tell me about the small operations issue");
        assert!(a.contains("consecutive"), "{a}");
    }

    #[test]
    fn followup_carries_over_last_topic() {
        let mut s = session();
        let first = s.ask("tell me about the misaligned access issue");
        assert!(first.contains("pervasively misaligned"));
        // No issue keywords at all — only deictic reference.
        let second = s.ask("and why is that happening?");
        assert!(
            second.contains("alignment counters") || second.contains("pervasively misaligned"),
            "{second}"
        );
    }

    #[test]
    fn non_followup_unmatched_still_falls_back() {
        let mut s = session();
        s.ask("tell me about the misaligned access issue");
        let a = s.ask("qqq zzz xyzzy");
        assert!(a.contains("SUMMARY"), "{a}");
    }

    #[test]
    fn history_records_exchanges() {
        let mut s = session();
        s.ask("anything?");
        s.ask("more?");
        assert_eq!(s.history().len(), 2);
        assert_eq!(s.history()[0].0, "anything?");
    }
}
