//! The deterministic in-context-learning expert model.
//!
//! [`DeterministicExpert`] implements [`LanguageModel`] with **no built-in
//! knowledge of any I/O issue**. Everything it does is derived from the
//! prompt at run time:
//!
//! 1. It extracts the issue context between `BEGIN ISSUE CONTEXT` /
//!    `END ISSUE CONTEXT` markers and parses the knowledge directives
//!    ([`crate::knowledge::parse_context`]).
//! 2. It executes the context's `COMPUTE` programs one per tool call,
//!    threading previously computed metrics and `PARAM` hyper-parameters
//!    into each program as `LET` preambles — the same way a code-running
//!    assistant carries results across cells.
//! 3. With all metrics in hand it evaluates the context's `CONCLUDE` /
//!    `MITIGATE` / `NOTE` rules, renders their templates with the actual
//!    numbers, and emits a structured chain-of-thought completion.
//!
//! Editing the context text therefore changes the diagnosis without
//! touching this file — the in-context-learning property the paper relies
//! on. A second mode (`MODE: summarize`) combines previously produced
//! per-issue conclusions into a global summary, mirroring ION's
//! summarization prompt.

use crate::api::{LanguageModel, Message, ModelAction, Role, Thread, ToolCall};
use crate::iql::{eval_with_scalars, parse_expression};
use crate::knowledge::{parse_context, render_template, ConcludeRule, IssueContextSpec, RuleKind};
use extractor::Value;
use std::collections::BTreeMap;

/// Marker opening the issue-context section of a prompt.
pub const CONTEXT_BEGIN: &str = "BEGIN ISSUE CONTEXT";
/// Marker closing the issue-context section of a prompt.
pub const CONTEXT_END: &str = "END ISSUE CONTEXT";
/// Marker selecting summarization mode.
pub const MODE_SUMMARIZE: &str = "MODE: summarize";

/// The deterministic expert model.
#[derive(Debug, Clone, Default)]
pub struct DeterministicExpert;

impl DeterministicExpert {
    /// Create the expert.
    #[must_use]
    pub fn new() -> Self {
        DeterministicExpert
    }
}

fn prompt_text(thread: &Thread) -> String {
    thread
        .messages
        .iter()
        .filter(|m| matches!(m.role, Role::System | Role::User))
        .map(|m| m.content.as_str())
        .collect::<Vec<_>>()
        .join("\n")
}

fn context_slice(prompt: &str) -> &str {
    match (prompt.find(CONTEXT_BEGIN), prompt.find(CONTEXT_END)) {
        (Some(b), Some(e)) if e > b => &prompt[b + CONTEXT_BEGIN.len()..e],
        _ => prompt,
    }
}

/// Parse `name = value` lines from interpreter output.
fn parse_metrics(output: &str) -> Vec<(String, Value)> {
    let mut out = Vec::new();
    for line in output.lines() {
        if let Some((name, value)) = line.split_once(" = ") {
            let name = name.trim();
            if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !name.is_empty() {
                out.push((name.to_owned(), Value::parse(value.trim())));
            }
        }
    }
    out
}

fn preamble(spec: &IssueContextSpec, metrics: &BTreeMap<String, Value>) -> String {
    let mut out = String::new();
    for (name, value) in &spec.params {
        out.push_str(&format!("LET {name} = {value}\n"));
    }
    for (name, value) in metrics {
        match value {
            Value::Int(i) => out.push_str(&format!("LET {name} = {i}\n")),
            Value::Float(f) if f.is_finite() => out.push_str(&format!("LET {name} = {f}\n")),
            Value::Str(s) if !s.contains('\'') && !s.contains('\n') => {
                out.push_str(&format!("LET {name} = '{s}'\n"));
            }
            _ => {}
        }
    }
    out
}

fn severity_rank(s: &str) -> u8 {
    match s {
        "high" => 3,
        "medium" => 2,
        "low" => 1,
        _ => 0,
    }
}

/// Evaluate a rule's condition against an environment of metrics and
/// parameters, exactly as the expert does when rendering its completion.
/// `None` means the condition failed to parse or evaluate (the expert
/// treats that as "does not fire").
///
/// Public so dependency-tracking layers can re-derive which rule
/// templates a completed run actually consulted: a template only
/// influences the output when its rule fired.
#[must_use]
pub fn rule_fires(rule: &ConcludeRule, metrics: &BTreeMap<String, Value>) -> Option<bool> {
    let expr = parse_expression(&rule.condition).ok()?;
    let v = eval_with_scalars(&expr, metrics).ok()?;
    Some(v.truthy())
}

/// Structured state the expert derives from a thread.
struct RunState {
    spec: IssueContextSpec,
    metrics: BTreeMap<String, Value>,
    completed_computes: usize,
    failed_computes: Vec<(String, String)>,
}

fn derive_state(thread: &Thread) -> RunState {
    let prompt = prompt_text(thread);
    let spec = parse_context(context_slice(&prompt)).unwrap_or_default();
    let mut metrics = BTreeMap::new();
    let mut completed = 0usize;
    let mut failed = Vec::new();
    for m in thread.messages.iter().filter(|m| m.role == Role::Tool) {
        let compute_name = spec
            .computes
            .get(completed)
            .map_or_else(|| format!("analysis_{completed}"), |c| c.name.clone());
        if m.content.starts_with("ERROR:") {
            failed.push((compute_name, m.content.clone()));
        } else {
            for (name, value) in parse_metrics(&m.content) {
                metrics.insert(name, value);
            }
        }
        completed += 1;
    }
    RunState {
        spec,
        metrics,
        completed_computes: completed,
        failed_computes: failed,
    }
}

fn render_final(state: &RunState) -> String {
    let RunState {
        spec,
        metrics,
        failed_computes,
        ..
    } = state;
    // Rule conditions and templates may reference computed metrics or
    // context PARAMs; metrics shadow params, and later PARAM lines override
    // earlier ones (so overrides appended by the prompt builder win).
    let mut env: BTreeMap<String, Value> = spec
        .params
        .iter()
        .map(|(n, v)| (n.clone(), Value::Float(*v)))
        .collect();
    env.extend(metrics.iter().map(|(n, v)| (n.clone(), v.clone())));
    let env = &env;
    let lookup = |name: &str| env.get(name).cloned();

    let mut findings: Vec<(String, String)> = Vec::new();
    let mut mitigations: Vec<String> = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    for rule in &spec.rules {
        let fired = rule_fires(rule, env).unwrap_or(false);
        if !fired {
            continue;
        }
        let text = render_template(&rule.template, lookup);
        match &rule.kind {
            RuleKind::Conclude { severity } => findings.push((severity.clone(), text)),
            RuleKind::Mitigate => mitigations.push(text),
            RuleKind::Note => notes.push(text),
        }
    }
    // A MITIGATE rule only fires when the underlying pattern exists, so a
    // mitigation without (or alongside) findings means "present but
    // defused" — the paper's IOR-Easy shared-file rows.
    let detected = !findings.is_empty() || !mitigations.is_empty();
    let severity = findings
        .iter()
        .max_by_key(|(s, _)| severity_rank(s))
        .map(|(s, _)| s.as_str())
        .unwrap_or(if mitigations.is_empty() {
            "none"
        } else {
            "low"
        })
        .to_owned();

    let mut out = String::new();
    out.push_str(&format!("ISSUE: {}\n", spec.issue));
    out.push_str(&format!("TITLE: {}\n", spec.title));
    out.push_str(&format!(
        "DETECTED: {}\n",
        if detected {
            if mitigations.is_empty() {
                "yes"
            } else {
                "mitigated"
            }
        } else {
            "no"
        }
    ));
    out.push_str(&format!("SEVERITY: {severity}\n"));

    out.push_str("STEPS:\n");
    let mut step = 1;
    for k in &spec.knowledge {
        out.push_str(&format!("{step}. Considered: {}\n", k.text));
        step += 1;
    }
    for c in &spec.computes {
        if let Some((_, err)) = failed_computes.iter().find(|(n, _)| n == &c.name) {
            out.push_str(&format!(
                "{step}. Ran analysis `{}` — it failed ({}); continued without it.\n",
                c.name,
                err.trim()
            ));
        } else {
            let emitted: Vec<String> = c
                .source
                .lines()
                .filter_map(|l| l.trim().strip_prefix("EMIT "))
                .flat_map(|names| names.split(','))
                .map(|n| n.trim().to_owned())
                .filter_map(|n| metrics.get(&n).map(|v| format!("{n} = {v}")))
                .collect();
            out.push_str(&format!(
                "{step}. Ran analysis `{}`; observed {}.\n",
                c.name,
                if emitted.is_empty() {
                    "no metrics".to_owned()
                } else {
                    emitted.join(", ")
                }
            ));
        }
        step += 1;
    }
    for rule in &spec.rules {
        let fired = rule_fires(rule, env).unwrap_or(false);
        out.push_str(&format!(
            "{step}. Checked `{}` → {}\n",
            rule.condition,
            if fired { "holds" } else { "does not hold" }
        ));
        step += 1;
    }

    out.push_str("CODE:\n");
    for c in &spec.computes {
        out.push_str(&format!("# {}\n{}\n", c.name, c.source.trim()));
    }

    out.push_str("FINDINGS:\n");
    if findings.is_empty() {
        out.push_str("- none\n");
    }
    for (sev, text) in &findings {
        out.push_str(&format!("- [{sev}] {text}\n"));
    }
    if !mitigations.is_empty() {
        out.push_str("MITIGATIONS:\n");
        for m in &mitigations {
            out.push_str(&format!("- {m}\n"));
        }
    }
    if !notes.is_empty() {
        out.push_str("NOTES:\n");
        for n in &notes {
            out.push_str(&format!("- {n}\n"));
        }
    }

    out.push_str("CONCLUSION: ");
    if findings.is_empty() && notes.is_empty() && mitigations.is_empty() {
        out.push_str(&format!(
            "No evidence of the '{}' issue was found in this trace.",
            if spec.title.is_empty() {
                &spec.issue
            } else {
                &spec.title
            }
        ));
    } else {
        let mut sentences: Vec<String> = findings.iter().map(|(_, t)| t.clone()).collect();
        sentences.extend(mitigations.iter().cloned());
        sentences.extend(notes.iter().cloned());
        out.push_str(&sentences.join(" "));
    }
    out.push('\n');
    out
}

fn render_summary(prompt: &str) -> String {
    // Collect per-issue conclusion lines and finding bullets from the
    // diagnoses embedded in the prompt.
    let mut high = Vec::new();
    let mut medium = Vec::new();
    let mut low = Vec::new();
    let mut mitigated = Vec::new();
    for line in prompt.lines() {
        let l = line.trim();
        if let Some(rest) = l.strip_prefix("- [high] ") {
            high.push(rest.to_owned());
        } else if let Some(rest) = l.strip_prefix("- [medium] ") {
            medium.push(rest.to_owned());
        } else if let Some(rest) = l.strip_prefix("- [low] ") {
            low.push(rest.to_owned());
        } else if l.starts_with("MITIGATIONS:") {
            // handled via the bullet below
        } else if let Some(rest) = l.strip_prefix("* mitigation: ") {
            mitigated.push(rest.to_owned());
        }
    }
    let mut out = String::new();
    out.push_str("GLOBAL DIAGNOSIS SUMMARY\n");
    if high.is_empty() && medium.is_empty() && low.is_empty() {
        out.push_str("No significant I/O performance issues were detected in this trace.\n");
    }
    if !high.is_empty() {
        out.push_str("Critical issues:\n");
        for h in &high {
            out.push_str(&format!("- {h}\n"));
        }
    }
    if !medium.is_empty() {
        out.push_str("Moderate issues:\n");
        for m in &medium {
            out.push_str(&format!("- {m}\n"));
        }
    }
    if !low.is_empty() {
        out.push_str("Minor observations:\n");
        for l in &low {
            out.push_str(&format!("- {l}\n"));
        }
    }
    if !mitigated.is_empty() {
        out.push_str("Mitigating factors:\n");
        for m in &mitigated {
            out.push_str(&format!("- {m}\n"));
        }
    }
    out
}

impl LanguageModel for DeterministicExpert {
    fn step(&self, thread: &Thread) -> ModelAction {
        let prompt = prompt_text(thread);
        if prompt.contains(MODE_SUMMARIZE) {
            return ModelAction::Final(render_summary(&prompt));
        }
        let state = derive_state(thread);
        if state.completed_computes < state.spec.computes.len() {
            let compute = &state.spec.computes[state.completed_computes];
            let program = format!(
                "{}{}",
                preamble(&state.spec, &state.metrics),
                compute.source
            );
            return ModelAction::Call(ToolCall {
                tool: "code_interpreter".into(),
                input: program,
            });
        }
        ModelAction::Final(render_final(&state))
    }

    fn model_id(&self) -> &str {
        "ion-deterministic-expert-v1"
    }
}

/// Convenience: run the expert on a prompt against tables, returning the
/// completion.
///
/// # Errors
///
/// Propagates runtime errors (budget exhaustion, unknown tools).
pub fn run_expert(
    prompt: &str,
    tables: &extractor::TableSet,
) -> Result<crate::api::Completion, crate::api::RuntimeError> {
    let model = DeterministicExpert::new();
    let runtime = crate::api::Runtime::new(&model, tables);
    runtime.run(Thread::new().with(Message::user(prompt)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractor::{Table, TableSet};

    fn tables() -> TableSet {
        let mut t = Table::new("DXT", &["rank", "op", "length", "offset"]);
        for i in 0..20i64 {
            t.push_row(vec![
                Value::Int(i % 4),
                Value::Str(if i % 2 == 0 { "write" } else { "read" }.into()),
                Value::Int(if i < 18 { 4096 } else { 8 << 20 }),
                Value::Int(i * 4096),
            ]);
        }
        let mut s = TableSet::default();
        s.insert(t);
        s
    }

    fn prompt(context: &str) -> String {
        format!(
            "You are an HPC I/O expert.\n{CONTEXT_BEGIN}\n{context}\n{CONTEXT_END}\nRespond in the structured format."
        )
    }

    const SMALL_IO: &str = r#"
ISSUE: small-io
TITLE: Small I/O operations
MODULES: DXT

Requests smaller than the RPC size underutilize round trips.

PARAM rpc_size = 4194304

COMPUTE op_stats:
  LOAD DXT
  DERIVE small = length < rpc_size
  AGG total_ops = count(), small_ops = sum(small)
  LET small_pct = 100 * small_ops / max(total_ops, 1)
  EMIT total_ops, small_ops, small_pct
END

CONCLUDE IF small_pct > 50 SEVERITY high: "{small_pct:.1}% of {total_ops:int} operations are smaller than the 4 MiB RPC size"
NOTE IF total_ops == 0: "no operations traced"
"#;

    #[test]
    fn expert_detects_small_io_from_context_alone() {
        let tables = tables();
        let completion = run_expert(&prompt(SMALL_IO), &tables).unwrap();
        assert!(completion.text.contains("ISSUE: small-io"));
        assert!(completion.text.contains("DETECTED: yes"));
        assert!(completion.text.contains("SEVERITY: high"));
        assert!(completion.text.contains("90.0% of 20 operations"));
        assert_eq!(completion.tool_outputs.len(), 1);
        assert!(completion.text.contains("STEPS:"));
        assert!(completion.text.contains("CODE:"));
    }

    #[test]
    fn editing_context_threshold_changes_diagnosis() {
        // The same trace, but the context now defines "small" against a
        // 1 KiB RPC size: nothing is small any more. No code changed.
        let edited = SMALL_IO.replace("PARAM rpc_size = 4194304", "PARAM rpc_size = 1024");
        let tables = tables();
        let completion = run_expert(&prompt(&edited), &tables).unwrap();
        assert!(completion.text.contains("DETECTED: no"));
        assert!(completion.text.contains("SEVERITY: none"));
    }

    #[test]
    fn mitigation_flips_detected_to_mitigated() {
        let ctx =
            format!("{SMALL_IO}\nMITIGATE IF small_pct > 50: \"operations are aggregatable\"\n");
        let tables = tables();
        let completion = run_expert(&prompt(&ctx), &tables).unwrap();
        assert!(completion.text.contains("DETECTED: mitigated"));
        assert!(completion.text.contains("MITIGATIONS:"));
        assert!(completion.text.contains("aggregatable"));
    }

    #[test]
    fn metrics_thread_across_computes() {
        let ctx = r#"
ISSUE: two-stage
TITLE: Two stage analysis
COMPUTE stage1:
  LOAD DXT
  AGG n = count()
  EMIT n
END
COMPUTE stage2:
  LOAD DXT
  FILTER length > 0
  AGG m = count()
  LET ratio = m / max(n, 1)
  EMIT ratio
END
CONCLUDE IF ratio >= 1 SEVERITY low: "ratio is {ratio}"
"#;
        let tables = tables();
        let completion = run_expert(&prompt(ctx), &tables).unwrap();
        assert_eq!(completion.tool_outputs.len(), 2);
        assert!(
            completion.text.contains("DETECTED: yes"),
            "{}",
            completion.text
        );
        assert!(completion.text.contains("ratio is 1"));
    }

    #[test]
    fn failed_compute_is_reported_and_run_continues() {
        let ctx = r#"
ISSUE: resilient
TITLE: Resilient run
COMPUTE broken:
  LOAD NO_SUCH_TABLE
END
COMPUTE works:
  LOAD DXT
  AGG n = count()
  EMIT n
END
CONCLUDE IF n > 0 SEVERITY low: "saw {n:int} ops"
"#;
        let tables = tables();
        let completion = run_expert(&prompt(ctx), &tables).unwrap();
        assert!(completion.text.contains("it failed"));
        assert!(completion.text.contains("saw 20 ops"));
    }

    #[test]
    fn no_detection_renders_clean_conclusion() {
        let ctx = r#"
ISSUE: ghost
TITLE: Ghost issue
COMPUTE c:
  LOAD DXT
  AGG n = count()
  EMIT n
END
CONCLUDE IF n > 1000000 SEVERITY high: "impossible"
"#;
        let tables = tables();
        let completion = run_expert(&prompt(ctx), &tables).unwrap();
        assert!(completion.text.contains("DETECTED: no"));
        assert!(completion
            .text
            .contains("No evidence of the 'Ghost issue' issue"));
    }

    #[test]
    fn summarize_mode_groups_by_severity() {
        let prompt = format!(
            "{MODE_SUMMARIZE}\nDiagnoses:\n- [high] pervasive misalignment\n- [low] some random reads\n* mitigation: ops are aggregatable\n"
        );
        let tables = TableSet::default();
        let completion = run_expert(&prompt, &tables).unwrap();
        assert!(completion.text.contains("Critical issues:"));
        assert!(completion.text.contains("pervasive misalignment"));
        assert!(completion.text.contains("Minor observations:"));
        assert!(completion.text.contains("Mitigating factors:"));
    }

    #[test]
    fn steps_enumerate_knowledge_and_rules() {
        let tables = tables();
        let completion = run_expert(&prompt(SMALL_IO), &tables).unwrap();
        assert!(completion
            .text
            .contains("Considered: Requests smaller than the RPC size"));
        assert!(completion.text.contains("Checked `small_pct > 50` → holds"));
    }
}
