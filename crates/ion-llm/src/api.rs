//! Assistants-style runtime: threads, messages, runs and tool calls.
//!
//! The OpenAI Assistants API that ION uses has one essential contract: a
//! *run* over a message thread repeatedly asks the model for its next
//! action — either a **tool call** (here: the IQL code interpreter) whose
//! output is appended to the thread, or the **final message**. This module
//! reproduces that loop with a pluggable [`LanguageModel`].

use crate::iql::{parse_program, Interpreter, IqlError};
use extractor::TableSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Who authored a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// System/context message.
    System,
    /// End-user (or pipeline) message.
    User,
    /// Model output.
    Assistant,
    /// Tool result fed back to the model.
    Tool,
}

/// One message in a thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Author role.
    pub role: Role,
    /// Text content.
    pub content: String,
}

impl Message {
    /// Construct a system message.
    #[must_use]
    pub fn system(content: impl Into<String>) -> Self {
        Message {
            role: Role::System,
            content: content.into(),
        }
    }

    /// Construct a user message.
    #[must_use]
    pub fn user(content: impl Into<String>) -> Self {
        Message {
            role: Role::User,
            content: content.into(),
        }
    }

    /// Construct an assistant message.
    #[must_use]
    pub fn assistant(content: impl Into<String>) -> Self {
        Message {
            role: Role::Assistant,
            content: content.into(),
        }
    }
}

/// A conversation thread with attached tables (the Assistants API's file
/// attachments).
#[derive(Debug, Clone, Default)]
pub struct Thread {
    /// Messages in order.
    pub messages: Vec<Message>,
}

impl Thread {
    /// Create an empty thread.
    #[must_use]
    pub fn new() -> Self {
        ion_obs::event!("llm.thread.created");
        Self::default()
    }

    /// Append a message, returning `self` for chaining.
    #[must_use]
    pub fn with(mut self, message: Message) -> Self {
        self.messages.push(message);
        self
    }

    /// Append a message in place.
    pub fn push(&mut self, message: Message) {
        self.messages.push(message);
    }
}

/// A tool invocation requested by the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToolCall {
    /// Tool name (currently only `code_interpreter`).
    pub tool: String,
    /// Tool input — for the code interpreter, IQL source.
    pub input: String,
}

/// A tool result returned to the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToolOutput {
    /// The call this answers.
    pub call: ToolCall,
    /// Rendered output (emitted scalars or error text).
    pub output: String,
    /// Whether the tool failed.
    pub is_error: bool,
    /// Rendered execution plan for code-interpreter calls (EXPLAIN view).
    ///
    /// Kept out of [`ToolOutput::output`] on purpose: the thread content
    /// is what the model parses for `name = value` result lines, and plan
    /// text would pollute it. Transcript renderers read this side-channel.
    pub plan: Option<String>,
}

/// The model's next step in a run.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelAction {
    /// Invoke a tool and resume with its output.
    Call(ToolCall),
    /// Finish the run with this assistant message.
    Final(String),
}

/// A language model that can drive a run.
///
/// Implementations must be deterministic functions of the thread content
/// for the reproduction's experiments to be repeatable; the trait itself
/// does not require it.
pub trait LanguageModel: Send + Sync {
    /// Decide the next action given the thread so far (tool outputs appear
    /// as [`Role::Tool`] messages).
    fn step(&self, thread: &Thread) -> ModelAction;

    /// Model identifier recorded in completions (e.g. a model name).
    fn model_id(&self) -> &str {
        "deterministic-expert-v1"
    }
}

/// The outcome of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Final assistant text.
    pub text: String,
    /// Every tool call made during the run, with outputs, in order.
    pub tool_outputs: Vec<ToolOutput>,
    /// Model identifier that produced the completion.
    pub model_id: String,
    /// Number of model steps taken (tool calls + final).
    pub steps: usize,
}

impl Completion {
    /// Render the full run as a human-readable transcript: each tool call
    /// with its program, optimized execution plan, and output, then the
    /// final assistant message.
    #[must_use]
    pub fn render_transcript(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, t) in self.tool_outputs.iter().enumerate() {
            let _ = writeln!(out, "── tool call {} ({})", i + 1, t.call.tool);
            for line in t.call.input.trim_end().lines() {
                let _ = writeln!(out, "  | {line}");
            }
            if let Some(plan) = &t.plan {
                let _ = writeln!(out, "  plan:");
                for line in plan.trim_end().lines() {
                    let _ = writeln!(out, "    {line}");
                }
            }
            let _ = writeln!(out, "  {}:", if t.is_error { "error" } else { "output" });
            for line in t.output.trim_end().lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
        let _ = writeln!(out, "── final ({} steps, {})", self.steps, self.model_id);
        out.push_str(self.text.trim_end());
        out.push('\n');
        out
    }
}

/// Errors from the runtime itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The model exceeded the tool-call budget without finishing.
    Budget {
        /// The configured budget.
        max_steps: usize,
    },
    /// The model requested a tool this runtime does not provide.
    UnknownTool {
        /// Requested tool name.
        tool: String,
    },
    /// The run was cancelled or deadlined between tool-call steps (see
    /// [`Runtime::with_interrupt`]).
    Interrupted(ion_exec::Interrupted),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Budget { max_steps } => {
                write!(f, "model did not finish within {max_steps} steps")
            }
            RuntimeError::UnknownTool { tool } => write!(f, "unknown tool {tool}"),
            RuntimeError::Interrupted(why) => write!(f, "run {why} between tool-call steps"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Executes runs: loops model actions, dispatching code-interpreter calls
/// against the attached tables.
pub struct Runtime<'a> {
    model: &'a dyn LanguageModel,
    tables: &'a TableSet,
    max_steps: usize,
    interrupt: ion_exec::Interrupt,
}

impl fmt::Debug for Runtime<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("model", &self.model.model_id())
            .field("max_steps", &self.max_steps)
            .finish()
    }
}

impl<'a> Runtime<'a> {
    /// Create a runtime over a model and attached tables.
    #[must_use]
    pub fn new(model: &'a dyn LanguageModel, tables: &'a TableSet) -> Self {
        Runtime {
            model,
            tables,
            max_steps: 64,
            interrupt: ion_exec::Interrupt::none(),
        }
    }

    /// Override the tool-call budget.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps.max(1);
        self
    }

    /// Stop the run cooperatively: the interrupt is polled before every
    /// model step, so a cancelled or deadlined run ends between tool-call
    /// steps (tool calls themselves are never killed mid-flight) with
    /// [`RuntimeError::Interrupted`].
    #[must_use]
    pub fn with_interrupt(mut self, interrupt: ion_exec::Interrupt) -> Self {
        self.interrupt = interrupt;
        self
    }

    /// Execute a run to completion.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Budget`] if the model never produces a final
    /// message, or [`RuntimeError::UnknownTool`] on an unsupported tool.
    pub fn run(&self, mut thread: Thread) -> Result<Completion, RuntimeError> {
        let mut run_span = ion_obs::span!("llm.run");
        run_span.attr("model", self.model.model_id());
        ion_obs::counter("llm.runs", 1);
        ion_obs::event!(
            "llm.run.started",
            model = self.model.model_id(),
            messages = thread.messages.len(),
        );
        // Token accounting (chars/4 heuristic, the usual ballpark for
        // English-plus-code): the model re-reads the whole thread each
        // step, so input tokens accumulate per step; output tokens are
        // what the model itself produced (tool-call programs + the final
        // message). Skipped entirely while the sink is off.
        let instrument = ion_obs::enabled();
        let mut tokens_in = 0u64;
        let mut tokens_out = 0u64;
        let mut thread_total = 0u64;
        let mut counted = 0usize;
        let mut tool_outputs = Vec::new();
        for step in 0..self.max_steps {
            if let Err(why) = self.interrupt.check() {
                ion_obs::event!(
                    "llm.run.failed",
                    reason = match why {
                        ion_exec::Interrupted::Cancelled => "cancelled",
                        ion_exec::Interrupted::Deadlined => "deadlined",
                    },
                    steps = step,
                );
                return Err(RuntimeError::Interrupted(why));
            }
            if instrument {
                // The thread is append-only: count only messages added
                // since the previous step, then charge the whole running
                // total once per step (the model re-reads everything).
                for msg in &thread.messages[counted..] {
                    thread_total += approx_tokens(&msg.content);
                }
                counted = thread.messages.len();
                tokens_in += thread_total;
            }
            match self.model.step(&thread) {
                ModelAction::Final(text) => {
                    run_span.attr("steps", step + 1);
                    if instrument {
                        tokens_out += approx_tokens(&text);
                        run_span.attr("tokens_in", tokens_in);
                        run_span.attr("tokens_out", tokens_out);
                        ion_obs::counter("llm.tokens.in", tokens_in);
                        ion_obs::counter("llm.tokens.out", tokens_out);
                    }
                    ion_obs::event!(
                        "llm.run.completed",
                        model = self.model.model_id(),
                        steps = step + 1,
                        tool_calls = tool_outputs.len(),
                        tokens_in = tokens_in,
                        tokens_out = tokens_out,
                    );
                    return Ok(Completion {
                        text,
                        tool_outputs,
                        model_id: self.model.model_id().to_owned(),
                        steps: step + 1,
                    });
                }
                ModelAction::Call(call) => {
                    if call.tool != "code_interpreter" {
                        ion_obs::event!("llm.run.failed", reason = "unknown tool");
                        return Err(RuntimeError::UnknownTool { tool: call.tool });
                    }
                    if instrument {
                        tokens_out += approx_tokens(&call.input);
                    }
                    ion_obs::counter("llm.tool_calls", 1);
                    let _tool_span = ion_obs::span!("llm.tool_call");
                    let output = execute_code(&call.input, self.tables);
                    let (text, plan, is_error) = match output {
                        Ok((t, plan)) => (t, plan, false),
                        Err(e) => (format!("ERROR: {e}"), None, true),
                    };
                    ion_obs::event!("llm.tool_call", tool = call.tool.as_str(), error = is_error,);
                    thread.push(Message {
                        role: Role::Tool,
                        content: text.clone(),
                    });
                    tool_outputs.push(ToolOutput {
                        call,
                        output: text,
                        is_error,
                        plan,
                    });
                }
            }
        }
        ion_obs::event!("llm.run.failed", reason = "step budget exceeded");
        Err(RuntimeError::Budget {
            max_steps: self.max_steps,
        })
    }
}

/// Rough token count for a piece of thread text (chars/4, rounded up).
fn approx_tokens(text: &str) -> u64 {
    (text.len() as u64).div_ceil(4)
}

/// Execute one IQL program against the tables, rendering emitted scalars
/// as `name = value` lines (what the model "sees" from the interpreter).
///
/// Returns the thread-visible text plus the rendered execution plan. An
/// `EXPLAIN`-prefixed program is planned but not executed: the thread
/// sees the one-line plan summary (safe against result-line parsing) and
/// the full rendering rides the [`ToolOutput::plan`] side-channel.
fn execute_code(src: &str, tables: &TableSet) -> Result<(String, Option<String>), IqlError> {
    let program = parse_program(src)?;
    let interp = Interpreter::new(tables);
    if program.explain {
        let plan = interp.plan(&program);
        ion_obs::event!(
            "iql.plan",
            summary = plan.summary().as_str(),
            explain = true,
        );
        return Ok((format!("{}\n", plan.summary()), Some(plan.render(tables))));
    }
    let (result, plan) = interp.run_with_plan(&program);
    ion_obs::event!(
        "iql.plan",
        summary = plan.summary().as_str(),
        explain = false,
    );
    let out = result?;
    let mut text = String::new();
    for (name, value) in &out.emitted {
        text.push_str(name);
        text.push_str(" = ");
        text.push_str(&value.to_string());
        text.push('\n');
    }
    if let Some(t) = &out.table {
        if out.emitted.is_empty() {
            // No scalars: show the (truncated) result table instead.
            text.push_str(&render_table_preview(t, 10));
        }
    }
    if text.is_empty() {
        text.push_str("(no output)\n");
    }
    Ok((text, Some(plan.render(tables))))
}

fn render_table_preview(t: &extractor::Table, max_rows: usize) -> String {
    let mut out = String::new();
    out.push_str(&t.column_names().join(","));
    out.push('\n');
    for row in t.iter_rows().take(max_rows) {
        let cells: Vec<String> = row.values().map(|v| v.to_string()).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    if t.len() > max_rows {
        out.push_str(&format!("... ({} more rows)\n", t.len() - max_rows));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractor::{Table, Value};

    struct ScriptedModel {
        program: String,
    }

    impl LanguageModel for ScriptedModel {
        fn step(&self, thread: &Thread) -> ModelAction {
            // Call the interpreter once, then summarize its output.
            let has_tool_result = thread.messages.iter().any(|m| m.role == Role::Tool);
            if has_tool_result {
                let result = thread
                    .messages
                    .iter()
                    .rev()
                    .find(|m| m.role == Role::Tool)
                    .unwrap();
                ModelAction::Final(format!("analysis complete: {}", result.content.trim()))
            } else {
                ModelAction::Call(ToolCall {
                    tool: "code_interpreter".into(),
                    input: self.program.clone(),
                })
            }
        }
    }

    fn tables() -> TableSet {
        let mut t = Table::new("DXT", &["rank", "length"]);
        t.push_row(vec![Value::Int(0), Value::Int(100)]);
        t.push_row(vec![Value::Int(1), Value::Int(300)]);
        let mut s = TableSet::default();
        s.insert(t);
        s
    }

    #[test]
    fn run_loops_tool_then_final() {
        let model = ScriptedModel {
            program: "LOAD DXT\nAGG total = sum(length)\nEMIT total\n".into(),
        };
        let tables = tables();
        let completion = Runtime::new(&model, &tables).run(Thread::new()).unwrap();
        assert_eq!(completion.steps, 2);
        assert_eq!(completion.tool_outputs.len(), 1);
        assert!(!completion.tool_outputs[0].is_error);
        assert!(completion.text.contains("total = 400"));
    }

    #[test]
    fn interpreter_errors_surface_as_tool_errors() {
        let model = ScriptedModel {
            program: "LOAD NOPE\n".into(),
        };
        let tables = tables();
        let completion = Runtime::new(&model, &tables).run(Thread::new()).unwrap();
        assert!(completion.tool_outputs[0].is_error);
        assert!(completion.tool_outputs[0]
            .output
            .contains("no attached table"));
    }

    #[test]
    fn budget_exceeded_is_error() {
        struct LoopForever;
        impl LanguageModel for LoopForever {
            fn step(&self, _thread: &Thread) -> ModelAction {
                ModelAction::Call(ToolCall {
                    tool: "code_interpreter".into(),
                    input: "LOAD DXT\n".into(),
                })
            }
        }
        let tables = tables();
        let err = Runtime::new(&LoopForever, &tables)
            .with_max_steps(3)
            .run(Thread::new())
            .unwrap_err();
        assert_eq!(err, RuntimeError::Budget { max_steps: 3 });
    }

    #[test]
    fn deadlined_run_stops_between_steps() {
        let model = ScriptedModel {
            program: "LOAD DXT\nAGG total = sum(length)\nEMIT total\n".into(),
        };
        let tables = tables();
        let expired = ion_exec::Interrupt::none()
            .with_deadline_at(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let err = Runtime::new(&model, &tables)
            .with_interrupt(expired)
            .run(Thread::new())
            .unwrap_err();
        assert_eq!(
            err,
            RuntimeError::Interrupted(ion_exec::Interrupted::Deadlined)
        );
        assert!(err.to_string().contains("deadlined between tool-call"));
    }

    #[test]
    fn cancelled_run_stops_between_steps() {
        let model = ScriptedModel {
            program: "LOAD DXT\nAGG total = sum(length)\nEMIT total\n".into(),
        };
        let tables = tables();
        let token = ion_exec::CancelToken::new();
        // An unfired token leaves the run untouched …
        let runtime = Runtime::new(&model, &tables)
            .with_interrupt(ion_exec::Interrupt::none().with_cancel(token.clone()));
        assert!(runtime.run(Thread::new()).is_ok());
        // … and a fired one stops it before the next model step.
        token.cancel();
        let err = runtime.run(Thread::new()).unwrap_err();
        assert_eq!(
            err,
            RuntimeError::Interrupted(ion_exec::Interrupted::Cancelled)
        );
    }

    #[test]
    fn unknown_tool_rejected() {
        struct BadTool;
        impl LanguageModel for BadTool {
            fn step(&self, _thread: &Thread) -> ModelAction {
                ModelAction::Call(ToolCall {
                    tool: "web_search".into(),
                    input: String::new(),
                })
            }
        }
        let tables = tables();
        let err = Runtime::new(&BadTool, &tables)
            .run(Thread::new())
            .unwrap_err();
        assert!(matches!(err, RuntimeError::UnknownTool { .. }));
    }

    #[test]
    fn table_preview_rendered_when_no_scalars() {
        let (out, plan) = execute_code("LOAD DXT\nSORT length DESC\n", &tables()).unwrap();
        assert!(out.starts_with("rank,length"));
        assert!(out.contains("1,300"));
        assert!(plan.unwrap().contains("scan DXT"));
    }

    #[test]
    fn explain_programs_plan_without_executing() {
        let (out, plan) = execute_code(
            "EXPLAIN\nLOAD DXT\nSORT length DESC\nFILTER rank == 0\n",
            &tables(),
        )
        .unwrap();
        let plan = plan.unwrap();
        // Thread text is the compact summary; the full rendering (with
        // schemas and optimizer stats) stays on the side-channel.
        assert!(out.contains("scan DXT"), "summary line: {out}");
        assert!(!out.contains("cols=["), "summary must stay compact: {out}");
        assert!(plan.contains("cols=["), "full plan: {plan}");
        assert!(plan.contains("optimizer:"), "full plan: {plan}");
    }

    #[test]
    fn transcript_includes_plan_but_thread_does_not() {
        let model = ScriptedModel {
            program: "LOAD DXT\nAGG total = sum(length)\nEMIT total\n".into(),
        };
        let tables = tables();
        let completion = Runtime::new(&model, &tables).run(Thread::new()).unwrap();
        let transcript = completion.render_transcript();
        assert!(transcript.contains("tool call 1"));
        assert!(transcript.contains("plan:"));
        assert!(transcript.contains("scan DXT"));
        assert!(transcript.contains("total = 400"));
        // The plan never leaks into the model-visible tool message.
        assert!(!completion.tool_outputs[0].output.contains("plan:"));
    }

    #[test]
    fn thread_builders() {
        let t = Thread::new()
            .with(Message::system("ctx"))
            .with(Message::user("question"));
        assert_eq!(t.messages.len(), 2);
        assert_eq!(t.messages[0].role, Role::System);
    }
}
