//! The ION Analyzer: parallel per-issue model runs plus summarization.

use crate::context::{builtin_contexts, IssueContext};
use crate::prompt::{build_issue_prompt, build_summary_prompt};
use crate::report::Diagnosis;
use extractor::TableSet;
use ion_llm::api::{Message, Runtime, Thread};
use ion_llm::{DeterministicExpert, LanguageModel};
use serde::{Deserialize, Serialize};

/// Per-trace system hyper-parameters (paper §3: "these metrics are specific
/// system settings such as lustre stripe size … currently implemented as
/// input hyper-parameters").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemParams {
    /// Lustre RPC size in bytes.
    pub rpc_size: u64,
    /// Lustre stripe size in bytes.
    pub stripe_size: u64,
    /// Number of MPI processes in the job.
    pub nprocs: u32,
    /// Job wall-clock runtime in seconds (bounds temporal analyses); a
    /// very large default means "unknown".
    pub runtime_seconds: f64,
}

impl Default for SystemParams {
    fn default() -> Self {
        SystemParams {
            rpc_size: 4 << 20,
            stripe_size: 1 << 20,
            nprocs: 1,
            runtime_seconds: 1e18,
        }
    }
}

impl SystemParams {
    /// Derive parameters from a Darshan log's job metadata, falling back to
    /// defaults for anything missing.
    #[must_use]
    pub fn from_log(log: &darshan::log::Log) -> Self {
        let mut p = SystemParams {
            nprocs: log.job.nprocs,
            ..SystemParams::default()
        };
        if log.job.run_time() > 0.0 {
            p.runtime_seconds = log.job.run_time();
        }
        for (k, v) in &log.job.metadata {
            match k.as_str() {
                "lustre_rpc_size" => {
                    if let Ok(n) = v.parse() {
                        p.rpc_size = n;
                    }
                }
                "lustre_stripe_size" => {
                    if let Ok(n) = v.parse() {
                        p.stripe_size = n;
                    }
                }
                _ => {}
            }
        }
        // Prefer the actual striping captured by the Lustre module.
        if let Some(rec) = log.lustre.first() {
            if rec.stripe_size() > 0 {
                p.stripe_size = rec.stripe_size() as u64;
            }
        }
        p
    }
}

/// The result of analyzing one trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalysisResult {
    /// Per-issue diagnoses, in context order.
    pub diagnoses: Vec<Diagnosis>,
    /// Global summary text.
    pub summary: String,
    /// Issues that were skipped because none of their modules were present.
    pub skipped: Vec<String>,
    /// Issues whose analysis did not complete (panicked, cancelled or
    /// deadlined). Each still has a failed-diagnosis entry in
    /// [`AnalysisResult::diagnoses`] — one bad issue degrades one
    /// diagnosis, never the whole report.
    pub failed: Vec<String>,
}

/// The Analyzer: holds the contexts and the model backend.
pub struct Analyzer<'m> {
    contexts: Vec<IssueContext>,
    model: &'m dyn LanguageModel,
    exec: ion_exec::Batch,
}

impl std::fmt::Debug for Analyzer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Analyzer")
            .field("contexts", &self.contexts.len())
            .field("model", &self.model.model_id())
            .field("exec", &self.exec)
            .finish()
    }
}

static DEFAULT_MODEL: DeterministicExpert = DeterministicExpert;

impl Default for Analyzer<'static> {
    fn default() -> Self {
        Analyzer::new()
    }
}

impl Analyzer<'static> {
    /// Analyzer with the built-in contexts and the deterministic expert.
    #[must_use]
    pub fn new() -> Self {
        Analyzer {
            contexts: builtin_contexts(),
            model: &DEFAULT_MODEL,
            exec: ion_exec::Batch::new(),
        }
    }
}

impl<'m> Analyzer<'m> {
    /// Analyzer with a custom model backend.
    #[must_use]
    pub fn with_model(model: &'m dyn LanguageModel) -> Self {
        Analyzer {
            contexts: builtin_contexts(),
            model,
            exec: ion_exec::Batch::new(),
        }
    }

    /// Replace the issue contexts (e.g. to add a site-specific issue).
    #[must_use]
    pub fn with_contexts(mut self, contexts: Vec<IssueContext>) -> Self {
        self.contexts = contexts;
        self
    }

    /// Replace the execution policy: worker width, per-batch deadline,
    /// cancellation token. Per-issue analyses run as one `ion-exec`
    /// batch under it.
    #[must_use]
    pub fn with_exec(mut self, exec: ion_exec::Batch) -> Self {
        self.exec = exec;
        self
    }

    /// Disable parallel dispatch (useful for deterministic profiling).
    #[must_use]
    pub fn sequential(mut self) -> Self {
        self.exec = self.exec.with_width(1);
        self
    }

    /// The configured contexts.
    #[must_use]
    pub fn contexts(&self) -> &[IssueContext] {
        &self.contexts
    }

    fn run_one(
        &self,
        context: &IssueContext,
        tables: &TableSet,
        params: &SystemParams,
        obs_parent: Option<ion_obs::SpanId>,
        interrupt: &ion_exec::Interrupt,
    ) -> Diagnosis {
        // Fault injection for integration tests: `ION_PANIC_ISSUE=<id>`
        // panics that one issue's analysis, exercising the pool's panic
        // isolation through the real pipeline.
        if std::env::var("ION_PANIC_ISSUE").as_deref() == Ok(context.id) {
            panic!("injected panic for issue {}", context.id);
        }
        let mut issue_span = ion_obs::span_under(obs_parent, "issue");
        issue_span.attr("issue", context.id);
        ion_obs::counter("ion.issue_analyses", 1);
        let prompt = build_issue_prompt(context, tables, params);
        let runtime = Runtime::new(self.model, tables).with_interrupt(interrupt.clone());
        match runtime.run(Thread::new().with(Message::user(prompt))) {
            Ok(completion) => {
                let mut d = Diagnosis::parse(&completion.text);
                // Fold the metrics observed in tool outputs into the
                // diagnosis so Q&A can answer "what did you measure".
                for out in &completion.tool_outputs {
                    if out.is_error {
                        continue;
                    }
                    for line in out.output.lines() {
                        if let Some((name, value)) = line.split_once(" = ") {
                            d.metrics.insert(
                                name.trim().to_owned(),
                                extractor::Value::parse(value.trim()),
                            );
                        }
                    }
                }
                if d.issue.is_empty() {
                    d.issue = context.id.to_owned();
                }
                d.context_revision = context.revision().hex();
                d
            }
            Err(e) => Diagnosis {
                issue: context.id.to_owned(),
                conclusion: format!("analysis failed: {e}"),
                context_revision: context.revision().hex(),
                ..Diagnosis::default()
            },
        }
    }

    /// Analyze a single issue context against `tables` — the unit of work
    /// the incremental store memoizes. The resulting diagnosis is a pure
    /// function of `(tables, context, params, model)` and carries the
    /// context revision that produced it.
    #[must_use]
    pub fn analyze_issue(
        &self,
        context: &IssueContext,
        tables: &TableSet,
        params: &SystemParams,
    ) -> Diagnosis {
        self.analyze_issue_interruptible(context, tables, params, &ion_exec::Interrupt::none())
    }

    /// [`Analyzer::analyze_issue`] with a cooperative interrupt threaded
    /// into the model run loop, for callers dispatching through their own
    /// `ion-exec` batch (the incremental store driver).
    #[must_use]
    pub fn analyze_issue_interruptible(
        &self,
        context: &IssueContext,
        tables: &TableSet,
        params: &SystemParams,
        interrupt: &ion_exec::Interrupt,
    ) -> Diagnosis {
        self.run_one(context, tables, params, ion_obs::current_span(), interrupt)
    }

    /// Run the summarization pass over per-issue diagnoses.
    #[must_use]
    pub fn summarize(&self, diagnoses: &[Diagnosis], tables: &TableSet) -> String {
        let _summarize_span = ion_obs::span!("summarize");
        let texts: Vec<String> = diagnoses.iter().map(|d| d.raw.clone()).collect();
        let summary_prompt = build_summary_prompt(&texts);
        let runtime = Runtime::new(self.model, tables);
        runtime
            .run(Thread::new().with(Message::user(summary_prompt)))
            .map(|c| c.text)
            .unwrap_or_else(|e| format!("summarization failed: {e}"))
    }

    /// Analyze a set of extracted tables.
    ///
    /// Prompts for all applicable issues are dispatched in parallel (the
    /// paper sends them "in parallel, to GPT-4 via the Assistants API");
    /// issues none of whose modules were recorded are skipped and listed in
    /// [`AnalysisResult::skipped`].
    #[must_use]
    pub fn analyze(&self, tables: &TableSet, params: &SystemParams) -> AnalysisResult {
        let (applicable, skipped) = applicable_contexts(&self.contexts, tables);

        let mut analyze_span = ion_obs::span!("analyze");
        analyze_span.attr("issues", applicable.len());
        analyze_span.attr("width", self.exec.effective_width(applicable.len()));
        // Workers run on other threads, so the per-issue spans parent to the
        // analyze span through an explicit hand-off.
        let analyze_id = analyze_span.id();
        // One shared-queue batch over the applicable issues: workers pull
        // the next issue the moment they finish one (no chunk barriers),
        // and a panicking analysis degrades to a failed diagnosis below
        // instead of aborting the whole report.
        let outcomes = self.exec.map_ordered(&applicable, |context, ctx| {
            self.run_one(context, tables, params, analyze_id, ctx.interrupt())
        });
        let mut failed = Vec::new();
        let diagnoses: Vec<Diagnosis> = outcomes
            .into_iter()
            .zip(&applicable)
            .map(|(outcome, context)| match outcome {
                ion_exec::TaskOutcome::Ok(d) => d,
                ion_exec::TaskOutcome::Panicked(msg) => {
                    failed.push(context.id.to_owned());
                    failed_diagnosis(context, &format!("analysis panicked: {msg}"))
                }
                ion_exec::TaskOutcome::Cancelled => {
                    failed.push(context.id.to_owned());
                    failed_diagnosis(context, "analysis cancelled before it started")
                }
                ion_exec::TaskOutcome::Deadlined => {
                    failed.push(context.id.to_owned());
                    failed_diagnosis(context, "analysis deadlined before it started")
                }
            })
            .collect();

        // Summarization pass over the per-issue completions.
        let summary = self.summarize(&diagnoses, tables);

        AnalysisResult {
            diagnoses,
            summary,
            skipped,
            failed,
        }
    }
}

/// The diagnosis recorded for an issue whose analysis did not complete:
/// detected-nothing, with the failure reason as conclusion and raw text so
/// rendered reports show what happened to the slot.
fn failed_diagnosis(context: &IssueContext, reason: &str) -> Diagnosis {
    Diagnosis {
        issue: context.id.to_owned(),
        conclusion: reason.to_owned(),
        raw: format!("ISSUE: {}\nANALYSIS FAILED: {reason}\n", context.id),
        context_revision: context.revision().hex(),
        ..Diagnosis::default()
    }
}

/// Partition `contexts` by ION's module mapping: those with at least one
/// recorded module are applicable; the rest are skipped (by id). Shared
/// between [`Analyzer::analyze`] and the incremental store driver so both
/// agree on what "applicable" means.
#[must_use]
pub fn applicable_contexts<'c>(
    contexts: &'c [IssueContext],
    tables: &TableSet,
) -> (Vec<&'c IssueContext>, Vec<String>) {
    let mut applicable = Vec::new();
    let mut skipped = Vec::new();
    for c in contexts {
        if c.modules().iter().any(|m| tables.get(m).is_some()) {
            applicable.push(c);
        } else {
            skipped.push(c.id.to_owned());
        }
    }
    (applicable, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractor::extract_tables;
    use iosim::{SimConfig, Simulation};

    fn small_io_log() -> darshan::log::Log {
        let mut sim = Simulation::new(SimConfig::default().with_ranks(4).with_exe("ior"));
        let f = sim.posix_open_all("/scratch/shared.dat").unwrap();
        for i in 0..32u64 {
            for rank in 0..4u32 {
                let base = u64::from(rank) * (1 << 20);
                sim.posix_write(rank, f, base + i * 2048, 2048).unwrap();
            }
        }
        sim.posix_close_all(f);
        sim.finish()
    }

    #[test]
    fn analyze_detects_small_io_and_interface_usage() {
        let log = small_io_log();
        let tables = extract_tables(&log);
        let params = SystemParams::from_log(&log);
        let result = Analyzer::new().analyze(&tables, &params);
        let small = result
            .diagnoses
            .iter()
            .find(|d| d.issue == "small-io")
            .expect("small-io analyzed");
        assert!(small.is_detected(), "{}", small.raw);
        // All writes are consecutive per rank → mitigation should fire.
        assert!(!small.mitigations.is_empty(), "{}", small.raw);
        let iface = result
            .diagnoses
            .iter()
            .find(|d| d.issue == "interface-usage")
            .expect("interface-usage analyzed");
        assert!(iface.is_detected(), "{}", iface.raw);
        assert!(
            iface.raw.contains("not employing MPI-IO") || iface.raw.contains("only using POSIX")
        );
    }

    #[test]
    fn collective_issue_skipped_without_mpiio() {
        let log = small_io_log();
        let tables = extract_tables(&log);
        let result = Analyzer::new().analyze(&tables, &SystemParams::from_log(&log));
        assert!(result.skipped.contains(&"collective-io".to_owned()));
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let log = small_io_log();
        let tables = extract_tables(&log);
        let params = SystemParams::from_log(&log);
        let par = Analyzer::new().analyze(&tables, &params);
        let seq = Analyzer::new().sequential().analyze(&tables, &params);
        assert_eq!(par.diagnoses, seq.diagnoses);
        assert_eq!(par.summary, seq.summary);
    }

    #[test]
    fn params_derived_from_log_metadata() {
        let log = small_io_log();
        let p = SystemParams::from_log(&log);
        assert_eq!(p.nprocs, 4);
        assert_eq!(p.rpc_size, 4 << 20);
        assert_eq!(p.stripe_size, 1 << 20);
    }

    #[test]
    fn summary_mentions_detected_issues() {
        let log = small_io_log();
        let tables = extract_tables(&log);
        let result = Analyzer::new().analyze(&tables, &SystemParams::from_log(&log));
        assert!(result.summary.contains("GLOBAL DIAGNOSIS SUMMARY"));
        assert!(!result.summary.is_empty());
    }
}
