//! The interactive Q&A session exposed after analysis.

use crate::report::Diagnosis;
use ion_llm::qa::{AnalysisRecord, QaSession};

/// Interactive follow-up interface over a finished analysis — the message
/// window of the paper's front-end, where users "ask direct questions about
/// any analysis, reasoning, or result".
#[derive(Debug, Clone)]
pub struct InteractiveSession {
    inner: QaSession,
}

impl InteractiveSession {
    /// Build a session from the per-issue diagnoses and global summary.
    #[must_use]
    pub fn new(diagnoses: &[Diagnosis], summary: &str) -> Self {
        let records = diagnoses
            .iter()
            .map(|d| AnalysisRecord {
                issue: d.issue.clone(),
                title: d.title.clone(),
                metrics: d.metrics.clone(),
                steps: d.steps.clone(),
                code: d.code.clone(),
                findings: d
                    .findings
                    .iter()
                    .map(|f| (f.severity.to_string(), f.text.clone()))
                    .collect(),
                mitigations: d.mitigations.clone(),
                conclusion: d.conclusion.clone(),
            })
            .collect();
        InteractiveSession {
            inner: QaSession::new(records, summary.to_owned()),
        }
    }

    /// Ask a question about the analysis.
    pub fn ask(&mut self, question: &str) -> String {
        self.inner.ask(question)
    }

    /// Conversation history so far.
    #[must_use]
    pub fn history(&self) -> &[(String, String)] {
        self.inner.history()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Detection, Finding, Severity};

    fn diagnosis() -> Diagnosis {
        let mut d = Diagnosis {
            issue: "misaligned-io".into(),
            title: "Misaligned I/O".into(),
            detection: Some(Detection::Yes),
            severity: Severity::High,
            steps: vec!["Checked alignment counters".into()],
            code: vec!["LOAD POSIX\nAGG u = sum(POSIX_FILE_NOT_ALIGNED)\nEMIT u".into()],
            findings: vec![Finding {
                severity: Severity::High,
                text: "99.8% of operations misaligned".into(),
            }],
            conclusion: "Pervasive misalignment.".into(),
            ..Diagnosis::default()
        };
        d.metrics
            .insert("file_misaligned_pct".into(), extractor::Value::Float(99.8));
        d
    }

    #[test]
    fn session_answers_about_diagnosis() {
        let mut s = InteractiveSession::new(&[diagnosis()], "summary text");
        let a = s.ask("tell me about the misaligned io issue");
        assert!(a.contains("Pervasive misalignment"));
        assert_eq!(s.history().len(), 1);
    }

    #[test]
    fn session_surfaces_metrics() {
        let mut s = InteractiveSession::new(&[diagnosis()], "summary text");
        let a = s.ask("what file_misaligned_pct did you compute?");
        assert!(a.contains("99.8"));
    }

    #[test]
    fn session_returns_code_on_request() {
        let mut s = InteractiveSession::new(&[diagnosis()], "summary text");
        let a = s.ask("show the code behind the misaligned analysis");
        assert!(a.contains("LOAD POSIX"));
    }
}
