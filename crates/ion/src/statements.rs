//! Addressable knowledge statements — the fine-grained unit of context
//! dependency tracking.
//!
//! [`ContextRevision`](crate::context::ContextRevision) stamps a whole
//! context with one hash, so any visible edit invalidates every cached
//! diagnosis that read the context. This module splits a context into its
//! individually addressable statements — header, prose lines, `PARAM`s,
//! `COMPUTE` blocks, rule conditions and rule templates — each carrying a
//! stable [`StatementRevision`]. A cached analysis can then record
//! *which* statements it actually consulted and stay valid when only
//! unconsulted ones change (a template of a rule that never fired, say).
//!
//! Statement texts come from the parsed spec, whose lines are fully
//! trimmed, so statement revisions are inert under *any* whitespace-only
//! edit — including indentation, which the coarse `ContextRevision`
//! deliberately treats as a visible change.
//!
//! Statements are keyed positionally (`prose/3`, `rule/1/text`) because
//! the expert renders them positionally: reordering statements changes
//! the completion, so reordering must change the keys' assignments.

use crate::context::{ContextRevision, IssueContext};
use extractor::Value;
use ion_llm::expert::rule_fires;
use ion_llm::knowledge::{parse_context, IssueContextSpec, RuleKind};
use std::collections::BTreeMap;
use std::fmt;

/// A stable fingerprint of one knowledge statement (or of a statement
/// aggregate such as the context shape). Same FNV-1a/128 family as
/// [`ContextRevision`], and like it safe to persist: the value depends
/// only on the statement's canonical text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StatementRevision(u128);

impl StatementRevision {
    const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

    /// Hash a sequence of canonical parts with explicit separators, so
    /// `("ab","c")` and `("a","bc")` fingerprint differently.
    #[must_use]
    pub fn of_parts(parts: &[&str]) -> StatementRevision {
        let mut hash = Self::FNV_OFFSET;
        let mut absorb = |byte: u8| {
            hash ^= u128::from(byte);
            hash = hash.wrapping_mul(Self::FNV_PRIME);
        };
        for part in parts {
            for b in part.bytes() {
                absorb(b);
            }
            absorb(0x1f);
        }
        StatementRevision(hash)
    }

    /// Full 32-char hex rendering.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Abbreviated rendering (12 chars).
    #[must_use]
    pub fn short(&self) -> String {
        self.hex()[..12].to_owned()
    }
}

impl fmt::Display for StatementRevision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// One addressable statement of a context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement {
    /// Positional key (`header`, `prose/0`, `param/0/rpc_size`,
    /// `compute/1/posix_pattern`, `rule/2/cond`, `rule/2/text`).
    pub key: String,
    /// Revision of this statement's canonical text.
    pub revision: StatementRevision,
}

/// A context split into addressable statements, with aggregate
/// fingerprints.
#[derive(Debug, Clone)]
pub struct ContextStatements {
    spec: Option<IssueContextSpec>,
    statements: Vec<Statement>,
    shape: StatementRevision,
    fingerprint: StatementRevision,
}

/// Whether a statement key addresses a rule template — the only
/// statement kind the expert consults *conditionally* (when its rule
/// fires). Everything else is rendered into every completion.
#[must_use]
pub fn is_template_key(key: &str) -> bool {
    key.starts_with("rule/") && key.ends_with("/text")
}

fn split_spec(spec: &IssueContextSpec) -> Vec<Statement> {
    let mut out = Vec::new();
    out.push(Statement {
        key: "header".to_owned(),
        revision: StatementRevision::of_parts(&[
            "header",
            &spec.issue,
            &spec.title,
            &spec.modules.join(","),
        ]),
    });
    for (i, k) in spec.knowledge.iter().enumerate() {
        out.push(Statement {
            key: format!("prose/{i}"),
            revision: StatementRevision::of_parts(&["prose", &k.text]),
        });
    }
    for (i, (name, value)) in spec.params.iter().enumerate() {
        out.push(Statement {
            key: format!("param/{i}/{name}"),
            revision: StatementRevision::of_parts(&[
                "param",
                name,
                &format!("{:016x}", value.to_bits()),
            ]),
        });
    }
    for (i, c) in spec.computes.iter().enumerate() {
        out.push(Statement {
            key: format!("compute/{i}/{}", c.name),
            revision: StatementRevision::of_parts(&["compute", &c.name, &c.source]),
        });
    }
    for (i, rule) in spec.rules.iter().enumerate() {
        let (kind, severity) = match &rule.kind {
            RuleKind::Conclude { severity } => ("CONCLUDE", severity.as_str()),
            RuleKind::Mitigate => ("MITIGATE", ""),
            RuleKind::Note => ("NOTE", ""),
        };
        out.push(Statement {
            key: format!("rule/{i}/cond"),
            revision: StatementRevision::of_parts(&["rule-cond", kind, severity, &rule.condition]),
        });
        out.push(Statement {
            key: format!("rule/{i}/text"),
            revision: StatementRevision::of_parts(&["rule-text", &rule.template]),
        });
    }
    out
}

impl ContextStatements {
    /// Split a context's text into statements.
    ///
    /// A context whose directives fail to parse degrades to a single
    /// `raw` statement fingerprinted like the coarse revision — the
    /// pre-statement behavior, never a silent cache hit.
    #[must_use]
    pub fn of_text(text: &str) -> ContextStatements {
        let (spec, statements) = match parse_context(text) {
            Ok(spec) => {
                let statements = split_spec(&spec);
                (Some(spec), statements)
            }
            Err(_) => (
                None,
                vec![Statement {
                    key: "raw".to_owned(),
                    revision: StatementRevision::of_parts(&[
                        "raw",
                        &ContextRevision::of(text).hex(),
                    ]),
                }],
            ),
        };
        let shape = StatementRevision::of_parts(
            &statements
                .iter()
                .map(|s| s.key.as_str())
                .collect::<Vec<_>>(),
        );
        let mut parts: Vec<String> = vec![shape.hex()];
        for s in &statements {
            parts.push(s.key.clone());
            parts.push(s.revision.hex());
        }
        let fingerprint =
            StatementRevision::of_parts(&parts.iter().map(String::as_str).collect::<Vec<_>>());
        ContextStatements {
            spec,
            statements,
            shape,
            fingerprint,
        }
    }

    /// Split a context into statements.
    #[must_use]
    pub fn of(context: &IssueContext) -> ContextStatements {
        ContextStatements::of_text(&context.text)
    }

    /// The statements, in rendering order.
    #[must_use]
    pub fn statements(&self) -> &[Statement] {
        &self.statements
    }

    /// Fingerprint of the ordered statement keys alone — changes when
    /// statements are added, removed or reordered.
    #[must_use]
    pub fn shape(&self) -> StatementRevision {
        self.shape
    }

    /// Fingerprint of the whole statement set (shape + every statement
    /// revision): the fine-grained analogue of [`ContextRevision`],
    /// inert under any whitespace-only edit.
    #[must_use]
    pub fn fingerprint(&self) -> StatementRevision {
        self.fingerprint
    }

    /// Revision of a statement by key.
    #[must_use]
    pub fn revision_of(&self, key: &str) -> Option<StatementRevision> {
        self.statements
            .iter()
            .find(|s| s.key == key)
            .map(|s| s.revision)
    }

    /// The statement keys a completed expert run actually consulted.
    ///
    /// Every statement except rule templates is rendered into every
    /// completion (prose and conditions appear in `STEPS`, computes in
    /// `CODE`); a template is consulted only when its rule fired. Firing
    /// is re-derived exactly as the expert derives it: context `PARAM`s
    /// plus the prompt-appended system parameters form the environment,
    /// shadowed by the metrics the run computed.
    #[must_use]
    pub fn consulted(
        &self,
        extra_params: &[(&str, f64)],
        metrics: &BTreeMap<String, Value>,
    ) -> Vec<String> {
        let Some(spec) = &self.spec else {
            return self.statements.iter().map(|s| s.key.clone()).collect();
        };
        let mut env: BTreeMap<String, Value> = spec
            .params
            .iter()
            .map(|(n, v)| (n.clone(), Value::Float(*v)))
            .collect();
        for (n, v) in extra_params {
            env.insert((*n).to_owned(), Value::Float(*v));
        }
        env.extend(metrics.iter().map(|(n, v)| (n.clone(), v.clone())));
        self.statements
            .iter()
            .filter(|s| {
                if !is_template_key(&s.key) {
                    return true;
                }
                let idx: usize = s.key["rule/".len()..s.key.len() - "/text".len()]
                    .parse()
                    .unwrap_or(usize::MAX);
                spec.rules
                    .get(idx)
                    .is_some_and(|rule| rule_fires(rule, &env).unwrap_or(false))
            })
            .map(|s| s.key.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::builtin_context;

    const SAMPLE: &str = r#"
ISSUE: demo
TITLE: Demo issue
MODULES: DXT

Small requests underutilize round trips.

PARAM rpc_size = 4194304

COMPUTE stats:
  LOAD DXT
  AGG n = count()
  EMIT n
END

CONCLUDE IF n > 10 SEVERITY high: "saw {n:int} ops"
NOTE IF n <= 10: "few ops"
"#;

    #[test]
    fn splits_into_positional_statements() {
        let s = ContextStatements::of_text(SAMPLE);
        let keys: Vec<&str> = s.statements().iter().map(|st| st.key.as_str()).collect();
        assert_eq!(
            keys,
            vec![
                "header",
                "prose/0",
                "param/0/rpc_size",
                "compute/0/stats",
                "rule/0/cond",
                "rule/0/text",
                "rule/1/cond",
                "rule/1/text",
            ]
        );
    }

    #[test]
    fn whitespace_edits_leave_every_revision_unchanged() {
        let base = ContextStatements::of_text(SAMPLE);
        // Indent everything — the one cosmetic edit the coarse
        // ContextRevision treats as a real change.
        let indented: String = SAMPLE.lines().map(|l| format!("  {l}\n")).collect();
        assert_ne!(
            ContextRevision::of(SAMPLE),
            ContextRevision::of(&indented),
            "premise: the coarse revision sees indentation"
        );
        let edited = ContextStatements::of_text(&indented);
        assert_eq!(base.fingerprint(), edited.fingerprint());
        assert_eq!(base.shape(), edited.shape());
        for (a, b) in base.statements().iter().zip(edited.statements()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn editing_one_statement_changes_only_its_revision() {
        let base = ContextStatements::of_text(SAMPLE);
        let edited = ContextStatements::of_text(&SAMPLE.replace("few ops", "very few ops"));
        assert_ne!(base.fingerprint(), edited.fingerprint());
        assert_eq!(base.shape(), edited.shape());
        for (a, b) in base.statements().iter().zip(edited.statements()) {
            if a.key == "rule/1/text" {
                assert_ne!(a.revision, b.revision);
            } else {
                assert_eq!(a, b, "unrelated statement {} moved", a.key);
            }
        }
    }

    #[test]
    fn adding_a_statement_changes_the_shape() {
        let base = ContextStatements::of_text(SAMPLE);
        let edited = ContextStatements::of_text(&format!("{SAMPLE}\nExtra prose line.\n"));
        assert_ne!(base.shape(), edited.shape());
        assert_ne!(base.fingerprint(), edited.fingerprint());
    }

    #[test]
    fn consulted_excludes_unfired_templates_only() {
        let s = ContextStatements::of_text(SAMPLE);
        let mut metrics = BTreeMap::new();
        metrics.insert("n".to_owned(), Value::Int(20));
        let consulted = s.consulted(&[], &metrics);
        assert!(consulted.contains(&"rule/0/text".to_owned()), "fired rule");
        assert!(
            !consulted.contains(&"rule/1/text".to_owned()),
            "unfired NOTE template is not consulted"
        );
        assert!(consulted.contains(&"rule/1/cond".to_owned()));
        assert!(consulted.contains(&"prose/0".to_owned()));
        assert_eq!(consulted.len(), s.statements().len() - 1);
    }

    #[test]
    fn extra_params_reach_rule_evaluation() {
        let text = "ISSUE: p\nTITLE: P\nCONCLUDE IF nprocs > 1: \"parallel\"\n";
        let s = ContextStatements::of_text(text);
        let none = s.consulted(&[("nprocs", 1.0)], &BTreeMap::new());
        assert!(!none.contains(&"rule/0/text".to_owned()));
        let fired = s.consulted(&[("nprocs", 8.0)], &BTreeMap::new());
        assert!(fired.contains(&"rule/0/text".to_owned()));
    }

    #[test]
    fn malformed_context_degrades_to_raw_statement() {
        let bad = "COMPUTE x:\nLOAD DXT\n"; // missing END
        let s = ContextStatements::of_text(bad);
        assert_eq!(s.statements().len(), 1);
        assert_eq!(s.statements()[0].key, "raw");
        // Any edit — even whitespace the coarse revision sees — dirties it.
        let t = ContextStatements::of_text("  COMPUTE x:\nLOAD DXT\n");
        assert_ne!(s.fingerprint(), t.fingerprint());
        // All statements count as consulted.
        assert_eq!(s.consulted(&[], &BTreeMap::new()), vec!["raw"]);
    }

    #[test]
    fn builtin_fingerprints_are_distinct_and_stable() {
        let a = ContextStatements::of(&builtin_context("small-io").unwrap());
        let b = ContextStatements::of(&builtin_context("misaligned-io").unwrap());
        assert_ne!(a.fingerprint(), b.fingerprint());
        let a2 = ContextStatements::of(&builtin_context("small-io").unwrap());
        assert_eq!(a.fingerprint(), a2.fingerprint());
        assert_eq!(a.fingerprint().hex().len(), 32);
    }
}
