//! Ensemble analysis: diagnosis confidence under system-parameter
//! uncertainty.
//!
//! ION's issue contexts reference system settings — RPC size, stripe size —
//! supplied as per-trace hyper-parameters. On a real machine these are not
//! always known exactly (different OST pools, changed defaults, hearsay
//! from the ops team). Following the self-consistency idea the paper cites
//! for chain-of-thought prompting, this module re-runs the analysis over a
//! small ensemble of perturbed parameter sets and reports, per issue, how
//! stable the detection is: a finding that flips when the stripe size
//! moves 25% is threshold-riding and deserves less trust than one that
//! holds across the whole ensemble.

use crate::analyzer::{Analyzer, SystemParams};
use crate::report::Detection;
use extractor::TableSet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-issue stability across the ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IssueVote {
    /// Issue id.
    pub issue: String,
    /// Detection under the nominal parameters.
    pub nominal: Option<Detection>,
    /// Votes per outcome (`yes`/`mitigated`/`no`), over all ensemble runs.
    pub votes: BTreeMap<String, usize>,
    /// Fraction of runs agreeing with the nominal outcome (0–1).
    pub confidence: f64,
}

/// The full ensemble result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnsembleResult {
    /// Stability per issue, in context order.
    pub votes: Vec<IssueVote>,
    /// Number of parameter sets analyzed (nominal included).
    pub runs: usize,
}

impl EnsembleResult {
    /// Vote record for one issue.
    #[must_use]
    pub fn vote(&self, issue: &str) -> Option<&IssueVote> {
        self.votes.iter().find(|v| v.issue == issue)
    }

    /// Issues whose outcome changed under perturbation.
    #[must_use]
    pub fn unstable(&self) -> Vec<&IssueVote> {
        self.votes.iter().filter(|v| v.confidence < 1.0).collect()
    }
}

/// The perturbed parameter sets for one nominal configuration: the nominal
/// itself plus stripe/RPC sizes scaled by the given factors.
#[must_use]
pub fn perturbations(nominal: &SystemParams, factors: &[f64]) -> Vec<SystemParams> {
    let mut out = vec![*nominal];
    for &f in factors {
        if (f - 1.0).abs() < f64::EPSILON {
            continue;
        }
        out.push(SystemParams {
            rpc_size: ((nominal.rpc_size as f64) * f).max(1.0) as u64,
            stripe_size: ((nominal.stripe_size as f64) * f).max(1.0) as u64,
            ..*nominal
        });
    }
    out
}

fn detection_label(d: Option<Detection>) -> String {
    d.map_or_else(|| "skipped".to_owned(), |d| d.to_string())
}

/// Run the analyzer over the nominal parameters and perturbed variants,
/// reporting per-issue detection stability.
///
/// `factors` scale the RPC and stripe sizes (e.g. `[0.75, 1.25]` for ±25%
/// uncertainty). Parameter sets are dispatched as one `ion-exec` batch
/// (ensembles are small, so the outer width is capped by the set count);
/// each set additionally uses the analyzer's own per-issue parallelism. A
/// set whose analysis does not complete is dropped from the tally —
/// [`EnsembleResult::runs`] counts completed runs — except the nominal
/// set, without which there is nothing to vote on (empty result).
#[must_use]
pub fn ensemble_analyze(
    analyzer: &Analyzer<'_>,
    tables: &TableSet,
    nominal: &SystemParams,
    factors: &[f64],
) -> EnsembleResult {
    let sets = perturbations(nominal, factors);
    let outcomes = ion_exec::Batch::new().map_ordered(&sets, |p, _ctx| analyzer.analyze(tables, p));
    let mut outcomes = outcomes.into_iter();
    let Some(ion_exec::TaskOutcome::Ok(nominal_run)) = outcomes.next() else {
        return EnsembleResult::default();
    };
    let mut results = vec![nominal_run];
    results.extend(outcomes.filter_map(ion_exec::TaskOutcome::ok));
    let nominal_result = &results[0];
    let mut votes = Vec::new();
    for d in &nominal_result.diagnoses {
        let mut tally: BTreeMap<String, usize> = BTreeMap::new();
        let mut agree = 0usize;
        for r in &results {
            let outcome = r
                .diagnoses
                .iter()
                .find(|other| other.issue == d.issue)
                .and_then(|other| other.detection);
            *tally.entry(detection_label(outcome)).or_insert(0) += 1;
            if outcome == d.detection {
                agree += 1;
            }
        }
        votes.push(IssueVote {
            issue: d.issue.clone(),
            nominal: d.detection,
            votes: tally,
            confidence: agree as f64 / results.len() as f64,
        });
    }
    EnsembleResult {
        votes,
        runs: results.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractor::extract_tables;
    use iosim::{SimConfig, Simulation};

    fn trace_with_sizes(op_size: u64) -> (TableSet, SystemParams) {
        let mut sim = Simulation::new(SimConfig::default().with_ranks(2));
        let f = sim.posix_open_all("/e").unwrap();
        for i in 0..64u64 {
            for r in 0..2u32 {
                sim.posix_write(r, f, u64::from(r) * (256 << 20) + i * op_size, op_size)
                    .unwrap();
            }
        }
        let log = sim.finish();
        let params = SystemParams::from_log(&log);
        (extract_tables(&log), params)
    }

    #[test]
    fn perturbations_include_nominal_first() {
        let n = SystemParams::default();
        let sets = perturbations(&n, &[0.5, 1.0, 2.0]);
        assert_eq!(sets.len(), 3); // nominal + 0.5 + 2.0 (1.0 skipped)
        assert_eq!(sets[0], n);
        assert_eq!(sets[1].rpc_size, n.rpc_size / 2);
        assert_eq!(sets[2].stripe_size, n.stripe_size * 2);
    }

    #[test]
    fn deep_small_io_is_stable_under_perturbation() {
        // 2 KiB ops are small against 3 MiB or 5 MiB RPCs alike.
        let (tables, params) = trace_with_sizes(2048);
        let analyzer = Analyzer::new();
        let result = ensemble_analyze(&analyzer, &tables, &params, &[0.75, 1.25]);
        assert_eq!(result.runs, 3);
        let v = result.vote("small-io").unwrap();
        assert_eq!(v.confidence, 1.0, "{v:?}");
    }

    #[test]
    fn threshold_riding_detection_reported_unstable() {
        // 3 MiB ops: small against a 4 MiB RPC, not against a 3 MiB one.
        let (tables, params) = trace_with_sizes(3 << 20);
        let analyzer = Analyzer::new();
        let result = ensemble_analyze(&analyzer, &tables, &params, &[0.7, 1.3]);
        let v = result.vote("small-io").unwrap();
        assert!(v.confidence < 1.0, "{v:?}");
        assert!(result.unstable().iter().any(|u| u.issue == "small-io"));
        assert!(v.votes.len() >= 2, "{v:?}");
    }

    #[test]
    fn votes_sum_to_runs() {
        let (tables, params) = trace_with_sizes(4096);
        let analyzer = Analyzer::new();
        let result = ensemble_analyze(&analyzer, &tables, &params, &[0.5, 2.0]);
        for v in &result.votes {
            let total: usize = v.votes.values().sum();
            assert_eq!(total, result.runs);
        }
    }
}
