//! Cross-diagnosis consistency checking.
//!
//! The paper lists "optimize the prompts to enable consistency checking of
//! the diagnosis results" as planned work. This module implements that
//! check over a finished report: individual per-issue runs are independent
//! (divide-and-conquer), so nothing in the pipeline forces their claims to
//! agree. The checker validates structural invariants of each diagnosis
//! and cross-issue relationships between the metrics different runs
//! computed from the same tables.

use crate::report::{Detection, Diagnosis};
use serde::{Deserialize, Serialize};

/// Severity of a consistency problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsistencyLevel {
    /// The report is contradictory and should not be trusted as-is.
    Contradiction,
    /// The report is suspicious and worth a second look.
    Suspicious,
}

/// One detected inconsistency.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsistencyIssue {
    /// Severity.
    pub level: ConsistencyLevel,
    /// Issues involved.
    pub issues: Vec<String>,
    /// Explanation.
    pub message: String,
}

fn metric(d: &Diagnosis, name: &str) -> Option<f64> {
    d.metrics.get(name).and_then(extractor::Value::as_f64)
}

fn find<'a>(diagnoses: &'a [Diagnosis], issue: &str) -> Option<&'a Diagnosis> {
    diagnoses.iter().find(|d| d.issue == issue)
}

/// Check a set of per-issue diagnoses for internal and mutual consistency.
#[must_use]
pub fn check(diagnoses: &[Diagnosis]) -> Vec<ConsistencyIssue> {
    let mut out = Vec::new();

    // Structural invariants of each diagnosis.
    for d in diagnoses {
        match d.detection {
            Some(Detection::Yes) if d.findings.is_empty() => out.push(ConsistencyIssue {
                level: ConsistencyLevel::Contradiction,
                issues: vec![d.issue.clone()],
                message: format!("'{}' claims detection but lists no findings", d.issue),
            }),
            Some(Detection::Mitigated) if d.mitigations.is_empty() => {
                out.push(ConsistencyIssue {
                    level: ConsistencyLevel::Contradiction,
                    issues: vec![d.issue.clone()],
                    message: format!(
                        "'{}' claims mitigation but lists no mitigating factors",
                        d.issue
                    ),
                });
            }
            Some(Detection::No) if !d.findings.is_empty() => out.push(ConsistencyIssue {
                level: ConsistencyLevel::Contradiction,
                issues: vec![d.issue.clone()],
                message: format!("'{}' lists findings but claims no detection", d.issue),
            }),
            _ => {}
        }
        if d.detection == Some(Detection::Yes) && d.severity == crate::report::Severity::None {
            out.push(ConsistencyIssue {
                level: ConsistencyLevel::Suspicious,
                issues: vec![d.issue.clone()],
                message: format!("'{}' is detected but carries no severity", d.issue),
            });
        }
        if !d.is_detected() && d.conclusion.is_empty() {
            out.push(ConsistencyIssue {
                level: ConsistencyLevel::Suspicious,
                issues: vec![d.issue.clone()],
                message: format!("'{}' has an empty conclusion", d.issue),
            });
        }
    }

    // Cross-issue: "aggregatable because consecutive" contradicts a hard
    // random-access detection — random streams cannot be consecutive.
    if let (Some(small), Some(random)) = (
        find(diagnoses, "small-io"),
        find(diagnoses, "random-access"),
    ) {
        let aggregation_claim = small.mitigations.iter().any(|m| m.contains("consecutive"));
        if aggregation_claim && random.detection == Some(Detection::Yes) {
            if let (Some(consec), Some(rand_pct)) =
                (metric(small, "consec_pct"), metric(random, "random_pct"))
            {
                if consec + rand_pct > 110.0 {
                    out.push(ConsistencyIssue {
                        level: ConsistencyLevel::Contradiction,
                        issues: vec!["small-io".into(), "random-access".into()],
                        message: format!(
                            "small-io claims {consec:.1}% consecutive while random-access claims {rand_pct:.1}% random — these cannot both hold"
                        ),
                    });
                }
            } else {
                out.push(ConsistencyIssue {
                    level: ConsistencyLevel::Suspicious,
                    issues: vec!["small-io".into(), "random-access".into()],
                    message: "small ops are claimed aggregatable (consecutive) while access is \
                              diagnosed as random"
                        .into(),
                });
            }
        }
    }

    // Cross-issue: operation counts computed from the same POSIX table must
    // agree between runs.
    let op_metrics = [
        ("misaligned-io", "ops"),
        ("random-access", "ops"),
        ("small-io", "rw_ops"),
    ];
    let mut counts: Vec<(&str, f64)> = Vec::new();
    for (issue, name) in op_metrics {
        if let Some(d) = find(diagnoses, issue) {
            if let Some(v) = metric(d, name) {
                counts.push((issue, v));
            }
        }
    }
    for pair in counts.windows(2) {
        let (ia, va) = pair[0];
        let (ib, vb) = pair[1];
        if (va - vb).abs() > 0.5 {
            out.push(ConsistencyIssue {
                level: ConsistencyLevel::Contradiction,
                issues: vec![ia.to_owned(), ib.to_owned()],
                message: format!(
                    "operation counts disagree between analyses: {ia} saw {va}, {ib} saw {vb}"
                ),
            });
        }
    }

    // Cross-issue: rank counts must agree.
    if let (Some(imb), Some(strag)) = (
        find(diagnoses, "load-imbalance"),
        find(diagnoses, "stragglers"),
    ) {
        if let (Some(a), Some(b)) = (metric(imb, "nranks"), metric(strag, "nranks_t")) {
            if (a - b).abs() > 0.5 {
                out.push(ConsistencyIssue {
                    level: ConsistencyLevel::Contradiction,
                    issues: vec!["load-imbalance".into(), "stragglers".into()],
                    message: format!("rank counts disagree: {a} vs {b}"),
                });
            }
        }
    }

    // Cross-issue: a conflict-free shared file contradicts a straggler
    // blamed on lock convoying only if contention was *also* reported.
    if let Some(shared) = find(diagnoses, "shared-file-contention") {
        if shared.detection == Some(Detection::Yes)
            && shared
                .mitigations
                .iter()
                .any(|m| m.contains("no stripe conflicts"))
        {
            out.push(ConsistencyIssue {
                level: ConsistencyLevel::Contradiction,
                issues: vec!["shared-file-contention".into()],
                message: "shared-file analysis both asserts and excludes stripe conflicts".into(),
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Finding, Severity};
    use extractor::Value;

    fn base(issue: &str) -> Diagnosis {
        Diagnosis {
            issue: issue.to_owned(),
            title: issue.to_owned(),
            detection: Some(Detection::No),
            conclusion: "clean".into(),
            ..Diagnosis::default()
        }
    }

    #[test]
    fn clean_report_has_no_issues() {
        let ds = vec![base("small-io"), base("random-access")];
        assert!(check(&ds).is_empty());
    }

    #[test]
    fn detection_without_findings_is_contradiction() {
        let mut d = base("small-io");
        d.detection = Some(Detection::Yes);
        let issues = check(&[d]);
        let contradictions: Vec<_> = issues
            .iter()
            .filter(|i| i.level == ConsistencyLevel::Contradiction)
            .collect();
        assert_eq!(contradictions.len(), 1);
        assert!(contradictions[0].message.contains("no findings"));
        // The missing severity is separately flagged as suspicious.
        assert!(issues
            .iter()
            .any(|i| i.level == ConsistencyLevel::Suspicious));
    }

    #[test]
    fn mitigated_without_mitigations_is_contradiction() {
        let mut d = base("small-io");
        d.detection = Some(Detection::Mitigated);
        d.findings.push(Finding {
            severity: Severity::High,
            text: "x".into(),
        });
        let issues = check(&[d]);
        assert!(issues
            .iter()
            .any(|i| i.message.contains("no mitigating factors")));
    }

    #[test]
    fn aggregation_vs_random_contradiction_with_metrics() {
        let mut small = base("small-io");
        small.detection = Some(Detection::Mitigated);
        small
            .mitigations
            .push("99% of operations are consecutive".into());
        small
            .metrics
            .insert("consec_pct".into(), Value::Float(99.0));
        let mut random = base("random-access");
        random.detection = Some(Detection::Yes);
        random.findings.push(Finding {
            severity: Severity::Medium,
            text: "random".into(),
        });
        random
            .metrics
            .insert("random_pct".into(), Value::Float(95.0));
        let issues = check(&[small, random]);
        assert!(issues
            .iter()
            .any(|i| i.level == ConsistencyLevel::Contradiction
                && i.issues.contains(&"random-access".to_owned())));
    }

    #[test]
    fn aggregation_vs_random_consistent_when_percentages_fit() {
        // 40% consecutive + 50% random can coexist.
        let mut small = base("small-io");
        small.detection = Some(Detection::Mitigated);
        small.mitigations.push("some consecutive".into());
        small
            .metrics
            .insert("consec_pct".into(), Value::Float(40.0));
        let mut random = base("random-access");
        random.detection = Some(Detection::Yes);
        random.severity = Severity::Medium;
        random.findings.push(Finding {
            severity: Severity::Medium,
            text: "random".into(),
        });
        random
            .metrics
            .insert("random_pct".into(), Value::Float(50.0));
        assert!(check(&[small, random]).is_empty());
    }

    #[test]
    fn disagreeing_op_counts_flagged() {
        let mut a = base("misaligned-io");
        a.metrics.insert("ops".into(), Value::Int(100));
        let mut b = base("random-access");
        b.metrics.insert("ops".into(), Value::Int(90));
        let issues = check(&[a, b]);
        assert!(issues.iter().any(|i| i.message.contains("disagree")));
    }

    #[test]
    fn agreeing_op_counts_pass() {
        let mut a = base("misaligned-io");
        a.metrics.insert("ops".into(), Value::Int(100));
        let mut b = base("random-access");
        b.metrics.insert("ops".into(), Value::Int(100));
        assert!(check(&[a, b]).is_empty());
    }
}
