//! Structured diagnosis reports parsed back from model completions.

use extractor::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Whether an issue was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Detection {
    /// The issue is present.
    Yes,
    /// The issue is present but mitigating factors reduce its impact.
    Mitigated,
    /// The issue is not present.
    No,
}

impl fmt::Display for Detection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Detection::Yes => "yes",
            Detection::Mitigated => "mitigated",
            Detection::No => "no",
        })
    }
}

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub enum Severity {
    /// No finding.
    #[default]
    None,
    /// Informational.
    Low,
    /// Worth addressing.
    Medium,
    /// Likely dominating I/O performance.
    High,
}

impl Severity {
    /// Parse a severity label.
    #[must_use]
    pub fn parse(s: &str) -> Severity {
        match s.trim() {
            "high" => Severity::High,
            "medium" => Severity::Medium,
            "low" => Severity::Low,
            _ => Severity::None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::High => "high",
            Severity::Medium => "medium",
            Severity::Low => "low",
            Severity::None => "none",
        })
    }
}

/// One finding inside a diagnosis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Severity of this finding.
    pub severity: Severity,
    /// Finding text (numbers already interpolated).
    pub text: String,
}

/// A parsed per-issue diagnosis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Diagnosis {
    /// Issue identifier.
    pub issue: String,
    /// Issue title.
    pub title: String,
    /// Detection outcome.
    pub detection: Option<Detection>,
    /// Overall severity (max of findings).
    pub severity: Severity,
    /// Chain-of-thought steps.
    pub steps: Vec<String>,
    /// Generated analysis code.
    pub code: Vec<String>,
    /// Findings.
    pub findings: Vec<Finding>,
    /// Mitigating factors.
    pub mitigations: Vec<String>,
    /// Neutral notes.
    pub notes: Vec<String>,
    /// Final conclusion paragraph.
    pub conclusion: String,
    /// Metrics computed during the run (from code-interpreter outputs).
    pub metrics: BTreeMap<String, Value>,
    /// The raw completion text.
    pub raw: String,
    /// Revision (hex) of the issue context that produced this diagnosis
    /// (see [`crate::context::ContextRevision`]); empty when unknown.
    #[serde(default)]
    pub context_revision: String,
}

impl Diagnosis {
    /// Whether the issue was detected (including mitigated detections).
    #[must_use]
    pub fn is_detected(&self) -> bool {
        matches!(self.detection, Some(Detection::Yes | Detection::Mitigated))
    }

    /// Parse a completion in the ION output format.
    #[must_use]
    pub fn parse(text: &str) -> Diagnosis {
        #[derive(PartialEq, Clone, Copy)]
        enum Section {
            Preamble,
            Steps,
            Code,
            Findings,
            Mitigations,
            Notes,
        }
        let mut d = Diagnosis {
            raw: text.to_owned(),
            ..Diagnosis::default()
        };
        let mut section = Section::Preamble;
        let mut code_block = String::new();
        for line in text.lines() {
            let trimmed = line.trim();
            if let Some(v) = trimmed.strip_prefix("ISSUE:") {
                d.issue = v.trim().to_owned();
                continue;
            }
            if let Some(v) = trimmed.strip_prefix("TITLE:") {
                d.title = v.trim().to_owned();
                continue;
            }
            if let Some(v) = trimmed.strip_prefix("DETECTED:") {
                d.detection = match v.trim() {
                    "yes" => Some(Detection::Yes),
                    "mitigated" => Some(Detection::Mitigated),
                    "no" => Some(Detection::No),
                    _ => None,
                };
                continue;
            }
            if let Some(v) = trimmed.strip_prefix("SEVERITY:") {
                d.severity = Severity::parse(v);
                continue;
            }
            if trimmed == "STEPS:" {
                section = Section::Steps;
                continue;
            }
            if trimmed == "CODE:" {
                section = Section::Code;
                continue;
            }
            if trimmed == "FINDINGS:" {
                if !code_block.trim().is_empty() {
                    d.code.push(code_block.trim().to_owned());
                    code_block.clear();
                }
                section = Section::Findings;
                continue;
            }
            if trimmed == "MITIGATIONS:" {
                section = Section::Mitigations;
                continue;
            }
            if trimmed == "NOTES:" {
                section = Section::Notes;
                continue;
            }
            if let Some(v) = trimmed.strip_prefix("CONCLUSION:") {
                d.conclusion = v.trim().to_owned();
                section = Section::Preamble;
                continue;
            }
            match section {
                Section::Steps => {
                    // Strip "N. " prefixes.
                    let step = trimmed
                        .split_once(". ")
                        .filter(|(n, _)| n.chars().all(|c| c.is_ascii_digit()))
                        .map_or(trimmed, |(_, rest)| rest);
                    if !step.is_empty() {
                        d.steps.push(step.to_owned());
                    }
                }
                Section::Code => {
                    if trimmed.starts_with("# ") && !code_block.trim().is_empty() {
                        d.code.push(code_block.trim().to_owned());
                        code_block.clear();
                    }
                    code_block.push_str(line);
                    code_block.push('\n');
                }
                Section::Findings => {
                    if let Some(rest) = trimmed.strip_prefix("- ") {
                        if rest == "none" {
                            continue;
                        }
                        let (sev, text) = if let Some(r) = rest.strip_prefix('[') {
                            match r.split_once("] ") {
                                Some((s, t)) => (Severity::parse(s), t.to_owned()),
                                None => (Severity::Medium, rest.to_owned()),
                            }
                        } else {
                            (Severity::Medium, rest.to_owned())
                        };
                        d.findings.push(Finding {
                            severity: sev,
                            text,
                        });
                    }
                }
                Section::Mitigations => {
                    if let Some(rest) = trimmed.strip_prefix("- ") {
                        d.mitigations.push(rest.to_owned());
                    }
                }
                Section::Notes => {
                    if let Some(rest) = trimmed.strip_prefix("- ") {
                        d.notes.push(rest.to_owned());
                    }
                }
                Section::Preamble => {}
            }
        }
        if !code_block.trim().is_empty() {
            d.code.push(code_block.trim().to_owned());
        }
        d
    }

    /// One-line rendering for tables and experiment output.
    #[must_use]
    pub fn one_line(&self) -> String {
        let det = self
            .detection
            .map_or_else(|| "?".to_owned(), |d| d.to_string());
        format!(
            "{:<24} detected={:<9} severity={:<6} findings={}",
            self.issue,
            det,
            self.severity.to_string(),
            self.findings.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
ISSUE: small-io
TITLE: Small I/O operations
DETECTED: mitigated
SEVERITY: high
STEPS:
1. Considered: small requests underutilize RPCs
2. Ran analysis `op_stats`; observed small_pct = 98.78.
3. Checked `small_pct > 50` → holds
CODE:
# op_stats
LOAD DXT
AGG n = count()
EMIT n
FINDINGS:
- [high] 98.78% of operations are small
MITIGATIONS:
- most are consecutive and aggregatable
NOTES:
- trace covers 703226 operations
CONCLUSION: Small operations dominate but aggregation mitigates them.
";

    #[test]
    fn parses_all_sections() {
        let d = Diagnosis::parse(SAMPLE);
        assert_eq!(d.issue, "small-io");
        assert_eq!(d.title, "Small I/O operations");
        assert_eq!(d.detection, Some(Detection::Mitigated));
        assert_eq!(d.severity, Severity::High);
        assert_eq!(d.steps.len(), 3);
        assert_eq!(d.steps[0], "Considered: small requests underutilize RPCs");
        assert_eq!(d.code.len(), 1);
        assert!(d.code[0].contains("LOAD DXT"));
        assert_eq!(d.findings.len(), 1);
        assert_eq!(d.findings[0].severity, Severity::High);
        assert_eq!(d.mitigations.len(), 1);
        assert_eq!(d.notes.len(), 1);
        assert!(d.conclusion.contains("aggregation mitigates"));
        assert!(d.is_detected());
    }

    #[test]
    fn parses_no_detection() {
        let text = "ISSUE: x\nTITLE: X\nDETECTED: no\nSEVERITY: none\nFINDINGS:\n- none\nCONCLUSION: clean.\n";
        let d = Diagnosis::parse(text);
        assert_eq!(d.detection, Some(Detection::No));
        assert!(!d.is_detected());
        assert!(d.findings.is_empty());
        assert_eq!(d.severity, Severity::None);
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::High > Severity::Medium);
        assert!(Severity::Medium > Severity::Low);
        assert!(Severity::Low > Severity::None);
    }

    #[test]
    fn severity_parse_round_trip() {
        for s in [
            Severity::High,
            Severity::Medium,
            Severity::Low,
            Severity::None,
        ] {
            assert_eq!(Severity::parse(&s.to_string()), s);
        }
        assert_eq!(Severity::parse("bogus"), Severity::None);
    }

    #[test]
    fn multiple_code_blocks_split_on_comment_headers() {
        let text = "CODE:\n# first\nLOAD A\n# second\nLOAD B\nFINDINGS:\n- none\n";
        let d = Diagnosis::parse(text);
        assert_eq!(d.code.len(), 2);
        assert!(d.code[0].contains("LOAD A"));
        assert!(d.code[1].contains("LOAD B"));
    }

    #[test]
    fn one_line_contains_key_fields() {
        let d = Diagnosis::parse(SAMPLE);
        let line = d.one_line();
        assert!(line.contains("small-io"));
        assert!(line.contains("mitigated"));
        assert!(line.contains("high"));
    }
}
