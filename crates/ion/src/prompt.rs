//! Prompt construction: issue context + data description + task.
//!
//! Each per-issue prompt contains (paper §3): the issue context, a
//! description of the columns in the associated CSV files — filtered by the
//! issue's module mapping — the system hyper-parameters, a chain-of-thought
//! instruction and the output format description.

use crate::analyzer::SystemParams;
use crate::context::IssueContext;
use extractor::schema::describe_table;
use extractor::TableSet;
use ion_llm::expert::{CONTEXT_BEGIN, CONTEXT_END, MODE_SUMMARIZE};
use std::fmt::Write as _;

/// The fixed system preamble of every diagnosis prompt.
pub const SYSTEM_PREAMBLE: &str = "You are ION, an expert in HPC I/O performance analysis. \
You diagnose I/O performance issues from Darshan traces that have been \
extracted into CSV tables. Ground every conclusion in numbers you compute \
from the attached data using the code interpreter; think step by step and \
show your reasoning.";

/// The output format instruction appended to every diagnosis prompt.
pub const OUTPUT_FORMAT: &str = "Respond in exactly this structure:\n\
ISSUE: <issue id>\nTITLE: <title>\nDETECTED: yes|no|mitigated\n\
SEVERITY: high|medium|low|none\nSTEPS:\n<numbered reasoning steps>\n\
CODE:\n<the analysis programs you ran>\nFINDINGS:\n<- [severity] finding>\n\
MITIGATIONS:\n<- mitigation, if any>\nNOTES:\n<- note, if any>\n\
CONCLUSION: <one paragraph>";

/// Build the per-issue diagnosis prompt.
///
/// The issue's `MODULES:` mapping filters which table descriptions are
/// included; `params` appends the per-trace hyper-parameter overrides
/// *inside* the context region so they override the context defaults.
#[must_use]
pub fn build_issue_prompt(
    context: &IssueContext,
    tables: &TableSet,
    params: &SystemParams,
) -> String {
    let mut out = String::new();
    out.push_str(SYSTEM_PREAMBLE);
    out.push_str("\n\n");
    out.push_str(CONTEXT_BEGIN);
    out.push('\n');
    out.push_str(context.text.trim());
    out.push('\n');
    // Per-trace hyper-parameters override the context's defaults.
    let _ = writeln!(out, "PARAM rpc_size = {}", params.rpc_size);
    let _ = writeln!(out, "PARAM stripe_size = {}", params.stripe_size);
    let _ = writeln!(out, "PARAM nprocs = {}", params.nprocs);
    let _ = writeln!(out, "PARAM runtime = {}", params.runtime_seconds);
    let _ = writeln!(
        out,
        "PARAM has_mpiio = {}",
        i32::from(tables.get("MPIIO").is_some())
    );
    out.push_str(CONTEXT_END);
    out.push_str("\n\n## Attached data\n");
    let mapped = context.modules();
    let mut attached = 0;
    for module in &mapped {
        if let Some(table) = tables.get(module) {
            out.push_str(&describe_table(table));
            let _ = writeln!(out, "  ({} rows)", table.len());
            attached += 1;
        }
    }
    if attached == 0 {
        out.push_str("(none of the modules this issue needs were recorded)\n");
    }
    out.push_str("\n## Task\n");
    out.push_str(
        "Analyze the attached trace data for this issue. Use the code \
interpreter to compute the metrics the context describes before concluding. ",
    );
    out.push_str(OUTPUT_FORMAT);
    out.push('\n');
    out
}

/// Build the summarization prompt from the per-issue completions.
#[must_use]
pub fn build_summary_prompt(diagnosis_texts: &[String]) -> String {
    let mut out = String::new();
    out.push_str(SYSTEM_PREAMBLE);
    out.push('\n');
    out.push_str(MODE_SUMMARIZE);
    out.push_str("\n\nCombine the following per-issue diagnoses into a single global summary for the user, ordered by severity:\n\n");
    for (i, d) in diagnosis_texts.iter().enumerate() {
        let _ = writeln!(out, "--- diagnosis {} ---", i + 1);
        out.push_str(d);
        out.push('\n');
        // Surface mitigations to the summarizer with an explicit bullet
        // prefix it groups on.
        let mut in_mitigations = false;
        for line in d.lines() {
            if line.starts_with("MITIGATIONS:") {
                in_mitigations = true;
                continue;
            }
            if in_mitigations {
                if let Some(rest) = line.strip_prefix("- ") {
                    let _ = writeln!(out, "* mitigation: {rest}");
                } else {
                    in_mitigations = false;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::builtin_context;
    use extractor::Table;

    fn tables_with(names: &[&str]) -> TableSet {
        let mut set = TableSet::default();
        for n in names {
            let mut t = Table::new(n, &["file_id", "rank"]);
            t.push_row(vec![extractor::Value::Int(1), extractor::Value::Int(0)]);
            set.insert(t);
        }
        set
    }

    #[test]
    fn prompt_contains_context_markers_and_overrides() {
        let ctx = builtin_context("small-io").unwrap();
        let p = build_issue_prompt(
            &ctx,
            &tables_with(&["POSIX", "DXT"]),
            &SystemParams {
                rpc_size: 8 << 20,
                stripe_size: 2 << 20,
                nprocs: 16,
                ..SystemParams::default()
            },
        );
        assert!(p.contains(CONTEXT_BEGIN));
        assert!(p.contains(CONTEXT_END));
        assert!(p.contains("PARAM rpc_size = 8388608"));
        assert!(p.contains("PARAM nprocs = 16"));
        assert!(p.contains("PARAM has_mpiio = 0"));
        // Overrides come after the context body so they win.
        let default_pos = p.find("ISSUE: small-io").unwrap();
        let override_pos = p.find("PARAM rpc_size = 8388608").unwrap();
        assert!(override_pos > default_pos);
    }

    #[test]
    fn module_mapping_filters_attached_descriptions() {
        let ctx = builtin_context("collective-io").unwrap(); // needs MPIIO only
        let p = build_issue_prompt(
            &ctx,
            &tables_with(&["POSIX", "MPIIO"]),
            &SystemParams::default(),
        );
        assert!(p.contains("MPIIO.csv"));
        assert!(!p.contains("POSIX.csv"));
        assert!(p.contains("PARAM has_mpiio = 1"));
    }

    #[test]
    fn missing_modules_noted() {
        let ctx = builtin_context("collective-io").unwrap();
        let p = build_issue_prompt(&ctx, &tables_with(&["POSIX"]), &SystemParams::default());
        assert!(p.contains("none of the modules"));
    }

    #[test]
    fn summary_prompt_carries_mitigation_bullets() {
        let d = "ISSUE: x\nFINDINGS:\n- [high] bad thing\nMITIGATIONS:\n- but it aggregates\nCONCLUSION: ...".to_owned();
        let p = build_summary_prompt(&[d]);
        assert!(p.contains(MODE_SUMMARIZE));
        assert!(p.contains("* mitigation: but it aggregates"));
        assert!(p.contains("- [high] bad thing"));
    }
}
