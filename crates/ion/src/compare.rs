//! Baseline-vs-optimized trace comparison.
//!
//! The paper's evaluation workflow is exactly this loop: users run an
//! application, diagnose it, apply a fix, and trace again (OpenPMD and E2E
//! each appear as a baseline/optimized pair). This module diffs two ION
//! reports and classifies every issue as *resolved*, *introduced*,
//! *improved*, *regressed* or *unchanged*, so the user sees at a glance
//! what the fix bought and what it cost.

use crate::report::{Detection, Diagnosis};
use crate::IonReport;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How one issue moved between the two traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IssueChange {
    /// Detected before, clean after.
    Resolved,
    /// Clean before, detected after.
    Introduced,
    /// Hard detection downgraded to mitigated.
    Improved,
    /// Mitigated detection escalated to hard.
    Regressed,
    /// Same outcome in both traces.
    Unchanged,
}

impl fmt::Display for IssueChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IssueChange::Resolved => "resolved",
            IssueChange::Introduced => "introduced",
            IssueChange::Improved => "improved",
            IssueChange::Regressed => "regressed",
            IssueChange::Unchanged => "unchanged",
        })
    }
}

/// Comparison entry for one issue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IssueDelta {
    /// Issue id.
    pub issue: String,
    /// Detection in the baseline trace.
    pub before: Option<Detection>,
    /// Detection in the optimized trace.
    pub after: Option<Detection>,
    /// Classification of the movement.
    pub change: IssueChange,
    /// Key metrics that moved, `(name, before, after)`.
    pub metric_deltas: Vec<(String, f64, f64)>,
}

/// Full comparison of two reports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Comparison {
    /// Per-issue deltas, in baseline context order.
    pub deltas: Vec<IssueDelta>,
}

fn rank(d: Option<Detection>) -> u8 {
    match d {
        Some(Detection::Yes) => 2,
        Some(Detection::Mitigated) => 1,
        Some(Detection::No) | None => 0,
    }
}

fn classify(before: Option<Detection>, after: Option<Detection>) -> IssueChange {
    match (rank(before), rank(after)) {
        (b, a) if b == a => IssueChange::Unchanged,
        (b, 0) if b > 0 => IssueChange::Resolved,
        (0, a) if a > 0 => IssueChange::Introduced,
        (2, 1) => IssueChange::Improved,
        (1, 2) => IssueChange::Regressed,
        _ => IssueChange::Unchanged,
    }
}

fn metric_deltas(before: Option<&Diagnosis>, after: Option<&Diagnosis>) -> Vec<(String, f64, f64)> {
    let (Some(b), Some(a)) = (before, after) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (name, bv) in &b.metrics {
        // Percent-style metrics are the comparable ones across traces of
        // different sizes.
        if !name.ends_with("_pct") {
            continue;
        }
        let (Some(bf), Some(af)) = (
            bv.as_f64(),
            a.metrics.get(name).and_then(extractor::Value::as_f64),
        ) else {
            continue;
        };
        if (bf - af).abs() > 1.0 {
            out.push((name.clone(), bf, af));
        }
    }
    out.sort_by(|x, y| {
        (y.1 - y.2)
            .abs()
            .partial_cmp(&(x.1 - x.2).abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

/// Compare two ION reports (baseline vs optimized run of the same
/// application).
#[must_use]
pub fn compare(baseline: &IonReport, optimized: &IonReport) -> Comparison {
    let mut deltas = Vec::new();
    let mut seen: Vec<&str> = Vec::new();
    for b in &baseline.diagnoses {
        seen.push(&b.issue);
        let a = optimized.diagnosis(&b.issue);
        deltas.push(IssueDelta {
            issue: b.issue.clone(),
            before: b.detection,
            after: a.and_then(|d| d.detection),
            change: classify(b.detection, a.and_then(|d| d.detection)),
            metric_deltas: metric_deltas(Some(b), a),
        });
    }
    for a in &optimized.diagnoses {
        if !seen.contains(&a.issue.as_str()) {
            deltas.push(IssueDelta {
                issue: a.issue.clone(),
                before: None,
                after: a.detection,
                change: classify(None, a.detection),
                metric_deltas: Vec::new(),
            });
        }
    }
    Comparison { deltas }
}

impl Comparison {
    /// Deltas with a given change kind.
    #[must_use]
    pub fn with_change(&self, change: IssueChange) -> Vec<&IssueDelta> {
        self.deltas.iter().filter(|d| d.change == change).collect()
    }

    /// Delta for one issue.
    #[must_use]
    pub fn delta(&self, issue: &str) -> Option<&IssueDelta> {
        self.deltas.iter().find(|d| d.issue == issue)
    }

    /// Render a human-readable comparison report.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("BASELINE → OPTIMIZED COMPARISON\n");
        for kind in [
            IssueChange::Resolved,
            IssueChange::Improved,
            IssueChange::Introduced,
            IssueChange::Regressed,
            IssueChange::Unchanged,
        ] {
            let rows = self.with_change(kind);
            if rows.is_empty() {
                continue;
            }
            out.push_str(&format!("{kind}:\n"));
            for d in rows {
                let b = d.before.map_or("—".to_owned(), |x| x.to_string());
                let a = d.after.map_or("—".to_owned(), |x| x.to_string());
                out.push_str(&format!("  {:<26} {b} → {a}\n", d.issue));
                for (name, bv, av) in d.metric_deltas.iter().take(2) {
                    out.push_str(&format!("      {name}: {bv:.2} → {av:.2}\n"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(issue: &str, detection: Detection, pct: f64) -> Diagnosis {
        let mut d = Diagnosis {
            issue: issue.to_owned(),
            detection: Some(detection),
            ..Diagnosis::default()
        };
        d.metrics
            .insert("x_pct".into(), extractor::Value::Float(pct));
        d
    }

    fn report(diagnoses: Vec<Diagnosis>) -> IonReport {
        IonReport {
            diagnoses,
            ..IonReport::default()
        }
    }

    #[test]
    fn classifications() {
        assert_eq!(
            classify(Some(Detection::Yes), Some(Detection::No)),
            IssueChange::Resolved
        );
        assert_eq!(
            classify(None, Some(Detection::Yes)),
            IssueChange::Introduced
        );
        assert_eq!(
            classify(Some(Detection::Yes), Some(Detection::Mitigated)),
            IssueChange::Improved
        );
        assert_eq!(
            classify(Some(Detection::Mitigated), Some(Detection::Yes)),
            IssueChange::Regressed
        );
        assert_eq!(classify(Some(Detection::No), None), IssueChange::Unchanged);
    }

    #[test]
    fn compare_tracks_all_issue_movements() {
        let before = report(vec![
            diag("small-io", Detection::Yes, 98.0),
            diag("misaligned-io", Detection::Yes, 100.0),
        ]);
        let after = report(vec![
            diag("small-io", Detection::No, 3.0),
            diag("misaligned-io", Detection::Yes, 99.0),
            diag("random-access", Detection::Mitigated, 35.0),
        ]);
        let c = compare(&before, &after);
        assert_eq!(c.delta("small-io").unwrap().change, IssueChange::Resolved);
        assert_eq!(
            c.delta("misaligned-io").unwrap().change,
            IssueChange::Unchanged
        );
        assert_eq!(
            c.delta("random-access").unwrap().change,
            IssueChange::Introduced
        );
        // Metric movement captured for the resolved issue.
        let small = c.delta("small-io").unwrap();
        assert_eq!(small.metric_deltas[0].0, "x_pct");
        assert_eq!(small.metric_deltas[0].1, 98.0);
        assert_eq!(small.metric_deltas[0].2, 3.0);
    }

    #[test]
    fn render_groups_by_change() {
        let before = report(vec![diag("small-io", Detection::Yes, 98.0)]);
        let after = report(vec![diag("small-io", Detection::No, 2.0)]);
        let text = compare(&before, &after).render_text();
        assert!(text.contains("resolved:"));
        assert!(text.contains("small-io"));
        assert!(text.contains("x_pct: 98.00 → 2.00"));
    }

    #[test]
    fn stable_metrics_not_reported() {
        let before = report(vec![diag("a", Detection::Yes, 50.0)]);
        let after = report(vec![diag("a", Detection::Yes, 50.5)]);
        let c = compare(&before, &after);
        assert!(c.delta("a").unwrap().metric_deltas.is_empty());
    }
}
