//! ION — I/O Navigator: LLM-based diagnosis of HPC I/O performance issues
//! from Darshan traces.
//!
//! This crate is the paper's primary contribution: a framework that takes a
//! recorded Darshan trace, extracts it into per-module CSV tables, and
//! queries a language model — one prompt per I/O-issue type, constructed
//! from a curated *I/O performance issue context* — to produce per-issue
//! chain-of-thought diagnoses, a global summary, and an interactive Q&A
//! session.
//!
//! ```text
//!  Darshan log ─► Extractor ─► CSV tables ─┐
//!                                          ▼
//!  issue contexts ─► prompts ─► LLM (parallel, one run per issue)
//!                                          │ CoT steps + generated code
//!                                          ▼
//!                        diagnoses ─► summary ─► interactive Q&A
//! ```
//!
//! # Quickstart
//!
//! ```
//! use ion::pipeline::IonPipeline;
//! # use iosim::{Simulation, SimConfig};
//! # let mut sim = Simulation::new(SimConfig::default().with_ranks(2));
//! # let f = sim.posix_open_all("/scratch/data.dat").unwrap();
//! # for r in 0..2 { sim.posix_write(r, f, r as u64 * 2048, 2048).unwrap(); }
//! # sim.posix_close_all(f);
//! # let log = sim.finish();
//! let report = IonPipeline::new().run(&log);
//! println!("{}", report.summary);
//! for d in &report.diagnoses {
//!     println!("{}: {:?}", d.issue, d.detection);
//! }
//! ```
//!
//! The LLM backend is pluggable through [`ion_llm::LanguageModel`]; the
//! default is the deterministic in-context-learning expert, which makes
//! every experiment in this repository reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod compare;
pub mod consistency;
pub mod context;
pub mod ensemble;
pub mod pipeline;
pub mod prompt;
pub mod report;
pub mod retrieval;
pub mod session;
pub mod statements;

pub use analyzer::{Analyzer, SystemParams};
pub use consistency::{check as check_consistency, ConsistencyIssue, ConsistencyLevel};
pub use context::{builtin_contexts, IssueContext};
pub use pipeline::{IonPipeline, IonReport};
pub use report::{Detection, Diagnosis, Severity};
pub use session::InteractiveSession;
pub use statements::{ContextStatements, Statement, StatementRevision};
