//! End-to-end pipeline: Darshan log bytes → diagnoses + summary + Q&A.

use crate::analyzer::{AnalysisResult, Analyzer, SystemParams};
use crate::report::Diagnosis;
use crate::session::InteractiveSession;
use darshan::log::{Log, LogReader};
use darshan::DarshanError;
use extractor::{extract_tables, TableSet};

/// The full ION report for one trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IonReport {
    /// Per-issue diagnoses.
    pub diagnoses: Vec<Diagnosis>,
    /// Global summary.
    pub summary: String,
    /// Issues skipped for lack of module data.
    pub skipped: Vec<String>,
    /// System parameters used during analysis.
    pub params: Option<SystemParams>,
}

impl IonReport {
    /// Diagnosis for one issue, if analyzed.
    #[must_use]
    pub fn diagnosis(&self, issue: &str) -> Option<&Diagnosis> {
        self.diagnoses.iter().find(|d| d.issue == issue)
    }

    /// Issues that were detected (including mitigated), most severe first.
    #[must_use]
    pub fn detected(&self) -> Vec<&Diagnosis> {
        let mut v: Vec<&Diagnosis> = self.diagnoses.iter().filter(|d| d.is_detected()).collect();
        v.sort_by_key(|d| std::cmp::Reverse(d.severity));
        v
    }

    /// Start an interactive Q&A session over this report.
    #[must_use]
    pub fn session(&self) -> InteractiveSession {
        InteractiveSession::new(&self.diagnoses, &self.summary)
    }

    /// Run the cross-diagnosis consistency checker over this report.
    #[must_use]
    pub fn consistency(&self) -> Vec<crate::consistency::ConsistencyIssue> {
        crate::consistency::check(&self.diagnoses)
    }

    /// Render the report as human-readable text (the paper's front-end
    /// modals, flattened).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.summary);
        out.push('\n');
        for d in &self.diagnoses {
            out.push_str("════════════════════════════════════════\n");
            out.push_str(&d.raw);
            if !d.context_revision.is_empty() {
                let short = &d.context_revision[..d.context_revision.len().min(12)];
                out.push_str(&format!("(context revision {short})\n"));
            }
        }
        if !self.skipped.is_empty() {
            out.push_str(&format!(
                "(skipped for lack of module data: {})\n",
                self.skipped.join(", ")
            ));
        }
        out
    }
}

/// The end-to-end ION pipeline (Figure 1): Extractor then Analyzer.
#[derive(Debug, Default)]
pub struct IonPipeline {
    params_override: Option<SystemParams>,
    retrieval_k: Option<usize>,
    contexts_override: Option<Vec<crate::context::IssueContext>>,
    exec: ion_exec::Batch,
}

impl IonPipeline {
    /// Pipeline with parameters derived from each log.
    #[must_use]
    pub fn new() -> Self {
        IonPipeline {
            params_override: None,
            retrieval_k: None,
            contexts_override: None,
            exec: ion_exec::Batch::new(),
        }
    }

    /// Replace the execution policy (worker width, deadline, cancellation)
    /// the analyzer dispatches per-issue analyses under.
    #[must_use]
    pub fn with_exec(mut self, exec: ion_exec::Batch) -> Self {
        self.exec = exec;
        self
    }

    /// Force specific system parameters instead of deriving them.
    #[must_use]
    pub fn with_params(mut self, params: SystemParams) -> Self {
        self.params_override = Some(params);
        self
    }

    /// Enable retrieval-based context selection: analyze only the `k`
    /// contexts most relevant to the trace (the paper's RAG direction).
    #[must_use]
    pub fn with_retrieval(mut self, k: usize) -> Self {
        self.retrieval_k = Some(k.max(1));
        self
    }

    /// Analyze with these issue contexts instead of the builtin library —
    /// how edited or user-authored knowledge enters the pipeline.
    /// Retrieval selection, when configured, applies on top.
    #[must_use]
    pub fn with_contexts(mut self, contexts: Vec<crate::context::IssueContext>) -> Self {
        self.contexts_override = Some(contexts);
        self
    }

    /// Run on an in-memory log.
    #[must_use]
    pub fn run(&self, log: &Log) -> IonReport {
        let _pipeline_span = ion_obs::span!("pipeline");
        self.run_log(log)
    }

    /// Run on serialized log bytes.
    ///
    /// # Errors
    ///
    /// Returns the decoding error if the bytes are not a valid log.
    pub fn run_bytes(&self, bytes: &[u8]) -> Result<IonReport, DarshanError> {
        // One pipeline span covers decode through summarization, so the
        // reader's decode span lands inside it.
        let _pipeline_span = ion_obs::span!("pipeline");
        let log = LogReader::read(bytes)?;
        Ok(self.run_log(&log))
    }

    fn run_log(&self, log: &Log) -> IonReport {
        let tables = extract_tables(log);
        let params = self.params_for(log);
        self.run_tables(&tables, &params)
    }

    /// The system parameters this pipeline would analyze `log` with:
    /// the override if one was forced, otherwise derived from the log.
    #[must_use]
    pub fn params_for(&self, log: &Log) -> SystemParams {
        self.params_override
            .unwrap_or_else(|| SystemParams::from_log(log))
    }

    /// The forced system parameters, if any. Incremental drivers need
    /// this distinction: derived parameters travel with the cached
    /// extraction artifact, while an override applies unconditionally.
    #[must_use]
    pub fn params_override(&self) -> Option<SystemParams> {
        self.params_override
    }

    /// Whether retrieval-based context selection is configured.
    /// Incremental drivers that avoid materializing tables on warm paths
    /// must load them before selecting contexts when this is set
    /// (retrieval scores contexts against table *contents*).
    #[must_use]
    pub fn retrieval_enabled(&self) -> bool {
        self.retrieval_k.is_some()
    }

    /// Whether this pipeline analyzes with the builtin context library
    /// (no [`IonPipeline::with_contexts`] override). Builtin contexts
    /// are compiled into the binary, so incremental drivers may treat
    /// them as high-durability inputs: their revisions cannot change
    /// within a process, and revalidation can skip re-hashing them.
    #[must_use]
    pub fn uses_builtin_contexts(&self) -> bool {
        self.contexts_override.is_none()
    }

    /// The issue contexts this pipeline would analyze `tables` with,
    /// applying retrieval-based selection when configured.
    #[must_use]
    pub fn contexts_for(&self, tables: &TableSet) -> Vec<crate::context::IssueContext> {
        let contexts = self
            .contexts_override
            .clone()
            .unwrap_or_else(crate::context::builtin_contexts);
        match self.retrieval_k {
            Some(k) => crate::retrieval::select_contexts(contexts, tables, k),
            None => contexts,
        }
    }

    /// Run on already-extracted tables.
    #[must_use]
    pub fn run_tables(&self, tables: &TableSet, params: &SystemParams) -> IonReport {
        let mut analyzer = Analyzer::new().with_exec(self.exec.clone());
        if self.retrieval_k.is_some() || self.contexts_override.is_some() {
            analyzer = analyzer.with_contexts(self.contexts_for(tables));
        }
        let AnalysisResult {
            diagnoses,
            summary,
            skipped,
            failed,
        } = analyzer.analyze(tables, params);
        let report = IonReport {
            diagnoses,
            summary,
            skipped,
            params: Some(*params),
        };
        ion_obs::event!(
            "pipeline.completed",
            diagnoses = report.diagnoses.len(),
            detected = report.detected().len(),
            skipped = report.skipped.len(),
            failed = failed.len(),
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim::{SimConfig, Simulation};

    fn misaligned_log() -> Log {
        let mut sim = Simulation::new(SimConfig::default().with_ranks(2).with_exe("e2e"));
        let f = sim.posix_open_all("/scratch/out.nc4").unwrap();
        for i in 0..64u64 {
            for rank in 0..2u32 {
                // Offsets deliberately not stripe-aligned.
                let base = u64::from(rank) * (32 << 20);
                sim.posix_write(rank, f, base + i * 4096 + 17, 4096)
                    .unwrap();
            }
        }
        sim.posix_close_all(f);
        sim.finish()
    }

    #[test]
    fn end_to_end_from_log() {
        let log = misaligned_log();
        let report = IonPipeline::new().run(&log);
        assert!(!report.diagnoses.is_empty());
        let mis = report.diagnosis("misaligned-io").unwrap();
        assert!(mis.is_detected(), "{}", mis.raw);
        assert!(report.summary.contains("GLOBAL DIAGNOSIS SUMMARY"));
    }

    #[test]
    fn end_to_end_from_bytes() {
        let log = misaligned_log();
        let mut w = darshan::log::LogWriter::from_log(log);
        let bytes = w.finish().unwrap();
        let report = IonPipeline::new().run_bytes(&bytes).unwrap();
        assert!(report.diagnosis("misaligned-io").unwrap().is_detected());
    }

    #[test]
    fn bad_bytes_surface_decode_error() {
        assert!(IonPipeline::new().run_bytes(&[0u8; 32]).is_err());
    }

    #[test]
    fn detected_sorted_by_severity() {
        let log = misaligned_log();
        let report = IonPipeline::new().run(&log);
        let det = report.detected();
        for w in det.windows(2) {
            assert!(w[0].severity >= w[1].severity);
        }
    }

    #[test]
    fn session_built_from_report() {
        let log = misaligned_log();
        let report = IonPipeline::new().run(&log);
        let mut session = report.session();
        let answer = session.ask("why did you flag misaligned io?");
        assert!(!answer.is_empty());
    }

    #[test]
    fn render_text_contains_summary_and_diagnoses() {
        let log = misaligned_log();
        let report = IonPipeline::new().run(&log);
        let text = report.render_text();
        assert!(text.contains("GLOBAL DIAGNOSIS SUMMARY"));
        assert!(text.contains("ISSUE: misaligned-io"));
    }
}
