//! Retrieval-based context selection (the paper's RAG direction).
//!
//! ION's divide-and-conquer analyzer runs one model query per issue
//! context. The paper's planned alternative is retrieval-augmented
//! generation: select only the contexts relevant to a given trace, cutting
//! cost for interactive use. This module implements that selection as
//! classic lexical retrieval: the trace is summarized into a cheap
//! *profile document* (modules present, coarse op statistics rendered as
//! descriptive terms), contexts are scored against it with a TF-IDF-style
//! cosine overlap over their prose knowledge, and the analyzer keeps the
//! top-k.

use crate::context::IssueContext;
use extractor::TableSet;
use std::collections::{HashMap, HashSet};

/// A scored context.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedContext {
    /// Context id.
    pub id: &'static str,
    /// Retrieval score (higher = more relevant).
    pub score: f64,
}

fn tokenize(text: &str) -> Vec<String> {
    text.to_ascii_lowercase()
        .split(|c: char| !c.is_ascii_alphanumeric() && c != '-' && c != '_')
        .filter(|t| t.len() > 2)
        .map(ToOwned::to_owned)
        .collect()
}

fn sum_col(tables: &TableSet, table: &str, col: &str) -> f64 {
    tables
        .get(table)
        .and_then(|t| t.column_values(col))
        .map(|vals| vals.filter_map(|v| v.as_f64()).sum())
        .unwrap_or(0.0)
}

/// Build the trace profile document: a textual description of what the
/// trace *contains*, in the vocabulary I/O experts (and the contexts) use.
#[must_use]
pub fn trace_profile(tables: &TableSet) -> String {
    let mut parts: Vec<String> = Vec::new();
    for name in tables.names() {
        parts.push(format!("module {name} recorded"));
    }
    let reads = sum_col(tables, "POSIX", "POSIX_READS");
    let writes = sum_col(tables, "POSIX", "POSIX_WRITES");
    let ops = reads + writes;
    if ops > 0.0 {
        parts.push(format!("{ops:.0} posix read write operations"));
        let unaligned = sum_col(tables, "POSIX", "POSIX_FILE_NOT_ALIGNED");
        if unaligned / ops > 0.1 {
            parts.push("many misaligned file offsets stripe boundary alignment".into());
        }
        let seq = sum_col(tables, "POSIX", "POSIX_SEQ_READS")
            + sum_col(tables, "POSIX", "POSIX_SEQ_WRITES");
        if seq / ops > 0.7 {
            parts.push("mostly sequential consecutive streaming access".into());
        } else if ops >= 20.0 {
            parts.push("random scattered non-sequential access offsets".into());
        }
        let small = ["0_100", "100_1K", "1K_10K", "10K_100K", "100K_1M"]
            .iter()
            .map(|bin| {
                sum_col(tables, "POSIX", &format!("POSIX_SIZE_READ_{bin}"))
                    + sum_col(tables, "POSIX", &format!("POSIX_SIZE_WRITE_{bin}"))
            })
            .sum::<f64>();
        if small / ops > 0.5 {
            parts.push("many small requests transfer sizes below megabyte rpc".into());
        }
        let opens = sum_col(tables, "POSIX", "POSIX_OPENS");
        let stats = sum_col(tables, "POSIX", "POSIX_STATS");
        if opens + stats > ops * 0.2 {
            parts.push("heavy metadata open stat close traffic many files servers".into());
        }
        // Per-rank byte spread.
        if let Some(t) = tables.get("POSIX") {
            let mut per_rank: HashMap<i64, f64> = HashMap::new();
            let (Some(ri), Some(bi), Some(wi)) = (
                t.column_index("rank"),
                t.column_index("POSIX_BYTES_READ"),
                t.column_index("POSIX_BYTES_WRITTEN"),
            ) else {
                return parts.join(". ");
            };
            for row in t.iter_rows() {
                let rank = row.get(ri).as_i64().unwrap_or(-1);
                if rank >= 0 {
                    *per_rank.entry(rank).or_insert(0.0) +=
                        row.get(bi).as_f64().unwrap_or(0.0) + row.get(wi).as_f64().unwrap_or(0.0);
                }
            }
            if per_rank.len() > 1 {
                parts.push("multiple ranks performing parallel io".into());
                let max = per_rank.values().copied().fold(0.0f64, f64::max);
                let mean = per_rank.values().sum::<f64>() / per_rank.len() as f64;
                if max > 0.0 && (max - mean) / max > 0.3 {
                    parts.push(
                        "imbalance skew one rank doing much more work volume stragglers".into(),
                    );
                }
            }
        }
    }
    if tables.get("MPIIO").is_some() {
        let coll = sum_col(tables, "MPIIO", "MPIIO_COLL_READS")
            + sum_col(tables, "MPIIO", "MPIIO_COLL_WRITES");
        let indep = sum_col(tables, "MPIIO", "MPIIO_INDEP_READS")
            + sum_col(tables, "MPIIO", "MPIIO_INDEP_WRITES");
        if indep > 0.0 && coll == 0.0 {
            parts.push("mpi-io independent operations without collective buffering".into());
        } else if coll > 0.0 {
            parts.push("mpi-io collective operations two-phase aggregation".into());
        }
    } else if ops > 0.0 {
        parts.push("posix only no mpi-io library interface usage".into());
    }
    if tables.get("DXT").is_some() {
        parts.push("fine-grained dxt trace offsets lengths timestamps stripe overlap".into());
    }
    if tables.get("HEATMAP").is_some() {
        parts.push("temporal heatmap time bins bursts phases checkpoint volume".into());
    }
    parts.join(". ")
}

/// Score contexts against a trace profile by TF-IDF-weighted term overlap.
#[must_use]
pub fn rank_contexts(contexts: &[IssueContext], tables: &TableSet) -> Vec<RankedContext> {
    let profile_terms: HashSet<String> = tokenize(&trace_profile(tables)).into_iter().collect();
    // Document frequency over the context corpus.
    let docs: Vec<(usize, HashSet<String>)> = contexts
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let spec = c.spec();
            let mut text = spec.title.clone();
            for k in &spec.knowledge {
                text.push(' ');
                text.push_str(&k.text);
            }
            (i, tokenize(&text).into_iter().collect())
        })
        .collect();
    let mut df: HashMap<&String, usize> = HashMap::new();
    for (_, terms) in &docs {
        for t in terms {
            *df.entry(t).or_insert(0) += 1;
        }
    }
    let n_docs = contexts.len().max(1) as f64;
    let mut ranked: Vec<RankedContext> = docs
        .iter()
        .map(|(i, terms)| {
            // Sum matched terms in sorted order: float addition is not
            // associative and HashSet iteration order varies per process.
            let mut matched: Vec<&String> = terms
                .iter()
                .filter(|t| profile_terms.contains(*t))
                .collect();
            matched.sort();
            let score: f64 = matched
                .iter()
                .map(|t| (n_docs / *df.get(*t).unwrap_or(&1) as f64).ln() + 1.0)
                .sum();
            RankedContext {
                id: contexts[*i].id,
                score,
            }
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(b.id))
    });
    ranked
}

/// Keep the `k` most relevant contexts for this trace.
#[must_use]
pub fn select_contexts(
    contexts: Vec<IssueContext>,
    tables: &TableSet,
    k: usize,
) -> Vec<IssueContext> {
    let ranking = rank_contexts(&contexts, tables);
    let keep: HashSet<&str> = ranking.iter().take(k).map(|r| r.id).collect();
    contexts
        .into_iter()
        .filter(|c| keep.contains(c.id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::builtin_contexts;
    use extractor::extract_tables;
    use iosim::{SimConfig, Simulation};

    fn small_seq_trace() -> TableSet {
        let mut sim = Simulation::new(SimConfig::default().with_ranks(4));
        let f = sim.posix_open_all("/f").unwrap();
        for i in 0..64u64 {
            for r in 0..4u32 {
                sim.posix_write(r, f, u64::from(r) * (1 << 20) + i * 2048, 2048)
                    .unwrap();
            }
        }
        extract_tables(&sim.finish())
    }

    fn metadata_trace() -> TableSet {
        let mut sim = Simulation::new(SimConfig::default().with_ranks(2));
        for i in 0..64u64 {
            let path = format!("/meta/file{i}");
            let h = sim.posix_open(0, &path).unwrap();
            sim.posix_write(0, h, 0, 64).unwrap();
            sim.posix_close(0, h).unwrap();
            sim.posix_stat(1, &path).unwrap();
        }
        extract_tables(&sim.finish())
    }

    #[test]
    fn profile_mentions_key_properties() {
        let p = trace_profile(&small_seq_trace());
        assert!(p.contains("small"), "{p}");
        assert!(p.contains("sequential"), "{p}");
        assert!(p.contains("no mpi-io"), "{p}");
    }

    #[test]
    fn small_io_ranks_high_on_small_sequential_trace() {
        let ranking = rank_contexts(&builtin_contexts(), &small_seq_trace());
        let pos = ranking.iter().position(|r| r.id == "small-io").unwrap();
        assert!(pos < 4, "small-io ranked {pos}: {ranking:?}");
    }

    #[test]
    fn metadata_ranks_high_on_metadata_trace() {
        let ranking = rank_contexts(&builtin_contexts(), &metadata_trace());
        let pos = ranking
            .iter()
            .position(|r| r.id == "metadata-load")
            .unwrap();
        let small_pos = ranking.iter().position(|r| r.id == "small-io").unwrap();
        assert!(pos < 5, "metadata-load ranked {pos}: {ranking:?}");
        // Both workloads have small ops, but the metadata trace should rank
        // metadata-load better than the streaming trace does.
        let streaming_ranking = rank_contexts(&builtin_contexts(), &small_seq_trace());
        let streaming_pos = streaming_ranking
            .iter()
            .position(|r| r.id == "metadata-load")
            .unwrap();
        assert!(pos <= streaming_pos, "{pos} vs {streaming_pos}");
        let _ = small_pos;
    }

    #[test]
    fn select_keeps_top_k() {
        let tables = small_seq_trace();
        let selected = select_contexts(builtin_contexts(), &tables, 3);
        assert_eq!(selected.len(), 3);
        assert!(selected.iter().any(|c| c.id == "small-io"));
    }

    #[test]
    fn empty_tables_rank_all_without_panicking() {
        let ranking = rank_contexts(&builtin_contexts(), &TableSet::default());
        assert_eq!(ranking.len(), builtin_contexts().len());
    }

    #[test]
    fn scores_deterministic() {
        let tables = small_seq_trace();
        let a = rank_contexts(&builtin_contexts(), &tables);
        let b = rank_contexts(&builtin_contexts(), &tables);
        assert_eq!(a, b);
    }
}
