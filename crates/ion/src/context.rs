//! The *I/O performance issue contexts* — ION's knowledge base.
//!
//! Following the paper's divide-and-conquer design, each context focuses on
//! one I/O issue type and is used to build one prompt. A context is prose
//! an LLM can learn from in-context, with the analysis procedure embedded
//! as machine-readable directives (see [`ion_llm::knowledge`]). The
//! `MODULES:` header is the *predefined mapping of necessary modules*: the
//! prompt builder only attaches (and describes) the CSV files an issue
//! actually needs.
//!
//! Thresholds deliberately live *here*, in editable text, not in code —
//! and the few system parameters they reference (`rpc_size`,
//! `stripe_size`, `nprocs`) are input hyper-parameters supplied per trace,
//! exactly as the paper describes.

use ion_llm::knowledge::{parse_context, IssueContextSpec};
use std::fmt;

/// One issue context: identifier plus the full context text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssueContext {
    /// Stable identifier (`small-io`, `misaligned-io`, …).
    pub id: &'static str,
    /// Full context text (prose + directives).
    pub text: String,
}

impl IssueContext {
    /// Parse the machine-readable layer of this context.
    #[must_use]
    pub fn spec(&self) -> IssueContextSpec {
        parse_context(&self.text).unwrap_or_default()
    }

    /// Modules this context needs attached, from its `MODULES:` header.
    #[must_use]
    pub fn modules(&self) -> Vec<String> {
        self.spec().modules
    }

    /// Revision stamp of this context's knowledge (see
    /// [`ContextRevision`]).
    #[must_use]
    pub fn revision(&self) -> ContextRevision {
        ContextRevision::of(&self.text)
    }
}

/// A stable fingerprint of one issue context's editable knowledge.
///
/// The diagnosis is a pure function of (trace, issue context, model), so
/// reports stamp each diagnosis with the revision of the context that
/// produced it, and the analysis store keys cached diagnoses by it —
/// editing one context invalidates exactly that issue's cache.
///
/// The hash is FNV-1a/128 over *normalized* knowledge statements: lines
/// with trailing whitespace trimmed, CR/LF differences erased, leading
/// and trailing blank lines dropped and internal blank runs collapsed.
/// Cosmetic whitespace edits therefore keep the revision; any visible
/// byte change — prose, thresholds, directives — changes it. The value
/// is platform- and run-independent, so it is safe to persist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContextRevision(u128);

impl ContextRevision {
    const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

    /// Hash `text`'s normalized statements.
    #[must_use]
    pub fn of(text: &str) -> ContextRevision {
        let mut hash = Self::FNV_OFFSET;
        let mut absorb = |byte: u8| {
            hash ^= u128::from(byte);
            hash = hash.wrapping_mul(Self::FNV_PRIME);
        };
        let mut pending_blank = false;
        let mut started = false;
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() {
                pending_blank = started;
                continue;
            }
            if pending_blank {
                absorb(b'\n');
                pending_blank = false;
            }
            started = true;
            for b in line.bytes() {
                absorb(b);
            }
            absorb(b'\n');
        }
        ContextRevision(hash)
    }

    /// Full 32-char hex rendering.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Abbreviated rendering for reports (12 chars).
    #[must_use]
    pub fn short(&self) -> String {
        self.hex()[..12].to_owned()
    }
}

impl fmt::Display for ContextRevision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

const SMALL_IO: &str = r#"
ISSUE: small-io
TITLE: Small I/O operations
MODULES: DXT, POSIX

Parallel file systems move data between clients and servers in RPCs with a
fixed maximum payload (the rpc_size parameter, 4 MiB on the evaluated
Lustre system). Requests much smaller than the RPC size pay the full
per-RPC latency for a fraction of the payload, so many small requests
underutilize every round trip and are a classic cause of poor throughput.
Whether small requests actually hurt depends on their spatial pattern:
client-side aggregation (by the file system client, by MPI-IO collective
buffering, or by simple application-level buffering) can merge requests
that are consecutive — each starting exactly where the previous one ended —
into RPC-sized transfers, largely hiding the inefficiency. Small requests
scattered at random offsets cannot be merged and their cost is fully
realized. Therefore: measure how many operations are smaller than the RPC
size, then qualify the finding by how consecutive/sequential they are.

COMPUTE dxt_sizes:
  LOAD DXT
  FILTER module == 'X_POSIX'
  DERIVE small = length < rpc_size
  AGG total_ops = count(), small_ops = sum(small), mean_size = mean(length), total_bytes = sum(length)
  LET small_pct = 100 * small_ops / max(total_ops, 1)
  EMIT total_ops, small_ops, small_pct, mean_size, total_bytes
END

COMPUTE posix_pattern:
  LOAD POSIX
  AGG reads = sum(POSIX_READS), writes = sum(POSIX_WRITES), consec = sum(POSIX_CONSEC_READS + POSIX_CONSEC_WRITES), seq = sum(POSIX_SEQ_READS + POSIX_SEQ_WRITES)
  LET rw_ops = reads + writes
  LET consec_pct = 100 * consec / max(rw_ops, 1)
  LET seq_pct = 100 * seq / max(rw_ops, 1)
  EMIT rw_ops, consec_pct, seq_pct
END

COMPUTE dxt_small_volume:
  LOAD DXT
  FILTER module == 'X_POSIX'
  DERIVE small_len = if(length < rpc_size, length, 0)
  AGG small_bytes = sum(small_len), all_bytes_dxt = sum(length)
  LET small_vol_pct = 100 * small_bytes / max(all_bytes_dxt, 1)
  EMIT small_bytes, small_vol_pct
END

CONCLUDE IF small_pct > 50 && total_ops > 0 SEVERITY high: "{small_ops:int} of {total_ops:int} I/O operations ({small_pct:.2}%, mean size {mean_size:human}) are smaller than the configured RPC size of {rpc_size:human}, underutilizing each client-server round trip"
MITIGATE IF small_pct > 50 && consec_pct >= 50: "however, {consec_pct:.2}% of operations are consecutive (each starting where the previous ended), so high aggregation into RPC-sized transfers is possible and the small requests need not cause inefficiency"
MITIGATE IF small_pct > 50 && consec_pct < 50 && small_vol_pct < 5: "however, these small operations move only {small_vol_pct:.2}% of the total data volume, so their impact on the application's overall I/O performance is limited"
NOTE IF small_pct > 50 && consec_pct < 50 && seq_pct < 50: "the small operations are largely non-sequential, so they cannot be aggregated and their latency cost is fully realized by the application"
NOTE IF small_pct <= 50 && total_ops > 0: "transfer sizes are healthy: only {small_pct:.2}% of {total_ops:int} operations fall below the RPC size"
"#;

const MISALIGNED_IO: &str = r#"
ISSUE: misaligned-io
TITLE: Misaligned I/O
MODULES: POSIX, LUSTRE

On striped file systems every access that does not start on a stripe
boundary (the stripe_size parameter) can touch two object storage targets
or force the server to perform a read-modify-write within a stripe, adding
latency and, for shared files, widening the window for lock contention.
Darshan counts such accesses in POSIX_FILE_NOT_ALIGNED (the file alignment
recorded in POSIX_FILE_ALIGNMENT equals the stripe size on Lustre).
Memory misalignment of the client buffer (POSIX_MEM_NOT_ALIGNED) adds a
smaller client-side copy cost. A high fraction of misaligned accesses is
one of the strongest indicators of addressable inefficiency, because it
can usually be fixed by padding records or adjusting the access layout.

COMPUTE alignment:
  LOAD POSIX
  AGG ops = sum(POSIX_READS + POSIX_WRITES), unaligned = sum(POSIX_FILE_NOT_ALIGNED), mem_unaligned = sum(POSIX_MEM_NOT_ALIGNED)
  LET file_misaligned_pct = 100 * unaligned / max(ops, 1)
  LET mem_misaligned_pct = 100 * mem_unaligned / max(ops, 1)
  EMIT ops, unaligned, file_misaligned_pct, mem_unaligned, mem_misaligned_pct
END

CONCLUDE IF file_misaligned_pct > 10 SEVERITY high: "significant file misalignment detected: {unaligned:int} operations ({file_misaligned_pct:.2}% of {ops:int}) do not start on the {stripe_size:human} stripe boundary, which may contribute to performance degradation through extra server-side work and increased contention"
CONCLUDE IF mem_misaligned_pct > 10 SEVERITY medium: "{mem_unaligned:int} operations ({mem_misaligned_pct:.2}%) use misaligned memory buffers, adding client-side copy overhead"
NOTE IF file_misaligned_pct <= 10 && ops > 0: "{file_misaligned_pct:.2}% misalignment rate for a total of {ops:int} I/O operations — file alignment is not a concern"
"#;

const SHARED_FILE: &str = r#"
ISSUE: shared-file-contention
TITLE: Shared file access and stripe contention
MODULES: POSIX, DXT, LUSTRE

When multiple ranks access one shared file, the risk is not sharing per se
but *overlap within stripes*: Lustre serializes conflicting access to a
stripe through its extent lock manager, so two ranks working in the same
stripe ping-pong the lock (revoke + re-grant round trips) while ranks that
stay in disjoint stripes proceed without any conflict. The correct
analysis is therefore two-stage: first establish whether files are shared
by several ranks at all, then check whether traced operations from
different ranks actually land in the same stripe (offset divided by
stripe_size). A shared file without stripe overlap is benign; interleaved
small records on a shared file are the worst case.

COMPUTE sharing:
  LOAD POSIX
  FILTER rank >= 0
  GROUP file_name AGG nranks = distinct(rank), file_ops = sum(POSIX_READS + POSIX_WRITES)
  DERIVE shared = nranks > 1
  AGG shared_files = sum(shared), total_files = count(), max_ranks_per_file = max(nranks)
  EMIT shared_files, total_files, max_ranks_per_file
END

COMPUTE stripe_overlap:
  LOAD DXT
  DERIVE stripe = floor(offset / stripe_size)
  GROUP file_name, stripe AGG ranks_in_stripe = distinct(rank), stripe_ops = count()
  DERIVE conflict_ops = if(ranks_in_stripe > 1, stripe_ops, 0)
  AGG conflicted_ops = sum(conflict_ops), all_ops = sum(stripe_ops)
  LET same_stripe_pct = 100 * conflicted_ops / max(all_ops, 1)
  EMIT conflicted_ops, all_ops, same_stripe_pct
END

COMPUTE layout_crowding:
  LOAD POSIX
  FILTER rank >= 0
  GROUP file_id AGG franks = distinct(rank)
  JOIN LUSTRE ON file_id
  DERIVE crowded = franks > LUSTRE_STRIPE_WIDTH
  AGG crowded_files = sum(crowded), max_crowding = max(franks / max(LUSTRE_STRIPE_WIDTH, 1))
  EMIT crowded_files, max_crowding
END

CONCLUDE IF shared_files > 0 && same_stripe_pct > 20 SEVERITY high: "a shared file is accessed by up to {max_ranks_per_file:int} ranks and {same_stripe_pct:.2}% of traced operations fall within stripes touched by multiple ranks — there is evidence of overlap indicating stripe conflicts and extent-lock contention at the OSTs"
MITIGATE IF shared_files > 0 && same_stripe_pct <= 20: "a shared file is accessed by up to {max_ranks_per_file:int} ranks, but analysis found essentially no overlapping operations within the same stripe ({same_stripe_pct:.2}%), hence shared access should not lead to stripe conflicts or excessive lock overhead at the OSTs"
NOTE IF shared_files == 0 && total_files > 0: "each of the {total_files:int} files is accessed exclusively by a single rank (file-per-process pattern), so no shared-file contention is possible"
NOTE IF crowded_files > 0 && max_crowding > 2: "{crowded_files:int} file(s) are accessed by {max_crowding:.0}x more ranks than they have stripes, so several ranks necessarily target the same OSTs even when their extents do not conflict — widening the stripe layout would increase server-side parallelism"
"#;

const RANDOM_ACCESS: &str = r#"
ISSUE: random-access
TITLE: Random access patterns
MODULES: POSIX, DXT

Sequential access lets the file system prefetch, merge and stream;
random access defeats all three. Darshan's POSIX_SEQ_READS/WRITES count
operations at an offset at or past the previous operation's end, so
operations beyond that count are random (back-seeking or scattered).
Random access is only a problem in proportion to its share of operations
and of moved data: a handful of random reads per rank against a large
sequential workload is noise and should not be escalated — contextualize
the count against the number of ranks performing I/O and the volume of
data these operations carry.

COMPUTE pattern:
  LOAD POSIX
  FILTER rank >= 0
  AGG reads = sum(POSIX_READS), writes = sum(POSIX_WRITES), seq_r = sum(POSIX_SEQ_READS), seq_w = sum(POSIX_SEQ_WRITES), bytes = sum(POSIX_BYTES_READ + POSIX_BYTES_WRITTEN), nranks = distinct(rank)
  LET ops = reads + writes
  LET rand_ops = ops - seq_r - seq_w
  LET random_pct = 100 * rand_ops / max(ops, 1)
  LET rand_reads = reads - seq_r
  LET rand_read_pct = 100 * rand_reads / max(reads, 1)
  LET seq_only_pct = 100 - random_pct
  LET rand_per_rank = rand_ops / max(nranks, 1)
  EMIT ops, rand_ops, random_pct, rand_reads, rand_read_pct, seq_only_pct, rand_per_rank, nranks, bytes
END

COMPUTE rand_volume:
  LOAD DXT
  FILTER module == 'X_POSIX' && op == 'read'
  AGG mean_read_len = mean(length), read_ops_dxt = count()
  LET rand_bytes_est = rand_reads * mean_read_len
  LET rand_volume_pct = 100 * rand_bytes_est / max(bytes, 1)
  EMIT mean_read_len, rand_bytes_est, rand_volume_pct
END

CONCLUDE IF (random_pct > 30 || rand_read_pct > 30) && ops >= 20 SEVERITY medium: "{rand_ops:int} operations ({random_pct:.2}% overall; {rand_read_pct:.2}% of reads) exhibit random (non-sequential) access patterns, which prevent prefetching and request aggregation — there could be a performance concern related to random access"
MITIGATE IF (random_pct > 30 || rand_read_pct > 30) && ops >= 20 && rand_per_rank < 50 && rand_volume_pct < 20: "however, the random-access operation count per rank ({rand_per_rank:.1}) and the total volume of data transferred through these patterns ({rand_volume_pct:.2}% of bytes) are low, so they should not affect the entire application's I/O performance"
NOTE IF random_pct <= 30 && ops > 0: "access is predominantly sequential ({seq_only_pct:.2}% of operations at or past the previous offset)"
"#;

const LOAD_IMBALANCE: &str = r#"
ISSUE: load-imbalance
TITLE: Load imbalance across ranks
MODULES: POSIX

In a parallel job the slowest rank gates every synchronization point, so
skew in I/O volume or operation count across ranks wastes the rest of the
machine. Classic causes include rank 0 funnelling all output, fill values
written by a single rank, and decomposition remainders. Compare the
heaviest rank against the mean; also look for a *subset* of ranks more
than one standard deviation above the mean doing the bulk of the work —
such a subset may be intentional (e.g. designated aggregators in the
application's algorithm) and deserves investigation rather than an alarm.

COMPUTE per_rank:
  LOAD POSIX
  FILTER rank >= 0
  GROUP rank AGG rbytes = sum(POSIX_BYTES_READ + POSIX_BYTES_WRITTEN), rops = sum(POSIX_READS + POSIX_WRITES)
  AGG nranks = count(), max_bytes = max(rbytes), mean_bytes = mean(rbytes), std_bytes = std(rbytes), total_bytes = sum(rbytes), max_ops = max(rops), mean_ops = mean(rops)
  LET imbalance_pct = 100 * (max_bytes - mean_bytes) / max(max_bytes, 1)
  EMIT nranks, max_bytes, mean_bytes, std_bytes, total_bytes, imbalance_pct, max_ops, mean_ops
END

COMPUTE heaviest:
  LOAD POSIX
  FILTER rank >= 0
  GROUP rank AGG rbytes = sum(POSIX_BYTES_READ + POSIX_BYTES_WRITTEN)
  SORT rbytes DESC
  LIMIT 1
  AGG heaviest_rank = rank, heaviest_bytes = max(rbytes)
  EMIT heaviest_rank, heaviest_bytes
END

COMPUTE hot_subset:
  LOAD POSIX
  FILTER rank >= 0
  GROUP rank AGG rbytes = sum(POSIX_BYTES_READ + POSIX_BYTES_WRITTEN)
  DERIVE hot = rbytes > mean_bytes + std_bytes
  DERIVE hot_vol = if(hot, rbytes, 0)
  AGG hot_ranks = sum(hot), hot_total = sum(hot_vol)
  LET hot_share_pct = 100 * hot_total / max(total_bytes, 1)
  EMIT hot_ranks, hot_total, hot_share_pct
END

CONCLUDE IF imbalance_pct > 30 && nranks > 1 && !(hot_ranks >= 2 && hot_ranks * 4 < nranks && hot_share_pct > 90) SEVERITY high: "load imbalance of {imbalance_pct:.2}% detected: rank {heaviest_rank:int} transfers {heaviest_bytes:human} versus a mean of {mean_bytes:human} per rank, so it is doing much more work than the rest of the job"
MITIGATE IF imbalance_pct > 30 && nranks > 8 && hot_ranks >= 2 && hot_ranks * 4 < nranks && hot_share_pct > 50: "a subset of {hot_ranks:int} out of {nranks:int} ranks performs {hot_share_pct:.2}% of the I/O volume, more than one standard deviation above the mean; rather than a defect, it is worth investigating whether this behavior is intentional (e.g. aggregator ranks in the application's algorithm) or can be optimized for better load distribution"
NOTE IF imbalance_pct <= 30 && nranks > 1: "I/O volume is well balanced across the {nranks:int} ranks ({imbalance_pct:.2}% deviation of the heaviest rank from the mean)"
"#;

const METADATA_LOAD: &str = r#"
ISSUE: metadata-load
TITLE: Metadata load
MODULES: POSIX, STDIO

Every open, stat, seek and sync is a round trip to the metadata server,
which is a single shared service: storms of metadata operations from many
ranks queue there and slow the whole machine, not just the offending job.
Workloads that repeatedly open, read a few bytes, and close many small
files (or re-open the same files over and over) are metadata-bound even
though they move little data. Compare metadata time against data time and
look at opens per file to detect this profile.

COMPUTE meta:
  LOAD POSIX
  AGG opens = sum(POSIX_OPENS), stats = sum(POSIX_STATS), seeks = sum(POSIX_SEEKS), fsyncs = sum(POSIX_FSYNCS), rw = sum(POSIX_READS + POSIX_WRITES), meta_time = sum(POSIX_F_META_TIME), rw_time = sum(POSIX_F_READ_TIME + POSIX_F_WRITE_TIME), files = distinct(file_name)
  LET meta_ops = opens + stats + seeks + fsyncs
  LET meta_time_pct = 100 * meta_time / max(meta_time + rw_time, 0.000001)
  LET opens_per_file = opens / max(files, 1)
  LET meta_ops_ratio = meta_ops / max(rw, 1)
  EMIT opens, stats, seeks, fsyncs, rw, meta_ops, meta_time_pct, files, opens_per_file, meta_ops_ratio
END

CONCLUDE IF meta_time_pct > 30 && meta_ops > 50 SEVERITY high: "the application exhibits high metadata I/O behaviour: {meta_ops:int} metadata operations consume {meta_time_pct:.2}% of its I/O time, which could place unnecessary load on the metadata servers and potentially create a bottleneck in the system"
CONCLUDE IF opens_per_file > 8 SEVERITY medium: "files are re-opened repeatedly ({opens_per_file:.1} opens per file on average across {files:int} files), multiplying metadata traffic that caching or keeping files open would avoid"
NOTE IF files > 64: "the job touches {files:int} distinct files"
NOTE IF meta_time_pct <= 30 && rw > 0: "metadata time is modest ({meta_time_pct:.2}% of I/O time)"
"#;

const INTERFACE_USAGE: &str = r#"
ISSUE: interface-usage
TITLE: I/O interface usage
MODULES: POSIX

HPC applications running with many ranks should normally reach the file
system through a parallel I/O library: MPI-IO (or HDF5/PnetCDF above it)
can coordinate ranks, aggregate small requests through collective
buffering, and apply hints — none of which raw POSIX calls provide. A
multi-rank job whose trace shows only POSIX activity (the has_mpiio
parameter reports whether the MPI-IO module recorded anything) is leaving
these optimizations on the table even when its current pattern performs
acceptably.

COMPUTE usage:
  LOAD POSIX
  FILTER rank >= 0
  AGG posix_ranks = distinct(rank), posix_ops = sum(POSIX_READS + POSIX_WRITES)
  EMIT posix_ranks, posix_ops
END

CONCLUDE IF has_mpiio == 0 && nprocs > 1 && posix_ops > 0 SEVERITY medium: "the application is only using POSIX I/O calls and is not employing MPI-IO, despite the presence of multiple ranks ({nprocs:int}) performing I/O; adopting MPI-IO's collective and non-blocking operations could aggregate requests and coordinate file access"
NOTE IF has_mpiio == 1: "the application uses the MPI-IO interface in addition to POSIX"
NOTE IF nprocs <= 1: "single-process job: parallel I/O libraries would not help"
"#;

const COLLECTIVE_IO: &str = r#"
ISSUE: collective-io
TITLE: Collective I/O usage
MODULES: MPIIO

MPI-IO's collective operations (MPI_File_write_at_all and friends) run
two-phase I/O: ranks exchange data so a few aggregators issue large,
stripe-aligned accesses. An application that opens files collectively but
then issues only *independent* MPI-IO operations forfeits this
aggregation — a pattern famously produced by an HDF5 defect in which
nominally collective dataset writes decomposed into independent small
operations. Check the ratio of collective to independent operations.

COMPUTE coll:
  LOAD MPIIO
  AGG coll_ops = sum(MPIIO_COLL_READS + MPIIO_COLL_WRITES), indep_ops = sum(MPIIO_INDEP_READS + MPIIO_INDEP_WRITES), coll_opens = sum(MPIIO_COLL_OPENS)
  LET indep_pct = 100 * indep_ops / max(coll_ops + indep_ops, 1)
  EMIT coll_ops, indep_ops, indep_pct, coll_opens
END

CONCLUDE IF indep_ops > 0 && coll_ops == 0 && coll_opens > 0 SEVERITY high: "the application opens files collectively but issues only independent MPI-IO operations ({indep_ops:int}, 100% independent); collective buffering is not engaged, so requests reach the file system unaggregated — this matches the signature of collective calls decomposing into independent operations (e.g. the known HDF5 collective-write defect)"
CONCLUDE IF indep_pct > 80 && coll_ops > 0 SEVERITY medium: "{indep_pct:.2}% of MPI-IO data operations are independent; collective I/O is barely used"
NOTE IF coll_ops > 0 && indep_pct <= 80: "{coll_ops:int} collective operations benefit from two-phase aggregation"
"#;

const STRAGGLERS: &str = r#"
ISSUE: stragglers
TITLE: Straggling ranks
MODULES: POSIX

Even with balanced volume, one rank can spend far longer in I/O than its
peers — an overloaded OST, lock convoying or an unlucky placement will do
it. Because bulk-synchronous applications wait at barriers, the slowest
rank's I/O time is the job's I/O time. Flag ranks whose total I/O time is
far above the mean; report who they are so the user can correlate with
placement.

COMPUTE rank_times:
  LOAD POSIX
  FILTER rank >= 0
  GROUP rank AGG rtime = sum(POSIX_F_READ_TIME + POSIX_F_WRITE_TIME + POSIX_F_META_TIME)
  AGG nranks_t = count(), max_time = max(rtime), mean_time = mean(rtime), std_time = std(rtime)
  EMIT nranks_t, max_time, mean_time, std_time
END

COMPUTE slowest:
  LOAD POSIX
  FILTER rank >= 0
  GROUP rank AGG rtime = sum(POSIX_F_READ_TIME + POSIX_F_WRITE_TIME + POSIX_F_META_TIME)
  SORT rtime DESC
  LIMIT 1
  AGG slow_rank = rank
  EMIT slow_rank
END

CONCLUDE IF nranks_t > 1 && max_time > mean_time * 1.5 && max_time > 0.001 SEVERITY medium: "rank {slow_rank:int} spends {max_time:.3}s in I/O versus a mean of {mean_time:.3}s across {nranks_t:int} ranks — a straggler that will delay every synchronization point"
NOTE IF nranks_t > 1 && max_time <= mean_time * 1.5: "per-rank I/O times are uniform (max {max_time:.3}s vs mean {mean_time:.3}s)"
"#;

const BURSTY_IO: &str = r#"
ISSUE: bursty-io
TITLE: Bursty I/O phases
MODULES: HEATMAP

Bulk-synchronous applications alternate compute phases with I/O bursts:
checkpoints, analysis dumps, restart reads. The file system then sees long
idle stretches punctuated by stampedes in which every rank hits the
servers at once — exactly when contention is worst. The temporal heatmap
(bytes per time bin per rank) reveals this profile: a small fraction of
bins carrying most of the volume means bursty I/O, which burst-buffer
staging or asynchronous (non-blocking) I/O can smooth; volume spread
evenly over the runtime means the application already overlaps I/O with
computation.

COMPUTE temporal:
  LOAD HEATMAP
  FILTER bin_start < runtime
  DERIVE bin_bytes_rw = read_bytes + write_bytes
  GROUP bin AGG bin_total = sum(bin_bytes_rw)
  AGG nbins_hm = count(), total_hm = sum(bin_total), peak_bin = max(bin_total)
  EMIT nbins_hm, total_hm, peak_bin
END

COMPUTE activity:
  LOAD HEATMAP
  FILTER bin_start < runtime
  DERIVE bin_bytes_rw = read_bytes + write_bytes
  GROUP bin AGG bin_total = sum(bin_bytes_rw)
  DERIVE active = bin_total > 0
  AGG active_bins = sum(active)
  LET active_pct = 100 * active_bins / max(nbins_hm, 1)
  LET peak_share = 100 * peak_bin / max(total_hm, 1)
  EMIT active_bins, active_pct, peak_share
END

CONCLUDE IF active_pct < 20 && nbins_hm >= 8 && total_hm > 0 SEVERITY low: "I/O is highly bursty: only {active_pct:.1}% of the runtime has any I/O at all, and the peak time bin alone carries {peak_share:.1}% of all bytes — burst staging or asynchronous I/O could smooth the load on the file system"
NOTE IF active_pct >= 20 && total_hm > 0: "I/O volume is spread over time ({active_pct:.1}% of bins active; the peak bin carries {peak_share:.1}% of bytes)"
"#;

/// The built-in issue contexts, in analysis order.
#[must_use]
pub fn builtin_contexts() -> Vec<IssueContext> {
    vec![
        IssueContext {
            id: "small-io",
            text: SMALL_IO.to_owned(),
        },
        IssueContext {
            id: "misaligned-io",
            text: MISALIGNED_IO.to_owned(),
        },
        IssueContext {
            id: "shared-file-contention",
            text: SHARED_FILE.to_owned(),
        },
        IssueContext {
            id: "random-access",
            text: RANDOM_ACCESS.to_owned(),
        },
        IssueContext {
            id: "load-imbalance",
            text: LOAD_IMBALANCE.to_owned(),
        },
        IssueContext {
            id: "metadata-load",
            text: METADATA_LOAD.to_owned(),
        },
        IssueContext {
            id: "interface-usage",
            text: INTERFACE_USAGE.to_owned(),
        },
        IssueContext {
            id: "collective-io",
            text: COLLECTIVE_IO.to_owned(),
        },
        IssueContext {
            id: "stragglers",
            text: STRAGGLERS.to_owned(),
        },
        IssueContext {
            id: "bursty-io",
            text: BURSTY_IO.to_owned(),
        },
    ]
}

/// Look a built-in context up by id.
#[must_use]
pub fn builtin_context(id: &str) -> Option<IssueContext> {
    builtin_contexts().into_iter().find(|c| c.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ion_llm::iql::parse_program;

    #[test]
    fn ten_contexts_registered() {
        assert_eq!(builtin_contexts().len(), 10);
    }

    #[test]
    fn ids_match_issue_headers() {
        for c in builtin_contexts() {
            let spec = c.spec();
            assert_eq!(spec.issue, c.id, "ISSUE header mismatch in {}", c.id);
            assert!(!spec.title.is_empty(), "{} missing TITLE", c.id);
            assert!(!spec.modules.is_empty(), "{} missing MODULES", c.id);
            assert!(
                !spec.knowledge.is_empty(),
                "{} has no prose knowledge",
                c.id
            );
        }
    }

    #[test]
    fn every_compute_block_parses_as_iql() {
        for c in builtin_contexts() {
            let spec = c.spec();
            assert!(!spec.computes.is_empty(), "{} has no computes", c.id);
            for comp in &spec.computes {
                parse_program(&comp.source)
                    .unwrap_or_else(|e| panic!("{}::{} fails to parse: {e}", c.id, comp.name));
            }
        }
    }

    #[test]
    fn every_rule_condition_parses() {
        for c in builtin_contexts() {
            for rule in c.spec().rules {
                ion_llm::iql::parse_expression(&rule.condition).unwrap_or_else(|e| {
                    panic!("{} rule `{}` fails to parse: {e}", c.id, rule.condition)
                });
            }
        }
    }

    #[test]
    fn every_context_has_conclude_rule() {
        for c in builtin_contexts() {
            let has_conclude = c
                .spec()
                .rules
                .iter()
                .any(|r| matches!(r.kind, ion_llm::knowledge::RuleKind::Conclude { .. }));
            assert!(has_conclude, "{} has no CONCLUDE rule", c.id);
        }
    }

    #[test]
    fn module_mapping_covers_expected_tables() {
        let ctx = builtin_context("small-io").unwrap();
        assert_eq!(ctx.modules(), vec!["DXT", "POSIX"]);
        let ctx = builtin_context("collective-io").unwrap();
        assert_eq!(ctx.modules(), vec!["MPIIO"]);
    }

    #[test]
    fn lookup_unknown_id_is_none() {
        assert!(builtin_context("nope").is_none());
    }

    #[test]
    fn revisions_are_distinct_across_contexts() {
        let revisions: std::collections::HashSet<_> = builtin_contexts()
            .iter()
            .map(IssueContext::revision)
            .collect();
        assert_eq!(revisions.len(), builtin_contexts().len());
    }

    #[test]
    fn revision_ignores_cosmetic_whitespace() {
        let base = ContextRevision::of("ISSUE: x\n\nknowledge line\n");
        assert_eq!(
            base,
            ContextRevision::of("ISSUE: x \r\n\r\n\r\nknowledge line")
        );
        assert_eq!(
            base,
            ContextRevision::of("\n\nISSUE: x\n\nknowledge line\n\n\n")
        );
    }

    #[test]
    fn revision_changes_on_any_visible_edit() {
        let base = ContextRevision::of("ISSUE: x\nthreshold > 50\n");
        assert_ne!(base, ContextRevision::of("ISSUE: x\nthreshold > 51\n"));
        assert_ne!(
            base,
            ContextRevision::of("ISSUE: x\nthreshold > 50\nnew note\n")
        );
        // Statement boundaries matter: joining lines is a real edit.
        assert_ne!(base, ContextRevision::of("ISSUE: x threshold > 50\n"));
    }

    #[test]
    fn revision_hex_is_stable() {
        // Pinned value: the revision is persisted in store keys, so the
        // hash function must never drift silently.
        assert_eq!(ContextRevision::of("a\nb\n").hex().len(), 32);
        assert_eq!(ContextRevision::of(""), ContextRevision::of("\n \n"));
    }

    #[test]
    fn templates_reference_only_emitted_or_param_names() {
        // Every {placeholder} must be an emitted metric or a known param.
        let known_params = ["rpc_size", "stripe_size", "nprocs", "has_mpiio"];
        for c in builtin_contexts() {
            let spec = c.spec();
            let mut names: Vec<String> = spec
                .computes
                .iter()
                .flat_map(|comp| {
                    comp.source
                        .lines()
                        .filter_map(|l| l.trim().strip_prefix("EMIT "))
                        .flat_map(|names| names.split(','))
                        .map(|n| n.trim().to_owned())
                        .collect::<Vec<_>>()
                })
                .collect();
            names.extend(known_params.iter().map(|s| (*s).to_owned()));
            for rule in &spec.rules {
                let mut rest = rule.template.as_str();
                while let Some(start) = rest.find('{') {
                    let after = &rest[start + 1..];
                    let end = after.find('}').expect("unclosed placeholder");
                    let inner = &after[..end];
                    let name = inner.split(':').next().unwrap().trim();
                    assert!(
                        names.iter().any(|n| n == name),
                        "{}: template references unknown metric {{{name}}}",
                        c.id
                    );
                    rest = &after[end..];
                }
            }
        }
    }
}
