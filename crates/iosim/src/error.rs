//! Simulator error type.

use std::fmt;

/// Errors returned by simulator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An operation referenced a file handle that is not open.
    BadHandle {
        /// The offending handle value.
        handle: u64,
    },
    /// An operation referenced a rank outside the job.
    BadRank {
        /// The offending rank.
        rank: u32,
        /// Number of ranks in the job.
        nprocs: u32,
    },
    /// A path was opened that was never created and creation was not requested.
    NoSuchFile {
        /// The path requested.
        path: String,
    },
    /// A read extended past the end of file.
    ReadPastEof {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        length: u64,
        /// Current file size.
        size: u64,
    },
    /// The rank attempted I/O on a file it has not opened.
    NotOpenOnRank {
        /// The rank that issued the operation.
        rank: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadHandle { handle } => write!(f, "file handle {handle} is not open"),
            SimError::BadRank { rank, nprocs } => {
                write!(f, "rank {rank} outside job of {nprocs} processes")
            }
            SimError::NoSuchFile { path } => write!(f, "no such file: {path}"),
            SimError::ReadPastEof {
                offset,
                length,
                size,
            } => write!(
                f,
                "read of {length} bytes at offset {offset} past end of {size}-byte file"
            ),
            SimError::NotOpenOnRank { rank } => {
                write!(f, "file not open on rank {rank}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            SimError::BadHandle { handle: 3 },
            SimError::BadRank { rank: 9, nprocs: 4 },
            SimError::NoSuchFile { path: "/x".into() },
            SimError::ReadPastEof {
                offset: 10,
                length: 5,
                size: 2,
            },
            SimError::NotOpenOnRank { rank: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
