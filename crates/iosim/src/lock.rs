//! Extent lock manager: per-stripe lock ownership and transfer accounting.
//!
//! Lustre serializes conflicting access to a stripe through the lock
//! manager: when rank B writes a stripe whose lock rank A holds, the lock
//! must be revoked and re-granted, costing a round trip. Shared-file
//! workloads whose ranks interleave within stripes (ior-hard) generate lock
//! ping-pong; non-overlapping access patterns (one stripe per rank) do not —
//! the exact distinction ION draws in the IOR-Easy-1MB shared-file case.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifies a lockable extent: one stripe of one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExtentId {
    /// File the stripe belongs to.
    pub file: u64,
    /// Stripe index within the file.
    pub stripe: u64,
}

/// Tracks which rank holds the lock on each stripe and counts transfers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LockManager {
    owners: HashMap<ExtentId, u32>,
    /// Number of lock grants to previously-unlocked extents.
    pub grants: u64,
    /// Number of lock transfers (revoke + re-grant) due to conflicts.
    pub transfers: u64,
}

impl LockManager {
    /// Create an empty lock manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire the lock on `extent` for `rank`.
    ///
    /// Returns `true` when the acquisition required revoking another rank's
    /// lock (a conflict), `false` when it was free or already held.
    pub fn acquire(&mut self, extent: ExtentId, rank: u32) -> bool {
        match self.owners.get(&extent) {
            Some(&owner) if owner == rank => false,
            Some(_) => {
                self.owners.insert(extent, rank);
                self.transfers += 1;
                true
            }
            None => {
                self.owners.insert(extent, rank);
                self.grants += 1;
                false
            }
        }
    }

    /// Release all locks held on `file` (e.g. at close/unlink).
    pub fn release_file(&mut self, file: u64) {
        self.owners.retain(|e, _| e.file != file);
    }

    /// Current owner of an extent, if locked.
    #[must_use]
    pub fn owner(&self, extent: ExtentId) -> Option<u32> {
        self.owners.get(&extent).copied()
    }

    /// Number of extents currently locked.
    #[must_use]
    pub fn locked_extents(&self) -> usize {
        self.owners.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(file: u64, stripe: u64) -> ExtentId {
        ExtentId { file, stripe }
    }

    #[test]
    fn first_acquire_is_grant_not_conflict() {
        let mut lm = LockManager::new();
        assert!(!lm.acquire(ext(1, 0), 0));
        assert_eq!(lm.grants, 1);
        assert_eq!(lm.transfers, 0);
    }

    #[test]
    fn reacquire_by_owner_is_free() {
        let mut lm = LockManager::new();
        lm.acquire(ext(1, 0), 0);
        assert!(!lm.acquire(ext(1, 0), 0));
        assert_eq!(lm.grants, 1);
        assert_eq!(lm.transfers, 0);
    }

    #[test]
    fn conflicting_acquire_is_transfer() {
        let mut lm = LockManager::new();
        lm.acquire(ext(1, 0), 0);
        assert!(lm.acquire(ext(1, 0), 1));
        assert!(lm.acquire(ext(1, 0), 0)); // ping-pong back
        assert_eq!(lm.transfers, 2);
        assert_eq!(lm.owner(ext(1, 0)), Some(0));
    }

    #[test]
    fn disjoint_stripes_never_conflict() {
        let mut lm = LockManager::new();
        for rank in 0..4u32 {
            // Each rank works in its own stripe: no transfers.
            for _ in 0..10 {
                assert!(!lm.acquire(ext(1, u64::from(rank)), rank));
            }
        }
        assert_eq!(lm.transfers, 0);
        assert_eq!(lm.grants, 4);
    }

    #[test]
    fn release_file_drops_only_that_file() {
        let mut lm = LockManager::new();
        lm.acquire(ext(1, 0), 0);
        lm.acquire(ext(2, 0), 0);
        lm.release_file(1);
        assert_eq!(lm.owner(ext(1, 0)), None);
        assert_eq!(lm.owner(ext(2, 0)), Some(0));
        assert_eq!(lm.locked_extents(), 1);
    }
}
