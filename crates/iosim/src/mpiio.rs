//! MPI-IO collective buffering (two-phase I/O) planning.
//!
//! ROMIO's collective write path works in two phases: ranks exchange their
//! pieces over the network so that a small set of *aggregator* ranks each
//! owns a large contiguous file region, and the aggregators then issue
//! large, aligned writes. This module contains the pure planning logic —
//! request merging and aggregator assignment — which the engine executes
//! against the file system.

use serde::{Deserialize, Serialize};

/// One rank's contribution to a collective operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectiveRequest {
    /// Issuing rank.
    pub rank: u32,
    /// File offset.
    pub offset: u64,
    /// Length in bytes.
    pub length: u64,
}

/// A contiguous file region assigned to one aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregatorAssignment {
    /// Rank acting as aggregator for this region.
    pub aggregator: u32,
    /// Region offset.
    pub offset: u64,
    /// Region length.
    pub length: u64,
}

/// The plan for one collective operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectivePlan {
    /// Large contiguous accesses the aggregators will issue.
    pub assignments: Vec<AggregatorAssignment>,
    /// Bytes shuffled between ranks in the exchange phase.
    pub exchange_bytes: u64,
    /// Total bytes moved to/from the file system.
    pub file_bytes: u64,
}

/// Merge overlapping/adjacent extents, returning disjoint sorted extents.
fn merge_extents(mut extents: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    extents.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(extents.len());
    for (off, len) in extents {
        if len == 0 {
            continue;
        }
        match merged.last_mut() {
            Some((moff, mlen)) if off <= *moff + *mlen => {
                let end = (off + len).max(*moff + *mlen);
                *mlen = end - *moff;
            }
            _ => merged.push((off, len)),
        }
    }
    merged
}

impl CollectivePlan {
    /// Build the two-phase plan for a set of per-rank requests.
    ///
    /// `cb_nodes` is the number of aggregators (ROMIO `cb_nodes` hint);
    /// aggregators are the lowest-ranked participant of each stride.
    /// `stripe_size` aligns aggregator file domains to stripe boundaries so
    /// aggregated accesses are lock- and RPC-friendly.
    #[must_use]
    pub fn plan(requests: &[CollectiveRequest], cb_nodes: u32, stripe_size: u64) -> CollectivePlan {
        let cb = cb_nodes.max(1);
        let merged = merge_extents(requests.iter().map(|r| (r.offset, r.length)).collect());
        let file_bytes: u64 = merged.iter().map(|(_, l)| l).sum();
        // Exchange phase: every byte that ends up on an aggregator different
        // from its producer crosses the network. With uniformly distributed
        // data and `cb` aggregators out of `n` ranks, (n - cb)/n of bytes
        // move; we charge all bytes conservatively, minus what the
        // aggregators themselves produced.
        let mut ranks: Vec<u32> = requests.iter().map(|r| r.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        let aggregators: Vec<u32> = ranks
            .iter()
            .copied()
            .step_by((ranks.len() / cb as usize).max(1))
            .take(cb as usize)
            .collect();
        let produced_by_aggregators: u64 = requests
            .iter()
            .filter(|r| aggregators.contains(&r.rank))
            .map(|r| r.length)
            .sum();
        let total_produced: u64 = requests.iter().map(|r| r.length).sum();
        let exchange_bytes = total_produced.saturating_sub(produced_by_aggregators);

        // File phase: ROMIO divides each merged extent into `cb` contiguous
        // file domains, snapped to stripe boundaries, one per aggregator —
        // so each aggregator issues one large (multi-stripe) access.
        let stripe = stripe_size.max(1);
        let mut assignments = Vec::new();
        let mut agg_cursor = 0usize;
        for (off, len) in merged {
            let end = off + len;
            let domain = (len / u64::from(cb)).max(1).div_ceil(stripe) * stripe;
            let mut cur = off;
            while cur < end {
                // Snap the domain end to the stripe grid so aggregated
                // accesses stay lock- and RPC-friendly.
                let snapped = ((cur + domain) / stripe) * stripe;
                let chunk_end = if snapped > cur { snapped.min(end) } else { end };
                assignments.push(AggregatorAssignment {
                    aggregator: aggregators[agg_cursor % aggregators.len()],
                    offset: cur,
                    length: chunk_end - cur,
                });
                agg_cursor += 1;
                cur = chunk_end;
            }
        }
        CollectivePlan {
            assignments,
            exchange_bytes,
            file_bytes,
        }
    }

    /// Whether the plan degenerates to one access per request (no benefit).
    #[must_use]
    pub fn is_degenerate(&self, request_count: usize) -> bool {
        self.assignments.len() >= request_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reqs(n: u32, size: u64) -> Vec<CollectiveRequest> {
        (0..n)
            .map(|rank| CollectiveRequest {
                rank,
                offset: u64::from(rank) * size,
                length: size,
            })
            .collect()
    }

    #[test]
    fn merge_extents_merges_adjacent_and_overlapping() {
        assert_eq!(
            merge_extents(vec![(0, 10), (10, 10), (30, 5)]),
            vec![(0, 20), (30, 5)]
        );
        assert_eq!(merge_extents(vec![(5, 10), (0, 10)]), vec![(0, 15)]);
        assert_eq!(merge_extents(vec![(0, 0), (1, 0)]), vec![]);
    }

    #[test]
    fn contiguous_requests_collapse_to_few_large_accesses() {
        // 16 ranks each writing 64 KiB contiguously = 1 MiB total.
        let plan = CollectivePlan::plan(&reqs(16, 64 << 10), 2, 1 << 20);
        assert_eq!(plan.file_bytes, 1 << 20);
        // One merged extent of exactly one stripe → 1 access.
        assert_eq!(plan.assignments.len(), 1);
        assert!(!plan.is_degenerate(16));
    }

    #[test]
    fn plan_covers_every_byte_exactly_once() {
        let plan = CollectivePlan::plan(&reqs(8, 300_000), 3, 1 << 20);
        let covered: u64 = plan.assignments.iter().map(|a| a.length).sum();
        assert_eq!(covered, plan.file_bytes);
        // Assignments are disjoint and sorted.
        for w in plan.assignments.windows(2) {
            assert!(w[0].offset + w[0].length <= w[1].offset);
        }
    }

    #[test]
    fn exchange_bytes_exclude_aggregator_local_data() {
        let plan = CollectivePlan::plan(&reqs(4, 100), 4, 1 << 20);
        // Every rank is an aggregator: nothing crosses the network.
        assert_eq!(plan.exchange_bytes, 0);
        let plan2 = CollectivePlan::plan(&reqs(4, 100), 1, 1 << 20);
        // One aggregator: 3 of 4 ranks ship their data.
        assert_eq!(plan2.exchange_bytes, 300);
    }

    #[test]
    fn domains_align_to_stripe_boundaries() {
        let stripe = 1 << 20;
        let plan = CollectivePlan::plan(&reqs(8, 512 << 10), 2, stripe);
        for a in &plan.assignments {
            // Every domain except possibly the last ends on a stripe boundary.
            let end = a.offset + a.length;
            assert!(
                end % stripe == 0 || end == plan.file_bytes,
                "domain end {end} not stripe-aligned"
            );
        }
    }

    #[test]
    fn empty_request_set_yields_empty_plan() {
        let plan = CollectivePlan::plan(&[], 4, 1 << 20);
        assert!(plan.assignments.is_empty());
        assert_eq!(plan.file_bytes, 0);
        assert_eq!(plan.exchange_bytes, 0);
    }
}
