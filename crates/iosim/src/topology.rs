//! Cluster topology: ranks, nodes and storage targets.

use serde::{Deserialize, Serialize};

/// Static description of the simulated cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of MPI ranks in the job.
    pub nprocs: u32,
    /// Ranks packed per compute node.
    pub ranks_per_node: u32,
    /// Number of object storage targets.
    pub ost_count: u32,
    /// Number of metadata servers (kept at 1; Lustre DNE is out of scope).
    pub mds_count: u32,
}

impl Default for Topology {
    fn default() -> Self {
        Topology {
            nprocs: 4,
            ranks_per_node: 4,
            ost_count: 8,
            mds_count: 1,
        }
    }
}

impl Topology {
    /// Compute node index hosting `rank`.
    #[must_use]
    pub fn node_of(&self, rank: u32) -> u32 {
        rank / self.ranks_per_node.max(1)
    }

    /// Hostname of the node hosting `rank`, `nid00042`-style.
    #[must_use]
    pub fn hostname_of(&self, rank: u32) -> String {
        format!("nid{:05}", self.node_of(rank))
    }

    /// Number of compute nodes in the job.
    #[must_use]
    pub fn node_count(&self) -> u32 {
        self.nprocs.div_ceil(self.ranks_per_node.max(1))
    }

    /// Whether two ranks share a node (relevant for aggregation locality).
    #[must_use]
    pub fn colocated(&self, a: u32, b: u32) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_mapping_packs_ranks() {
        let t = Topology {
            nprocs: 10,
            ranks_per_node: 4,
            ost_count: 4,
            mds_count: 1,
        };
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_count(), 3);
        assert!(t.colocated(0, 3));
        assert!(!t.colocated(3, 4));
    }

    #[test]
    fn hostnames_are_stable_and_distinct_per_node() {
        let t = Topology::default();
        assert_eq!(t.hostname_of(0), "nid00000");
        assert_eq!(t.hostname_of(0), t.hostname_of(3));
        let t2 = Topology {
            ranks_per_node: 1,
            ..Topology::default()
        };
        assert_ne!(t2.hostname_of(0), t2.hostname_of(1));
    }

    #[test]
    fn zero_ranks_per_node_does_not_panic() {
        let t = Topology {
            nprocs: 4,
            ranks_per_node: 0,
            ost_count: 1,
            mds_count: 1,
        };
        assert_eq!(t.node_of(3), 3);
        assert_eq!(t.node_count(), 4);
    }
}
