//! Object storage target: service queue and accounting.

use serde::{Deserialize, Serialize};

/// One object storage target. Requests are serviced first-come-first-served
/// on a single virtual channel; a request arriving while the target is busy
/// queues behind it, which is how OST contention manifests as latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ost {
    /// Virtual time until which the target is busy.
    busy_until: f64,
    /// Latest arrival seen, for out-of-order detection.
    last_arrival: f64,
    /// Service-time multiplier (> 1.0 = degraded target, fault injection).
    slowdown: f64,
    /// Total bytes written to this target.
    pub bytes_written: u64,
    /// Total bytes read from this target.
    pub bytes_read: u64,
    /// Number of RPCs serviced.
    pub rpcs: u64,
    /// Accumulated queueing delay imposed on clients, seconds.
    pub queue_delay: f64,
}

impl Default for Ost {
    fn default() -> Self {
        Ost {
            busy_until: 0.0,
            last_arrival: 0.0,
            slowdown: 1.0,
            bytes_written: 0,
            bytes_read: 0,
            rpcs: 0,
            queue_delay: 0.0,
        }
    }
}

impl Ost {
    /// Create an idle target.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Degrade (or restore) this target: service times are multiplied by
    /// `factor`. Models a failing disk, a rebuilding RAID group, or an
    /// overloaded server — the classic cause of stragglers.
    pub fn set_slowdown(&mut self, factor: f64) {
        self.slowdown = factor.max(0.01);
    }

    /// Current service-time multiplier.
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Service a request arriving at `arrival` with the given `service_time`.
    ///
    /// Returns the completion time. The request waits for the channel if the
    /// target is busy (FCFS); degraded targets stretch the service time by
    /// their slowdown factor.
    ///
    /// The engine drives ranks round-robin, so requests can reach the
    /// server out of virtual-time order: a request that *precedes* (in
    /// virtual time) everything the server has scheduled is served at its
    /// own arrival — the server was provably idle then — rather than
    /// queueing behind the future.
    pub fn service(&mut self, arrival: f64, service_time: f64) -> f64 {
        self.rpcs += 1;
        if arrival < self.last_arrival {
            return arrival + service_time * self.slowdown;
        }
        self.last_arrival = arrival;
        let start = arrival.max(self.busy_until);
        self.queue_delay += start - arrival;
        let end = start + service_time * self.slowdown;
        self.busy_until = end;
        end
    }

    /// Account bytes moved by a serviced request.
    pub fn account(&mut self, read_bytes: u64, written_bytes: u64) {
        self.bytes_read += read_bytes;
        self.bytes_written += written_bytes;
    }

    /// Virtual time at which the target becomes idle.
    #[must_use]
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_target_services_immediately() {
        let mut o = Ost::new();
        let end = o.service(5.0, 1.0);
        assert_eq!(end, 6.0);
        assert_eq!(o.queue_delay, 0.0);
    }

    #[test]
    fn busy_target_queues_requests() {
        let mut o = Ost::new();
        o.service(0.0, 2.0); // busy until 2.0
        let end = o.service(1.0, 1.0); // arrives at 1.0, waits 1.0
        assert_eq!(end, 3.0);
        assert_eq!(o.queue_delay, 1.0);
        assert_eq!(o.rpcs, 2);
    }

    #[test]
    fn late_arrival_does_not_wait() {
        let mut o = Ost::new();
        o.service(0.0, 1.0);
        let end = o.service(10.0, 0.5);
        assert_eq!(end, 10.5);
        assert_eq!(o.queue_delay, 0.0);
    }

    #[test]
    fn slowdown_stretches_service_time() {
        let mut o = Ost::new();
        o.set_slowdown(4.0);
        let end = o.service(0.0, 1.0);
        assert_eq!(end, 4.0);
        o.set_slowdown(1.0);
        let end = o.service(10.0, 1.0);
        assert_eq!(end, 11.0);
    }

    #[test]
    fn slowdown_clamped_positive() {
        let mut o = Ost::new();
        o.set_slowdown(-5.0);
        assert!(o.slowdown() > 0.0);
    }

    #[test]
    fn accounting_accumulates() {
        let mut o = Ost::new();
        o.account(100, 0);
        o.account(0, 50);
        assert_eq!(o.bytes_read, 100);
        assert_eq!(o.bytes_written, 50);
    }
}
