//! Discrete-event parallel I/O stack simulator with Darshan instrumentation.
//!
//! The ION paper evaluates on traces captured from real runs on a Lustre
//! file system. This crate stands in for that testbed: it simulates a
//! Lustre-like parallel file system (object storage targets, striping,
//! RPC-sized transfers, an extent lock manager and a metadata server), the
//! POSIX and MPI-IO client layers above it, and a cost model that assigns
//! durations to every operation. A [`darshan`]-compatible instrumentation
//! shim observes every call and produces logs indistinguishable in structure
//! from real Darshan output.
//!
//! The simulator is *deterministic*: the same workload always yields the
//! same trace, byte for byte — which is what makes the paper's experiments
//! reproducible as tests.
//!
//! # Architecture
//!
//! ```text
//! workload ──► MpiIoLayer ──► PosixLayer ──► FileSystem ──► Ost / Mds / locks
//!                  │               │              │
//!                  └───────────────┴──────────────┴──► DarshanShim ──► Log
//! ```
//!
//! # Example
//!
//! ```
//! use iosim::{Simulation, SimConfig};
//!
//! # fn main() -> Result<(), iosim::SimError> {
//! let mut sim = Simulation::new(SimConfig::default().with_ranks(4));
//! let f = sim.posix_open_all("/scratch/out.dat")?;
//! for rank in 0..4 {
//!     sim.posix_write(rank, f, rank as u64 * 1024, 1024)?;
//! }
//! sim.posix_close_all(f);
//! let log = sim.finish();
//! assert_eq!(log.posix.len(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod engine;
pub mod error;
pub mod instrument;
pub mod lock;
pub mod mds;
pub mod mpiio;
pub mod ost;
pub mod pfs;
pub mod topology;

pub use cost::CostModel;
pub use engine::{SimConfig, Simulation};
pub use error::SimError;
pub use pfs::{FileHandle, FileSystem, StripeLayout};
pub use topology::Topology;
