//! The simulation engine: per-rank virtual clocks over the file system,
//! with Darshan instrumentation of every call.

use crate::cost::CostModel;
use crate::instrument::DarshanShim;
use crate::mpiio::{CollectivePlan, CollectiveRequest};
use crate::pfs::{FileHandle, FileSystem, StripeLayout};
use crate::topology::Topology;
use crate::SimError;
use darshan::accum::AlignmentSpec;
use darshan::log::Log;
use darshan::records::JobRecord;
use std::collections::HashMap;

/// Configuration for a simulated job.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cluster shape.
    pub topology: Topology,
    /// Cost parameters.
    pub cost: CostModel,
    /// Default striping for newly created files.
    pub layout: StripeLayout,
    /// Whether DXT per-op tracing is enabled.
    pub dxt_enabled: bool,
    /// User id recorded in the job header.
    pub uid: u32,
    /// Job id recorded in the job header.
    pub job_id: u64,
    /// Executable line recorded in the job header.
    pub exe: String,
    /// Aggregators per collective op (ROMIO `cb_nodes`); 0 = one per node.
    pub cb_nodes: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            topology: Topology::default(),
            cost: CostModel::default(),
            layout: StripeLayout::default(),
            dxt_enabled: true,
            uid: 1000,
            job_id: 1,
            exe: String::from("a.out"),
            cb_nodes: 0,
        }
    }
}

impl SimConfig {
    /// Set the number of ranks.
    #[must_use]
    pub fn with_ranks(mut self, nprocs: u32) -> Self {
        self.topology.nprocs = nprocs;
        self
    }

    /// Set the number of OSTs.
    #[must_use]
    pub fn with_osts(mut self, osts: u32) -> Self {
        self.topology.ost_count = osts;
        self
    }

    /// Set the default stripe layout.
    #[must_use]
    pub fn with_layout(mut self, layout: StripeLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Set the cost model.
    #[must_use]
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Set the recorded executable line.
    #[must_use]
    pub fn with_exe(mut self, exe: &str) -> Self {
        self.exe = exe.to_owned();
        self
    }

    /// Enable or disable DXT tracing.
    #[must_use]
    pub fn with_dxt(mut self, enabled: bool) -> Self {
        self.dxt_enabled = enabled;
        self
    }
}

#[derive(Debug, Clone)]
struct OpenFile {
    record_id: u64,
}

/// A simulated MPI job issuing I/O through POSIX, STDIO and MPI-IO.
///
/// All operations take explicit rank arguments; the engine advances that
/// rank's virtual clock by the duration the file system charges. Collective
/// operations synchronize the participating clocks the way MPI does.
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    fs: FileSystem,
    shim: DarshanShim,
    clocks: Vec<f64>,
    files: HashMap<FileHandle, OpenFile>,
    /// Simulated operations issued so far (every POSIX/STDIO/MPI-IO call).
    ops: u64,
    /// Real wall-clock start, for the simulated-vs-real elapsed gauges.
    started: std::time::Instant,
}

impl Simulation {
    /// Create a simulation from a config.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        let alignment = AlignmentSpec {
            file_alignment: config.layout.stripe_size,
            mem_alignment: 8,
        };
        let mut shim = DarshanShim::new(alignment, config.dxt_enabled);
        for rank in 0..config.topology.nprocs {
            shim.register_host(rank as i32, &config.topology.hostname_of(rank));
        }
        let fs = FileSystem::new(
            config.topology.ost_count,
            config.cost.clone(),
            config.layout,
        );
        let clocks = vec![0.0; config.topology.nprocs as usize];
        Simulation {
            config,
            fs,
            shim,
            clocks,
            files: HashMap::new(),
            ops: 0,
            started: std::time::Instant::now(),
        }
    }

    /// Simulated operations issued so far.
    #[must_use]
    pub fn ops_issued(&self) -> u64 {
        self.ops
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The underlying file system (inspection).
    #[must_use]
    pub fn fs(&self) -> &FileSystem {
        &self.fs
    }

    /// Virtual time on `rank`'s clock.
    #[must_use]
    pub fn time(&self, rank: u32) -> f64 {
        self.clocks[rank as usize]
    }

    /// Advance one rank's clock by `dt` seconds of compute.
    pub fn advance(&mut self, rank: u32, dt: f64) {
        self.clocks[rank as usize] += dt.max(0.0);
    }

    /// Inject a degraded storage target: all service on OST `ost` takes
    /// `factor`× as long from now on. Models the real-world cause of
    /// stragglers that ION's per-rank time analysis is meant to surface.
    pub fn inject_slow_ost(&mut self, ost: usize, factor: f64) {
        self.fs.set_ost_slowdown(ost, factor);
    }

    /// Synchronize all clocks to the latest (an `MPI_Barrier`).
    pub fn barrier(&mut self) {
        let max = self.clocks.iter().copied().fold(0.0f64, f64::max);
        for c in &mut self.clocks {
            *c = max;
        }
    }

    fn check_rank(&self, rank: u32) -> Result<(), SimError> {
        if rank >= self.config.topology.nprocs {
            return Err(SimError::BadRank {
                rank,
                nprocs: self.config.topology.nprocs,
            });
        }
        Ok(())
    }

    fn record_of(&self, handle: FileHandle) -> Result<u64, SimError> {
        self.files
            .get(&handle)
            .map(|f| f.record_id)
            .ok_or(SimError::BadHandle {
                handle: handle.key(),
            })
    }

    // ------------------------------------------------------------------
    // POSIX layer
    // ------------------------------------------------------------------

    /// Open (creating if needed) `path` on one rank through POSIX.
    pub fn posix_open(&mut self, rank: u32, path: &str) -> Result<FileHandle, SimError> {
        self.check_rank(rank)?;
        let t = self.clocks[rank as usize];
        let (handle, end) = self.fs.open(path, rank, t, true)?;
        let rid = self.shim.register(path);
        let layout = self.fs.file(handle).expect("just opened").layout;
        self.shim.record_lustre(
            rid,
            layout.stripe_size as i64,
            layout.ost_ids(self.config.topology.ost_count),
        );
        self.ops += 1;
        self.shim.posix_open(rid, rank as i32, t, end);
        self.clocks[rank as usize] = end;
        self.files.insert(handle, OpenFile { record_id: rid });
        Ok(handle)
    }

    /// Open `path` on every rank (each pays a metadata op), returning the
    /// shared handle.
    pub fn posix_open_all(&mut self, path: &str) -> Result<FileHandle, SimError> {
        let mut handle = None;
        for rank in 0..self.config.topology.nprocs {
            handle = Some(self.posix_open(rank, path)?);
        }
        Ok(handle.expect("nprocs >= 1"))
    }

    /// POSIX write with aligned client memory.
    pub fn posix_write(
        &mut self,
        rank: u32,
        handle: FileHandle,
        offset: u64,
        len: u64,
    ) -> Result<(), SimError> {
        self.posix_write_opts(rank, handle, offset, len, true)
    }

    /// POSIX write, controlling memory alignment of the client buffer.
    pub fn posix_write_opts(
        &mut self,
        rank: u32,
        handle: FileHandle,
        offset: u64,
        len: u64,
        mem_aligned: bool,
    ) -> Result<(), SimError> {
        self.check_rank(rank)?;
        let rid = self.record_of(handle)?;
        let t = self.clocks[rank as usize];
        let out = self.fs.write(handle, rank, offset, len, t, mem_aligned)?;
        self.ops += 1;
        self.shim
            .posix_write(rid, rank as i32, offset, len, t, out.end_time, mem_aligned);
        self.clocks[rank as usize] = out.end_time;
        Ok(())
    }

    /// POSIX read with aligned client memory.
    pub fn posix_read(
        &mut self,
        rank: u32,
        handle: FileHandle,
        offset: u64,
        len: u64,
    ) -> Result<(), SimError> {
        self.posix_read_opts(rank, handle, offset, len, true)
    }

    /// POSIX read, controlling memory alignment of the client buffer.
    pub fn posix_read_opts(
        &mut self,
        rank: u32,
        handle: FileHandle,
        offset: u64,
        len: u64,
        mem_aligned: bool,
    ) -> Result<(), SimError> {
        self.check_rank(rank)?;
        let rid = self.record_of(handle)?;
        let t = self.clocks[rank as usize];
        let out = self.fs.read(handle, rank, offset, len, t, mem_aligned)?;
        self.ops += 1;
        self.shim
            .posix_read(rid, rank as i32, offset, len, t, out.end_time, mem_aligned);
        self.clocks[rank as usize] = out.end_time;
        Ok(())
    }

    /// Explicit POSIX seek (costs a client-side call, no server round trip).
    pub fn posix_seek(&mut self, rank: u32, handle: FileHandle) -> Result<(), SimError> {
        self.check_rank(rank)?;
        let rid = self.record_of(handle)?;
        let t = self.clocks[rank as usize];
        let end = t + 1e-6;
        self.ops += 1;
        self.shim.posix_seek(rid, rank as i32, t, end);
        self.clocks[rank as usize] = end;
        Ok(())
    }

    /// POSIX `stat` on a path.
    pub fn posix_stat(&mut self, rank: u32, path: &str) -> Result<(), SimError> {
        self.check_rank(rank)?;
        let t = self.clocks[rank as usize];
        let end = self.fs.stat(path, t)?;
        let rid = self.shim.register(path);
        self.ops += 1;
        self.shim.posix_stat(rid, rank as i32, t, end);
        self.clocks[rank as usize] = end;
        Ok(())
    }

    /// POSIX `fsync`.
    pub fn posix_fsync(&mut self, rank: u32, handle: FileHandle) -> Result<(), SimError> {
        self.check_rank(rank)?;
        let rid = self.record_of(handle)?;
        let t = self.clocks[rank as usize];
        // fsync flushes the client cache: charge one RPC latency.
        let end = t + self.config.cost.rpc_latency;
        self.ops += 1;
        self.shim.posix_fsync(rid, rank as i32, t, end);
        self.clocks[rank as usize] = end;
        Ok(())
    }

    /// Close on one rank.
    pub fn posix_close(&mut self, rank: u32, handle: FileHandle) -> Result<(), SimError> {
        self.check_rank(rank)?;
        let rid = self.record_of(handle)?;
        let t = self.clocks[rank as usize];
        let end = self.fs.close(handle, t);
        self.ops += 1;
        self.shim.posix_close(rid, rank as i32, t, end);
        self.clocks[rank as usize] = end;
        Ok(())
    }

    /// Close on every rank.
    pub fn posix_close_all(&mut self, handle: FileHandle) {
        for rank in 0..self.config.topology.nprocs {
            let _ = self.posix_close(rank, handle);
        }
    }

    /// Remove a path (rank 0 does the unlink).
    pub fn unlink(&mut self, path: &str) -> Result<(), SimError> {
        let t = self.clocks[0];
        let end = self.fs.unlink(path, t)?;
        self.clocks[0] = end;
        Ok(())
    }

    // ------------------------------------------------------------------
    // STDIO layer
    // ------------------------------------------------------------------

    /// `fopen` on one rank.
    pub fn stdio_open(&mut self, rank: u32, path: &str) -> Result<FileHandle, SimError> {
        self.check_rank(rank)?;
        let t = self.clocks[rank as usize];
        let (handle, end) = self.fs.open(path, rank, t, true)?;
        let rid = self.shim.register(path);
        self.ops += 1;
        self.shim.stdio_open(rid, rank as i32, t, end);
        self.clocks[rank as usize] = end;
        self.files.insert(handle, OpenFile { record_id: rid });
        Ok(handle)
    }

    /// `fwrite` on one rank (buffered: server cost amortized, small
    /// client-side cost per call).
    pub fn stdio_write(
        &mut self,
        rank: u32,
        handle: FileHandle,
        offset: u64,
        len: u64,
    ) -> Result<(), SimError> {
        self.check_rank(rank)?;
        let rid = self.record_of(handle)?;
        let t = self.clocks[rank as usize];
        let out = self.fs.write(handle, rank, offset, len, t, true)?;
        self.ops += 1;
        self.shim
            .stdio_write(rid, rank as i32, offset, len, t, out.end_time);
        self.clocks[rank as usize] = out.end_time;
        Ok(())
    }

    /// `fread` on one rank.
    pub fn stdio_read(
        &mut self,
        rank: u32,
        handle: FileHandle,
        offset: u64,
        len: u64,
    ) -> Result<(), SimError> {
        self.check_rank(rank)?;
        let rid = self.record_of(handle)?;
        let t = self.clocks[rank as usize];
        let out = self.fs.read(handle, rank, offset, len, t, true)?;
        self.ops += 1;
        self.shim
            .stdio_read(rid, rank as i32, offset, len, t, out.end_time);
        self.clocks[rank as usize] = out.end_time;
        Ok(())
    }

    /// `fclose` on one rank.
    pub fn stdio_close(&mut self, rank: u32, handle: FileHandle) -> Result<(), SimError> {
        self.check_rank(rank)?;
        let rid = self.record_of(handle)?;
        let t = self.clocks[rank as usize];
        let end = self.fs.close(handle, t);
        self.ops += 1;
        self.shim.stdio_close(rid, rank as i32, t, end);
        self.clocks[rank as usize] = end;
        Ok(())
    }

    // ------------------------------------------------------------------
    // MPI-IO layer
    // ------------------------------------------------------------------

    /// `MPI_File_open` on the whole communicator (collective). Every rank
    /// records an MPI-IO open and the underlying POSIX open.
    pub fn mpi_file_open(&mut self, path: &str) -> Result<FileHandle, SimError> {
        self.barrier();
        let mut handle = None;
        for rank in 0..self.config.topology.nprocs {
            let h = self.posix_open(rank, path)?;
            let rid = self.record_of(h)?;
            let t = self.clocks[rank as usize];
            self.ops += 1;
            self.shim.mpiio_open(rid, rank as i32, true, t, t);
            handle = Some(h);
        }
        self.barrier();
        Ok(handle.expect("nprocs >= 1"))
    }

    /// Independent `MPI_File_write_at`: one MPI-IO op plus the POSIX op
    /// ROMIO issues underneath.
    pub fn mpi_write_independent(
        &mut self,
        rank: u32,
        handle: FileHandle,
        offset: u64,
        len: u64,
    ) -> Result<(), SimError> {
        self.check_rank(rank)?;
        let rid = self.record_of(handle)?;
        let t = self.clocks[rank as usize];
        self.posix_write(rank, handle, offset, len)?;
        let end = self.clocks[rank as usize];
        self.ops += 1;
        self.shim
            .mpiio_write(rid, rank as i32, offset, len, false, t, end);
        Ok(())
    }

    /// Independent `MPI_File_read_at`.
    pub fn mpi_read_independent(
        &mut self,
        rank: u32,
        handle: FileHandle,
        offset: u64,
        len: u64,
    ) -> Result<(), SimError> {
        self.check_rank(rank)?;
        let rid = self.record_of(handle)?;
        let t = self.clocks[rank as usize];
        self.posix_read(rank, handle, offset, len)?;
        let end = self.clocks[rank as usize];
        self.ops += 1;
        self.shim
            .mpiio_read(rid, rank as i32, offset, len, false, t, end);
        Ok(())
    }

    fn cb_nodes(&self) -> u32 {
        if self.config.cb_nodes > 0 {
            self.config.cb_nodes
        } else {
            self.config.topology.node_count()
        }
    }

    /// Collective `MPI_File_write_at_all` over all ranks.
    ///
    /// `requests[i]` is `(rank, offset, len)`. Two-phase I/O runs: data is
    /// exchanged to aggregators, aggregators issue large stripe-aligned
    /// POSIX writes, and every participant's clock advances to the
    /// collective's completion.
    pub fn mpi_write_collective(
        &mut self,
        handle: FileHandle,
        requests: &[(u32, u64, u64)],
    ) -> Result<(), SimError> {
        self.collective(handle, requests, true)
    }

    /// Collective `MPI_File_read_at_all` over all ranks.
    pub fn mpi_read_collective(
        &mut self,
        handle: FileHandle,
        requests: &[(u32, u64, u64)],
    ) -> Result<(), SimError> {
        self.collective(handle, requests, false)
    }

    fn collective(
        &mut self,
        handle: FileHandle,
        requests: &[(u32, u64, u64)],
        is_write: bool,
    ) -> Result<(), SimError> {
        let rid = self.record_of(handle)?;
        for &(rank, _, _) in requests {
            self.check_rank(rank)?;
        }
        self.barrier();
        let t0 = self.clocks.first().copied().unwrap_or(0.0);
        let reqs: Vec<CollectiveRequest> = requests
            .iter()
            .map(|&(rank, offset, length)| CollectiveRequest {
                rank,
                offset,
                length,
            })
            .collect();
        let stripe = self
            .fs
            .file(handle)
            .ok_or(SimError::BadHandle {
                handle: handle.key(),
            })?
            .layout
            .stripe_size;
        let plan = CollectivePlan::plan(&reqs, self.cb_nodes(), stripe);
        // Phase 1: exchange.
        let exchange_end = t0 + self.config.cost.exchange_time(plan.exchange_bytes);
        // Phase 2: aggregators hit the file system in parallel.
        let mut latest = exchange_end;
        for a in &plan.assignments {
            let out = if is_write {
                self.fs
                    .write(handle, a.aggregator, a.offset, a.length, exchange_end, true)?
            } else {
                self.fs
                    .read(handle, a.aggregator, a.offset, a.length, exchange_end, true)?
            };
            self.shim.register_host(
                a.aggregator as i32,
                &self.config.topology.hostname_of(a.aggregator),
            );
            if is_write {
                self.ops += 1;
                self.shim.posix_write(
                    rid,
                    a.aggregator as i32,
                    a.offset,
                    a.length,
                    exchange_end,
                    out.end_time,
                    true,
                );
            } else {
                self.ops += 1;
                self.shim.posix_read(
                    rid,
                    a.aggregator as i32,
                    a.offset,
                    a.length,
                    exchange_end,
                    out.end_time,
                    true,
                );
            }
            latest = latest.max(out.end_time);
        }
        // Every participant records its MPI-IO collective op spanning the
        // whole collective.
        for r in &reqs {
            if is_write {
                self.ops += 1;
                self.shim
                    .mpiio_write(rid, r.rank as i32, r.offset, r.length, true, t0, latest);
            } else {
                self.ops += 1;
                self.shim
                    .mpiio_read(rid, r.rank as i32, r.offset, r.length, true, t0, latest);
            }
        }
        for c in &mut self.clocks {
            *c = latest;
        }
        Ok(())
    }

    /// `MPI_File_close` (collective).
    pub fn mpi_file_close(&mut self, handle: FileHandle) -> Result<(), SimError> {
        self.barrier();
        let rid = self.record_of(handle)?;
        for rank in 0..self.config.topology.nprocs {
            let t = self.clocks[rank as usize];
            let end = self.fs.close(handle, t);
            self.ops += 1;
            self.shim.mpiio_close(rid, rank as i32, t, end);
            self.ops += 1;
            self.shim.posix_close(rid, rank as i32, t, end);
            self.clocks[rank as usize] = end;
        }
        self.barrier();
        Ok(())
    }

    /// End the job and assemble the Darshan log.
    #[must_use]
    pub fn finish(self) -> Log {
        let mut job = JobRecord::new(
            self.config.uid,
            self.config.job_id,
            self.config.topology.nprocs,
        );
        job.exe = self.config.exe.clone();
        job.start_time = 0.0;
        job.end_time = self.clocks.iter().copied().fold(0.0f64, f64::max);
        if ion_obs::enabled() {
            // Simulated ops and time versus the real wall clock spent
            // computing them — the simulator's speedup figure.
            let mut span = ion_obs::span!("iosim.finish");
            span.attr("ops", self.ops);
            ion_obs::counter("iosim.ops", self.ops);
            ion_obs::gauge("iosim.sim_seconds", job.end_time);
            ion_obs::gauge("iosim.real_seconds", self.started.elapsed().as_secs_f64());
        }
        let job = job
            .with_metadata(
                "lustre_stripe_size",
                &self.config.layout.stripe_size.to_string(),
            )
            .with_metadata("lustre_rpc_size", &self.config.cost.rpc_size.to_string())
            .with_metadata("ost_count", &self.config.topology.ost_count.to_string());
        self.shim.finish(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darshan::counters::{MpiioCounter, PosixCounter};

    fn sim(ranks: u32) -> Simulation {
        Simulation::new(SimConfig::default().with_ranks(ranks))
    }

    #[test]
    fn posix_roundtrip_produces_per_rank_records() {
        let mut s = sim(4);
        let h = s.posix_open_all("/f").unwrap();
        for rank in 0..4 {
            s.posix_write(rank, h, u64::from(rank) * 1024, 1024)
                .unwrap();
        }
        s.posix_close_all(h);
        let log = s.finish();
        assert_eq!(log.posix.len(), 4);
        assert_eq!(log.lustre.len(), 1);
        for r in &log.posix {
            assert_eq!(r.get(PosixCounter::POSIX_WRITES), 1);
            assert_eq!(r.get(PosixCounter::POSIX_OPENS), 1);
        }
        assert!(log.job.end_time > 0.0);
    }

    #[test]
    fn clocks_advance_monotonically() {
        let mut s = sim(2);
        let h = s.posix_open(0, "/f").unwrap();
        let t0 = s.time(0);
        s.posix_write(0, h, 0, 1 << 20).unwrap();
        assert!(s.time(0) > t0);
        assert_eq!(s.time(1), 0.0); // rank 1 did nothing
    }

    #[test]
    fn barrier_synchronizes() {
        let mut s = sim(2);
        s.advance(0, 5.0);
        s.barrier();
        assert_eq!(s.time(1), 5.0);
    }

    #[test]
    fn bad_rank_rejected() {
        let mut s = sim(2);
        assert!(matches!(
            s.posix_open(7, "/f"),
            Err(SimError::BadRank { .. })
        ));
    }

    #[test]
    fn independent_mpi_write_records_both_layers() {
        let mut s = sim(2);
        let h = s.mpi_file_open("/f").unwrap();
        s.mpi_write_independent(0, h, 0, 4096).unwrap();
        s.mpi_file_close(h).unwrap();
        let log = s.finish();
        let m0 = log.mpiio.iter().find(|r| r.rank == 0).unwrap();
        assert_eq!(m0.get(MpiioCounter::MPIIO_INDEP_WRITES), 1);
        assert_eq!(m0.get(MpiioCounter::MPIIO_COLL_OPENS), 1);
        let p0 = log.posix.iter().find(|r| r.rank == 0).unwrap();
        assert_eq!(p0.get(PosixCounter::POSIX_WRITES), 1);
    }

    #[test]
    fn collective_write_aggregates_to_few_large_posix_ops() {
        let mut s = Simulation::new(SimConfig::default().with_ranks(8));
        let h = s.mpi_file_open("/f").unwrap();
        let reqs: Vec<(u32, u64, u64)> = (0..8u32)
            .map(|r| (r, u64::from(r) * (128 << 10), 128 << 10))
            .collect();
        s.mpi_write_collective(h, &reqs).unwrap();
        s.mpi_file_close(h).unwrap();
        let log = s.finish();
        // Every rank has one collective MPI-IO write...
        let coll: i64 = log
            .mpiio
            .iter()
            .map(|r| r.get(MpiioCounter::MPIIO_COLL_WRITES))
            .sum();
        assert_eq!(coll, 8);
        // ...but the POSIX layer saw only the aggregators' large writes.
        let posix_writes: i64 = log
            .posix
            .iter()
            .map(|r| r.get(PosixCounter::POSIX_WRITES))
            .sum();
        assert!(posix_writes <= 2, "got {posix_writes} POSIX writes");
        let bytes: i64 = log
            .posix
            .iter()
            .map(|r| r.get(PosixCounter::POSIX_BYTES_WRITTEN))
            .sum();
        assert_eq!(bytes, 8 * (128 << 10));
    }

    #[test]
    fn collective_read_returns_written_data_extent() {
        let mut s = sim(4);
        let h = s.mpi_file_open("/f").unwrap();
        let reqs: Vec<(u32, u64, u64)> =
            (0..4u32).map(|r| (r, u64::from(r) * 1024, 1024)).collect();
        s.mpi_write_collective(h, &reqs).unwrap();
        s.mpi_read_collective(h, &reqs).unwrap();
        s.mpi_file_close(h).unwrap();
        let log = s.finish();
        let coll_reads: i64 = log
            .mpiio
            .iter()
            .map(|r| r.get(MpiioCounter::MPIIO_COLL_READS))
            .sum();
        assert_eq!(coll_reads, 4);
    }

    #[test]
    fn stdio_layer_records_stdio_module() {
        let mut s = sim(1);
        let h = s.stdio_open(0, "/log.txt").unwrap();
        s.stdio_write(0, h, 0, 128).unwrap();
        s.stdio_close(0, h).unwrap();
        let log = s.finish();
        assert_eq!(log.stdio.len(), 1);
        assert!(log.posix.is_empty());
    }

    #[test]
    fn conservation_bytes_written_match_ost_accounting() {
        let mut s = sim(4);
        let h = s.posix_open_all("/f").unwrap();
        for rank in 0..4u32 {
            for i in 0..16u64 {
                s.posix_write(rank, h, (u64::from(rank) * 16 + i) * 4096, 4096)
                    .unwrap();
            }
        }
        let fs_bytes = s.fs().total_ost_bytes_written();
        assert_eq!(fs_bytes, 4 * 16 * 4096);
        let log = s.finish();
        let logged: i64 = log
            .posix
            .iter()
            .map(|r| r.get(PosixCounter::POSIX_BYTES_WRITTEN))
            .sum();
        assert_eq!(logged as u64, fs_bytes);
    }

    #[test]
    fn slow_ost_creates_a_straggler_rank() {
        use crate::pfs::StripeLayout;
        // Single-stripe files so each rank's file lives on exactly one OST.
        let config = SimConfig::default()
            .with_ranks(4)
            .with_layout(StripeLayout {
                stripe_size: 1 << 20,
                stripe_width: 1,
                ost_offset: 0,
            });
        let mut s = Simulation::new(config);
        let handles: Vec<_> = (0..4u32)
            .map(|r| s.posix_open(r, &format!("/fpp/{r}")).unwrap())
            .collect();
        // Find the OST serving rank 2's file, then degrade it 20×.
        let victim_ost = s.fs().file(handles[2]).unwrap().layout.ost_offset as usize;
        s.inject_slow_ost(victim_ost, 20.0);
        for rank in 0..4u32 {
            for i in 0..32u64 {
                s.posix_write(rank, handles[rank as usize], i * 65536, 65536)
                    .unwrap();
            }
        }
        let healthy = s.time(0);
        let straggler = s.time(2);
        assert!(
            straggler > healthy * 5.0,
            "straggler {straggler} vs healthy {healthy}"
        );
    }

    #[test]
    fn job_metadata_carries_system_parameters() {
        let s = sim(1);
        let log = s.finish();
        assert!(log
            .job
            .metadata
            .iter()
            .any(|(k, v)| k == "lustre_rpc_size" && v == "4194304"));
    }
}
