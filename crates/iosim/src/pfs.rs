//! Striped parallel file system: layout, data placement and service timing.

use crate::cost::CostModel;
use crate::lock::{ExtentId, LockManager};
use crate::mds::{Mds, MetaOp};
use crate::ost::Ost;
use crate::SimError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Striping policy for a file, set at creation (Lustre semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeLayout {
    /// Stripe size in bytes.
    pub stripe_size: u64,
    /// Number of OSTs the file is striped over.
    pub stripe_width: u32,
    /// First OST index (round-robin start).
    pub ost_offset: u32,
}

impl Default for StripeLayout {
    fn default() -> Self {
        StripeLayout {
            stripe_size: 1 << 20,
            stripe_width: 4,
            ost_offset: 0,
        }
    }
}

impl StripeLayout {
    /// Stripe index containing byte `offset`.
    #[must_use]
    pub fn stripe_index(&self, offset: u64) -> u64 {
        offset / self.stripe_size
    }

    /// OST (within the cluster's `ost_count`) serving byte `offset`.
    #[must_use]
    pub fn ost_for(&self, offset: u64, ost_count: u32) -> u32 {
        let within = (self.stripe_index(offset) % u64::from(self.stripe_width.max(1))) as u32;
        (self.ost_offset + within) % ost_count.max(1)
    }

    /// Split an extent into per-stripe chunks `(stripe_index, chunk_offset,
    /// chunk_len)`.
    #[must_use]
    pub fn split_extent(&self, offset: u64, len: u64) -> Vec<(u64, u64, u64)> {
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let stripe = self.stripe_index(cur);
            let stripe_end = (stripe + 1) * self.stripe_size;
            let chunk_end = stripe_end.min(end);
            out.push((stripe, cur, chunk_end - cur));
            cur = chunk_end;
        }
        out
    }

    /// OST ids a file of `size` bytes actually touches, in stripe order.
    #[must_use]
    pub fn ost_ids(&self, ost_count: u32) -> Vec<i64> {
        (0..self.stripe_width.max(1))
            .map(|i| i64::from((self.ost_offset + i) % ost_count.max(1)))
            .collect()
    }
}

/// A file stored in the simulated file system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimFile {
    /// Internal file key (dense, unlike the Darshan record id).
    pub key: u64,
    /// Path of the file.
    pub path: String,
    /// Striping policy.
    pub layout: StripeLayout,
    /// Current size (highest byte written + 1).
    pub size: u64,
    /// Total bytes ever written (conservation accounting).
    pub bytes_written: u64,
    /// Total bytes ever read.
    pub bytes_read: u64,
}

/// Opaque handle to an open file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FileHandle(pub(crate) u64);

impl FileHandle {
    /// The internal file key the handle refers to.
    #[must_use]
    pub fn key(self) -> u64 {
        self.0
    }
}

/// Outcome of a data operation, fed back to the client layer and the
/// instrumentation shim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoOutcome {
    /// Virtual completion time of the operation.
    pub end_time: f64,
    /// Lock transfers the operation caused.
    pub lock_conflicts: u64,
    /// RPCs issued.
    pub rpcs: u64,
    /// Whether the file offset was stripe-aligned.
    pub aligned: bool,
}

/// The striped parallel file system: namespace, placement, locks and
/// storage targets.
#[derive(Debug, Clone)]
pub struct FileSystem {
    files: HashMap<u64, SimFile>,
    by_path: HashMap<String, u64>,
    osts: Vec<Ost>,
    mds: Mds,
    locks: LockManager,
    cost: CostModel,
    default_layout: StripeLayout,
    next_key: u64,
}

impl FileSystem {
    /// Create a file system with `ost_count` targets and the given cost
    /// model and default layout.
    #[must_use]
    pub fn new(ost_count: u32, cost: CostModel, default_layout: StripeLayout) -> Self {
        FileSystem {
            files: HashMap::new(),
            by_path: HashMap::new(),
            osts: (0..ost_count.max(1)).map(|_| Ost::new()).collect(),
            mds: Mds::new(),
            locks: LockManager::new(),
            cost,
            default_layout,
            next_key: 1,
        }
    }

    /// The cost model in force.
    #[must_use]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The metadata server (for load inspection).
    #[must_use]
    pub fn mds(&self) -> &Mds {
        &self.mds
    }

    /// The lock manager (for conflict inspection).
    #[must_use]
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// The storage targets (for accounting inspection).
    #[must_use]
    pub fn osts(&self) -> &[Ost] {
        &self.osts
    }

    /// Look a file up by path.
    #[must_use]
    pub fn file_by_path(&self, path: &str) -> Option<&SimFile> {
        self.by_path.get(path).and_then(|k| self.files.get(k))
    }

    /// Look a file up by key.
    #[must_use]
    pub fn file(&self, handle: FileHandle) -> Option<&SimFile> {
        self.files.get(&handle.0)
    }

    /// Open `path` at virtual time `t` on behalf of `rank`, creating it with
    /// the default layout when absent. Returns the handle and completion
    /// time of the metadata operation.
    pub fn open(
        &mut self,
        path: &str,
        _rank: u32,
        t: f64,
        create: bool,
    ) -> Result<(FileHandle, f64), SimError> {
        if let Some(&key) = self.by_path.get(path) {
            let end = self.mds.service(MetaOp::Open, t, self.cost.meta_latency);
            return Ok((FileHandle(key), end));
        }
        if !create {
            return Err(SimError::NoSuchFile { path: path.into() });
        }
        let key = self.next_key;
        self.next_key += 1;
        let layout = StripeLayout {
            ost_offset: (key % u64::from(self.osts.len() as u32)) as u32,
            ..self.default_layout
        };
        self.files.insert(
            key,
            SimFile {
                key,
                path: path.to_owned(),
                layout,
                size: 0,
                bytes_written: 0,
                bytes_read: 0,
            },
        );
        self.by_path.insert(path.to_owned(), key);
        let end = self.mds.service(MetaOp::Create, t, self.cost.meta_latency);
        Ok((FileHandle(key), end))
    }

    /// Open with an explicit layout (ignored when the file already exists).
    pub fn open_with_layout(
        &mut self,
        path: &str,
        rank: u32,
        t: f64,
        layout: StripeLayout,
    ) -> Result<(FileHandle, f64), SimError> {
        let prev = self.default_layout;
        self.default_layout = layout;
        let r = self.open(path, rank, t, true);
        self.default_layout = prev;
        r
    }

    /// `stat` a path at time `t`.
    pub fn stat(&mut self, path: &str, t: f64) -> Result<f64, SimError> {
        if !self.by_path.contains_key(path) {
            return Err(SimError::NoSuchFile { path: path.into() });
        }
        Ok(self.mds.service(MetaOp::Stat, t, self.cost.meta_latency))
    }

    /// Remove a path at time `t`.
    pub fn unlink(&mut self, path: &str, t: f64) -> Result<f64, SimError> {
        let key = self
            .by_path
            .remove(path)
            .ok_or_else(|| SimError::NoSuchFile { path: path.into() })?;
        self.files.remove(&key);
        self.locks.release_file(key);
        Ok(self.mds.service(MetaOp::Unlink, t, self.cost.meta_latency))
    }

    /// Release a handle at time `t` (close is a metadata op).
    pub fn close(&mut self, _handle: FileHandle, t: f64) -> f64 {
        self.mds.service(MetaOp::Close, t, self.cost.meta_latency)
        // The handle's locks persist; Lustre clients cache extent locks past
        // close. `unlink` is what releases them.
    }

    /// Write `len` bytes at `offset` on behalf of `rank` starting at `t`.
    pub fn write(
        &mut self,
        handle: FileHandle,
        rank: u32,
        offset: u64,
        len: u64,
        t: f64,
        mem_aligned: bool,
    ) -> Result<IoOutcome, SimError> {
        self.data_op(handle, rank, offset, len, t, mem_aligned, true)
    }

    /// Read `len` bytes at `offset` on behalf of `rank` starting at `t`.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::ReadPastEof`] when the extent is not fully
    /// populated.
    pub fn read(
        &mut self,
        handle: FileHandle,
        rank: u32,
        offset: u64,
        len: u64,
        t: f64,
        mem_aligned: bool,
    ) -> Result<IoOutcome, SimError> {
        {
            let f = self
                .files
                .get(&handle.0)
                .ok_or(SimError::BadHandle { handle: handle.0 })?;
            if offset + len > f.size {
                return Err(SimError::ReadPastEof {
                    offset,
                    length: len,
                    size: f.size,
                });
            }
        }
        self.data_op(handle, rank, offset, len, t, mem_aligned, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn data_op(
        &mut self,
        handle: FileHandle,
        rank: u32,
        offset: u64,
        len: u64,
        t: f64,
        mem_aligned: bool,
        is_write: bool,
    ) -> Result<IoOutcome, SimError> {
        let (layout, key) = {
            let f = self
                .files
                .get(&handle.0)
                .ok_or(SimError::BadHandle { handle: handle.0 })?;
            (f.layout, f.key)
        };
        let ost_count = self.osts.len() as u32;
        let aligned = offset.is_multiple_of(layout.stripe_size);
        let mut latest = t;
        let mut conflicts = 0u64;
        let mut rpcs = 0u64;
        for (stripe, chunk_offset, chunk_len) in layout.split_extent(offset, len) {
            let mut start = t;
            if self.locks.acquire(ExtentId { file: key, stripe }, rank) {
                conflicts += 1;
                start += self.cost.lock_latency;
            }
            if !aligned {
                start += self.cost.misalign_penalty;
            }
            if !mem_aligned {
                start += self.cost.mem_misalign_penalty;
            }
            let ost = layout.ost_for(chunk_offset, ost_count) as usize;
            let service = self.cost.transfer_time(chunk_len);
            let end = self.osts[ost].service(start, service);
            if is_write {
                self.osts[ost].account(0, chunk_len);
            } else {
                self.osts[ost].account(chunk_len, 0);
            }
            rpcs += self.cost.rpc_count(chunk_len);
            latest = latest.max(end);
        }
        if len == 0 {
            // Zero-byte ops still cost one RPC round trip.
            latest = t + self.cost.rpc_latency;
            rpcs = 1;
        }
        let f = self.files.get_mut(&handle.0).expect("checked above");
        if is_write {
            f.bytes_written += len;
            f.size = f.size.max(offset + len);
        } else {
            f.bytes_read += len;
        }
        Ok(IoOutcome {
            end_time: latest,
            lock_conflicts: conflicts,
            rpcs,
            aligned,
        })
    }

    /// Degrade one storage target by a service-time factor (fault
    /// injection). No-op for an out-of-range index.
    pub fn set_ost_slowdown(&mut self, ost: usize, factor: f64) {
        if let Some(o) = self.osts.get_mut(ost) {
            o.set_slowdown(factor);
        }
    }

    /// Total bytes stored across all OSTs (conservation check).
    #[must_use]
    pub fn total_ost_bytes_written(&self) -> u64 {
        self.osts.iter().map(|o| o.bytes_written).sum()
    }

    /// Total bytes written through the namespace (conservation check).
    #[must_use]
    pub fn total_file_bytes_written(&self) -> u64 {
        self.files.values().map(|f| f.bytes_written).sum()
    }

    /// Number of files in the namespace.
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> FileSystem {
        FileSystem::new(
            8,
            CostModel::default(),
            StripeLayout {
                stripe_size: 1 << 20,
                stripe_width: 4,
                ost_offset: 0,
            },
        )
    }

    #[test]
    fn split_extent_respects_stripe_boundaries() {
        let l = StripeLayout {
            stripe_size: 100,
            stripe_width: 2,
            ost_offset: 0,
        };
        let chunks = l.split_extent(50, 200);
        assert_eq!(chunks, vec![(0, 50, 50), (1, 100, 100), (2, 200, 50)]);
        assert_eq!(l.split_extent(0, 0), vec![]);
        assert_eq!(l.split_extent(100, 100), vec![(1, 100, 100)]);
    }

    #[test]
    fn ost_round_robin_over_width() {
        let l = StripeLayout {
            stripe_size: 100,
            stripe_width: 3,
            ost_offset: 2,
        };
        assert_eq!(l.ost_for(0, 8), 2);
        assert_eq!(l.ost_for(100, 8), 3);
        assert_eq!(l.ost_for(200, 8), 4);
        assert_eq!(l.ost_for(300, 8), 2); // wraps at width
    }

    #[test]
    fn open_creates_then_reuses() {
        let mut f = fs();
        let (h1, _) = f.open("/a", 0, 0.0, true).unwrap();
        let (h2, _) = f.open("/a", 1, 1.0, true).unwrap();
        assert_eq!(h1, h2);
        assert_eq!(f.file_count(), 1);
        assert_eq!(f.mds().creates, 1);
        assert_eq!(f.mds().opens, 1);
    }

    #[test]
    fn open_missing_without_create_fails() {
        let mut f = fs();
        assert!(matches!(
            f.open("/nope", 0, 0.0, false),
            Err(SimError::NoSuchFile { .. })
        ));
    }

    #[test]
    fn write_then_read_round_trips_and_conserves_bytes() {
        let mut f = fs();
        let (h, _) = f.open("/a", 0, 0.0, true).unwrap();
        f.write(h, 0, 0, 4096, 0.0, true).unwrap();
        f.write(h, 0, 4096, 4096, 0.1, true).unwrap();
        let out = f.read(h, 0, 0, 8192, 0.2, true).unwrap();
        assert!(out.end_time > 0.2);
        assert_eq!(f.file(h).unwrap().size, 8192);
        assert_eq!(f.total_ost_bytes_written(), 8192);
        assert_eq!(f.total_file_bytes_written(), 8192);
    }

    #[test]
    fn read_past_eof_rejected() {
        let mut f = fs();
        let (h, _) = f.open("/a", 0, 0.0, true).unwrap();
        f.write(h, 0, 0, 100, 0.0, true).unwrap();
        assert!(matches!(
            f.read(h, 0, 50, 100, 0.1, true),
            Err(SimError::ReadPastEof { .. })
        ));
    }

    #[test]
    fn interleaved_shared_stripe_writes_cause_lock_conflicts() {
        let mut f = fs();
        let (h, _) = f.open("/shared", 0, 0.0, true).unwrap();
        // Two ranks alternate within the same 1 MiB stripe.
        let mut conflicts = 0;
        for i in 0..10u64 {
            let rank = (i % 2) as u32;
            let out = f.write(h, rank, i * 1000, 1000, i as f64, true).unwrap();
            conflicts += out.lock_conflicts;
        }
        assert!(conflicts >= 8, "alternating ranks must ping-pong the lock");
    }

    #[test]
    fn per_rank_stripes_cause_no_conflicts() {
        let mut f = fs();
        let (h, _) = f.open("/shared", 0, 0.0, true).unwrap();
        let stripe = 1 << 20;
        let mut conflicts = 0;
        for rank in 0..4u32 {
            let base = u64::from(rank) * stripe;
            for i in 0..8u64 {
                let out = f.write(h, rank, base + i * 1024, 1024, 0.0, true).unwrap();
                conflicts += out.lock_conflicts;
            }
        }
        assert_eq!(conflicts, 0);
    }

    #[test]
    fn misaligned_write_reports_unaligned() {
        let mut f = fs();
        let (h, _) = f.open("/a", 0, 0.0, true).unwrap();
        let aligned = f.write(h, 0, 0, 100, 0.0, true).unwrap();
        let misaligned = f.write(h, 0, 47, 100, 1.0, true).unwrap();
        assert!(aligned.aligned);
        assert!(!misaligned.aligned);
    }

    #[test]
    fn large_write_spans_multiple_osts() {
        let mut f = fs();
        let (h, _) = f.open("/big", 0, 0.0, true).unwrap();
        f.write(h, 0, 0, 4 << 20, 0.0, true).unwrap(); // 4 stripes
        let used = f.osts().iter().filter(|o| o.bytes_written > 0).count();
        assert_eq!(used, 4);
    }

    #[test]
    fn unlink_removes_file_and_locks() {
        let mut f = fs();
        let (h, _) = f.open("/a", 0, 0.0, true).unwrap();
        f.write(h, 0, 0, 10, 0.0, true).unwrap();
        f.unlink("/a", 1.0).unwrap();
        assert_eq!(f.file_count(), 0);
        assert_eq!(f.locks().locked_extents(), 0);
        assert!(f.stat("/a", 2.0).is_err());
    }

    #[test]
    fn zero_length_op_costs_one_rpc() {
        let mut f = fs();
        let (h, _) = f.open("/a", 0, 0.0, true).unwrap();
        let out = f.write(h, 0, 0, 0, 5.0, true).unwrap();
        assert_eq!(out.rpcs, 1);
        assert!(out.end_time > 5.0);
        assert_eq!(f.file(h).unwrap().size, 0);
    }
}
