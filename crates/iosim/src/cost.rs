//! Cost model: assigns durations to simulated I/O operations.
//!
//! The parameters approximate a mid-sized Lustre installation. Absolute
//! values are not meant to match any particular machine — the evaluation
//! depends on *relative* behaviour (small ops dominated by per-RPC latency,
//! large ops dominated by bandwidth, lock transfers and metadata storms
//! adding visible overhead).

use serde::{Deserialize, Serialize};

/// Tunable cost parameters for the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Client→OST round-trip latency per RPC, seconds.
    pub rpc_latency: f64,
    /// Sustained per-OST bandwidth, bytes/second.
    pub ost_bandwidth: f64,
    /// Maximum payload of a single RPC, bytes (Lustre default 4 MiB).
    pub rpc_size: u64,
    /// Cost of a metadata operation at the MDS, seconds.
    pub meta_latency: f64,
    /// Cost of acquiring or revoking an extent lock, seconds.
    pub lock_latency: f64,
    /// Extra latency charged when an access is not stripe-aligned and must
    /// touch an extra server-side block boundary, seconds.
    pub misalign_penalty: f64,
    /// Extra latency for operations from unaligned client memory, seconds.
    pub mem_misalign_penalty: f64,
    /// Per-byte cost of shuffling data between ranks during collective
    /// two-phase I/O, seconds/byte (network copy).
    pub exchange_bandwidth_inv: f64,
    /// Fixed cost of a collective synchronization, seconds.
    pub collective_latency: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            rpc_latency: 250e-6,
            ost_bandwidth: 1.5e9,
            rpc_size: 4 << 20,
            meta_latency: 400e-6,
            lock_latency: 150e-6,
            misalign_penalty: 80e-6,
            mem_misalign_penalty: 10e-6,
            exchange_bandwidth_inv: 1.0 / 8e9,
            collective_latency: 60e-6,
        }
    }
}

impl CostModel {
    /// Number of RPCs a transfer of `size` bytes requires.
    #[must_use]
    pub fn rpc_count(&self, size: u64) -> u64 {
        if size == 0 {
            1
        } else {
            size.div_ceil(self.rpc_size)
        }
    }

    /// Service time for moving `size` bytes to/from one OST, excluding
    /// queueing: per-RPC latency plus bandwidth term.
    #[must_use]
    pub fn transfer_time(&self, size: u64) -> f64 {
        self.rpc_count(size) as f64 * self.rpc_latency + size as f64 / self.ost_bandwidth
    }

    /// Time for the data-exchange phase of a collective moving `size` bytes.
    #[must_use]
    pub fn exchange_time(&self, size: u64) -> f64 {
        self.collective_latency + size as f64 * self.exchange_bandwidth_inv
    }

    /// Whether transfers of `size` bytes underutilize the RPC payload.
    ///
    /// This mirrors the observation in the paper that operations smaller
    /// than the configured RPC size (4 MiB on the evaluated system) leave
    /// RPC capacity unused.
    #[must_use]
    pub fn underutilizes_rpc(&self, size: u64) -> bool {
        size < self.rpc_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpc_count_rounds_up() {
        let m = CostModel::default();
        assert_eq!(m.rpc_count(0), 1);
        assert_eq!(m.rpc_count(1), 1);
        assert_eq!(m.rpc_count(4 << 20), 1);
        assert_eq!(m.rpc_count((4 << 20) + 1), 2);
        assert_eq!(m.rpc_count(16 << 20), 4);
    }

    #[test]
    fn transfer_time_monotonic_in_size() {
        let m = CostModel::default();
        let mut prev = 0.0;
        for size in [1u64, 1024, 1 << 20, 4 << 20, 64 << 20] {
            let t = m.transfer_time(size);
            assert!(t > prev, "time must grow with size");
            prev = t;
        }
    }

    #[test]
    fn small_ops_dominated_by_latency() {
        let m = CostModel::default();
        // 2 KiB transfer: bandwidth term is negligible vs RPC latency.
        let t = m.transfer_time(2048);
        assert!(t < 2.0 * m.rpc_latency);
        assert!(t >= m.rpc_latency);
    }

    #[test]
    fn underutilization_threshold_is_rpc_size() {
        let m = CostModel::default();
        assert!(m.underutilizes_rpc(1 << 20));
        assert!(!m.underutilizes_rpc(4 << 20));
    }

    #[test]
    fn aggregated_transfer_beats_split_transfers() {
        // The basis of the "small ops are aggregatable" mitigation: one
        // 4 MiB transfer must cost less than 1024 transfers of 4 KiB.
        let m = CostModel::default();
        let split: f64 = (0..1024).map(|_| m.transfer_time(4096)).sum();
        let merged = m.transfer_time(4 << 20);
        assert!(merged < split / 10.0);
    }
}
