//! Metadata server: namespace operations with a serial service queue.

use serde::{Deserialize, Serialize};

/// Kinds of metadata operations the MDS services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetaOp {
    /// File creation.
    Create,
    /// Open of an existing file.
    Open,
    /// Attribute query (`stat`).
    Stat,
    /// File removal.
    Unlink,
    /// Close/handle release.
    Close,
}

/// The metadata server. Like the OSTs it services requests FCFS on one
/// virtual channel, so metadata storms (MD-Workbench-style workloads)
/// translate into growing queue delay — the "unnecessary load on metadata
/// servers" that ION calls out.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Mds {
    busy_until: f64,
    /// Latest arrival seen, for out-of-order detection (see [`crate::ost::Ost::service`]).
    last_arrival: f64,
    /// Operation counts by kind.
    pub creates: u64,
    /// Open count.
    pub opens: u64,
    /// Stat count.
    pub stats: u64,
    /// Unlink count.
    pub unlinks: u64,
    /// Close count.
    pub closes: u64,
    /// Accumulated queueing delay, seconds.
    pub queue_delay: f64,
}

impl Mds {
    /// Create an idle metadata server.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Service a metadata operation arriving at `arrival`; returns completion
    /// time. Requests arriving out of virtual-time order (the engine loops
    /// ranks sequentially) are served at their own arrival time: the server
    /// was provably idle then.
    pub fn service(&mut self, op: MetaOp, arrival: f64, service_time: f64) -> f64 {
        match op {
            MetaOp::Create => self.creates += 1,
            MetaOp::Open => self.opens += 1,
            MetaOp::Stat => self.stats += 1,
            MetaOp::Unlink => self.unlinks += 1,
            MetaOp::Close => self.closes += 1,
        }
        if arrival < self.last_arrival {
            return arrival + service_time;
        }
        self.last_arrival = arrival;
        let start = arrival.max(self.busy_until);
        self.queue_delay += start - arrival;
        let end = start + service_time;
        self.busy_until = end;
        end
    }

    /// Total metadata operations serviced.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.creates + self.opens + self.stats + self.unlinks + self.closes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_counted_by_kind() {
        let mut m = Mds::new();
        m.service(MetaOp::Create, 0.0, 0.1);
        m.service(MetaOp::Open, 0.0, 0.1);
        m.service(MetaOp::Open, 0.0, 0.1);
        m.service(MetaOp::Stat, 0.0, 0.1);
        assert_eq!(m.creates, 1);
        assert_eq!(m.opens, 2);
        assert_eq!(m.stats, 1);
        assert_eq!(m.total_ops(), 4);
    }

    #[test]
    fn storm_accumulates_queue_delay() {
        let mut m = Mds::new();
        // 10 ops all arriving at t=0, each taking 1ms: the last waits 9ms.
        for _ in 0..10 {
            m.service(MetaOp::Open, 0.0, 0.001);
        }
        assert!((m.queue_delay - 0.045).abs() < 1e-9); // 0+1+...+9 ms
    }
}
