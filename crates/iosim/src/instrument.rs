//! Darshan instrumentation shim: observes simulated calls, emits a [`Log`].

use darshan::accum::{AlignmentSpec, MpiioAccumulator, PosixAccumulator, StdioAccumulator};
use darshan::counters::ModuleId;
use darshan::dxt::{DxtLayer, DxtRecord, DxtSegment, OpKind};
use darshan::heatmap::HeatmapAccumulator;
use darshan::log::{Log, LogWriter};
use darshan::record_id;
use darshan::records::{JobRecord, LustreRecord};
use std::collections::HashMap;

/// Collects Darshan records during a simulated run.
///
/// The shim mirrors `darshan-runtime`: one accumulator per `(file, rank)`
/// per module, one DXT record per `(file, rank, layer)`, one Lustre record
/// per file, and a name table, all assembled into a [`Log`] at
/// [`DarshanShim::finish`].
#[derive(Debug)]
pub struct DarshanShim {
    alignment: AlignmentSpec,
    dxt_enabled: bool,
    names: HashMap<u64, String>,
    posix: HashMap<(u64, i32), PosixAccumulator>,
    mpiio: HashMap<(u64, i32), MpiioAccumulator>,
    stdio: HashMap<(u64, i32), StdioAccumulator>,
    dxt: HashMap<(u64, i32, DxtLayer), DxtRecord>,
    heatmap: HashMap<i32, HeatmapAccumulator>,
    lustre: HashMap<u64, LustreRecord>,
    hostnames: HashMap<i32, String>,
}

impl DarshanShim {
    /// Create a shim. `alignment` sets the `*_FILE_ALIGNMENT` counters and
    /// classification; `dxt_enabled` controls whether per-op traces are kept
    /// (Darshan's `DXT_ENABLE_IO_TRACE`).
    #[must_use]
    pub fn new(alignment: AlignmentSpec, dxt_enabled: bool) -> Self {
        DarshanShim {
            alignment,
            dxt_enabled,
            names: HashMap::new(),
            posix: HashMap::new(),
            mpiio: HashMap::new(),
            stdio: HashMap::new(),
            dxt: HashMap::new(),
            heatmap: HashMap::new(),
            lustre: HashMap::new(),
            hostnames: HashMap::new(),
        }
    }

    /// Register a file path, returning its Darshan record id.
    pub fn register(&mut self, path: &str) -> u64 {
        let id = record_id(path);
        self.names.entry(id).or_insert_with(|| path.to_owned());
        id
    }

    /// Register the hostname a rank runs on (for DXT records).
    pub fn register_host(&mut self, rank: i32, hostname: &str) {
        self.hostnames
            .entry(rank)
            .or_insert_with(|| hostname.to_owned());
    }

    /// Record Lustre striping for a file (captured at first open).
    pub fn record_lustre(&mut self, file: u64, stripe_size: i64, ost_ids: Vec<i64>) {
        self.lustre
            .entry(file)
            .or_insert_with(|| LustreRecord::new(file, 0, stripe_size, ost_ids));
    }

    fn posix_acc(&mut self, file: u64, rank: i32) -> &mut PosixAccumulator {
        let alignment = self.alignment;
        self.posix
            .entry((file, rank))
            .or_insert_with(|| PosixAccumulator::with_alignment(file, rank, alignment))
    }

    fn mpiio_acc(&mut self, file: u64, rank: i32) -> &mut MpiioAccumulator {
        self.mpiio
            .entry((file, rank))
            .or_insert_with(|| MpiioAccumulator::new(file, rank))
    }

    fn stdio_acc(&mut self, file: u64, rank: i32) -> &mut StdioAccumulator {
        self.stdio
            .entry((file, rank))
            .or_insert_with(|| StdioAccumulator::new(file, rank))
    }

    /// Record a POSIX open.
    pub fn posix_open(&mut self, file: u64, rank: i32, start: f64, end: f64) {
        self.posix_acc(file, rank).open(start, end);
    }

    /// Record a POSIX close.
    pub fn posix_close(&mut self, file: u64, rank: i32, start: f64, end: f64) {
        self.posix_acc(file, rank).close(start, end);
    }

    /// Record a POSIX seek.
    pub fn posix_seek(&mut self, file: u64, rank: i32, start: f64, end: f64) {
        self.posix_acc(file, rank).seek(start, end);
    }

    /// Record a POSIX stat.
    pub fn posix_stat(&mut self, file: u64, rank: i32, start: f64, end: f64) {
        self.posix_acc(file, rank).stat(start, end);
    }

    /// Record a POSIX fsync.
    pub fn posix_fsync(&mut self, file: u64, rank: i32, start: f64, end: f64) {
        self.posix_acc(file, rank).fsync(start, end);
    }

    /// Record a POSIX read, including its DXT segment when tracing is on.
    #[allow(clippy::too_many_arguments)]
    pub fn posix_read(
        &mut self,
        file: u64,
        rank: i32,
        offset: u64,
        size: u64,
        start: f64,
        end: f64,
        mem_aligned: bool,
    ) {
        self.posix_acc(file, rank)
            .read(offset, size, start, end, mem_aligned);
        self.heatmap_observe(rank, false, size, start, end);
        self.dxt_push(
            file,
            rank,
            DxtLayer::Posix,
            OpKind::Read,
            offset,
            size,
            start,
            end,
        );
    }

    /// Record a POSIX write, including its DXT segment when tracing is on.
    #[allow(clippy::too_many_arguments)]
    pub fn posix_write(
        &mut self,
        file: u64,
        rank: i32,
        offset: u64,
        size: u64,
        start: f64,
        end: f64,
        mem_aligned: bool,
    ) {
        self.posix_acc(file, rank)
            .write(offset, size, start, end, mem_aligned);
        self.heatmap_observe(rank, true, size, start, end);
        self.dxt_push(
            file,
            rank,
            DxtLayer::Posix,
            OpKind::Write,
            offset,
            size,
            start,
            end,
        );
    }

    /// Record an MPI-IO open.
    pub fn mpiio_open(&mut self, file: u64, rank: i32, collective: bool, start: f64, end: f64) {
        self.mpiio_acc(file, rank).open(collective, start, end);
    }

    /// Record an MPI-IO close.
    pub fn mpiio_close(&mut self, file: u64, rank: i32, start: f64, end: f64) {
        self.mpiio_acc(file, rank).close(start, end);
    }

    /// Record an MPI-IO read at the MPI layer.
    #[allow(clippy::too_many_arguments)]
    pub fn mpiio_read(
        &mut self,
        file: u64,
        rank: i32,
        offset: u64,
        size: u64,
        collective: bool,
        start: f64,
        end: f64,
    ) {
        self.mpiio_acc(file, rank)
            .read(size, collective, start, end);
        self.dxt_push(
            file,
            rank,
            DxtLayer::MpiIo,
            OpKind::Read,
            offset,
            size,
            start,
            end,
        );
    }

    /// Record an MPI-IO write at the MPI layer.
    #[allow(clippy::too_many_arguments)]
    pub fn mpiio_write(
        &mut self,
        file: u64,
        rank: i32,
        offset: u64,
        size: u64,
        collective: bool,
        start: f64,
        end: f64,
    ) {
        self.mpiio_acc(file, rank)
            .write(size, collective, start, end);
        self.dxt_push(
            file,
            rank,
            DxtLayer::MpiIo,
            OpKind::Write,
            offset,
            size,
            start,
            end,
        );
    }

    /// Record an `MPI_File_set_view`.
    pub fn mpiio_set_view(&mut self, file: u64, rank: i32) {
        self.mpiio_acc(file, rank).set_view();
    }

    /// Record a STDIO open.
    pub fn stdio_open(&mut self, file: u64, rank: i32, start: f64, end: f64) {
        self.stdio_acc(file, rank).open(start, end);
    }

    /// Record a STDIO write.
    pub fn stdio_write(
        &mut self,
        file: u64,
        rank: i32,
        offset: u64,
        size: u64,
        start: f64,
        end: f64,
    ) {
        self.stdio_acc(file, rank).write(offset, size, start, end);
        self.heatmap_observe(rank, true, size, start, end);
    }

    /// Record a STDIO read.
    pub fn stdio_read(
        &mut self,
        file: u64,
        rank: i32,
        offset: u64,
        size: u64,
        start: f64,
        end: f64,
    ) {
        self.stdio_acc(file, rank).read(offset, size, start, end);
        self.heatmap_observe(rank, false, size, start, end);
    }

    /// Record a STDIO close.
    pub fn stdio_close(&mut self, file: u64, rank: i32, start: f64, end: f64) {
        self.stdio_acc(file, rank).close(start, end);
    }

    /// Feed the per-rank temporal heatmap (POSIX/STDIO data ops only, so
    /// MPI-IO collectives are not double counted: their aggregator POSIX
    /// accesses carry the bytes).
    fn heatmap_observe(&mut self, rank: i32, is_write: bool, size: u64, start: f64, end: f64) {
        self.heatmap
            .entry(rank)
            .or_insert_with(|| HeatmapAccumulator::new(rank))
            .observe(is_write, size, start, end);
    }

    #[allow(clippy::too_many_arguments)]
    fn dxt_push(
        &mut self,
        file: u64,
        rank: i32,
        layer: DxtLayer,
        kind: OpKind,
        offset: u64,
        size: u64,
        start: f64,
        end: f64,
    ) {
        if !self.dxt_enabled {
            return;
        }
        let hostname = self
            .hostnames
            .get(&rank)
            .cloned()
            .unwrap_or_else(|| "localhost".to_owned());
        let rec = self
            .dxt
            .entry((file, rank, layer))
            .or_insert_with(|| DxtRecord::new(file, rank, layer, &hostname));
        rec.push(
            kind,
            DxtSegment {
                offset,
                length: size,
                start_time: start,
                end_time: end,
            },
        );
    }

    /// Modules that have collected at least one record.
    #[must_use]
    pub fn active_modules(&self) -> Vec<ModuleId> {
        let mut out = Vec::new();
        if !self.posix.is_empty() {
            out.push(ModuleId::Posix);
        }
        if !self.mpiio.is_empty() {
            out.push(ModuleId::MpiIo);
        }
        if !self.stdio.is_empty() {
            out.push(ModuleId::Stdio);
        }
        if !self.lustre.is_empty() {
            out.push(ModuleId::Lustre);
        }
        if !self.dxt.is_empty() {
            out.push(ModuleId::Dxt);
        }
        if !self.heatmap.is_empty() {
            out.push(ModuleId::Heatmap);
        }
        out
    }

    /// Assemble the log. Records are sorted by `(file, rank)` so output is
    /// deterministic.
    #[must_use]
    pub fn finish(self, job: JobRecord) -> Log {
        let mut writer = LogWriter::new(job);
        let mut names: Vec<_> = self.names.into_iter().collect();
        names.sort();
        for (id, path) in names {
            writer.register_name(id, &path);
        }
        let mut posix: Vec<_> = self.posix.into_iter().collect();
        posix.sort_by_key(|((f, r), _)| (*f, *r));
        for (_, acc) in posix {
            writer.add_posix_record(acc.finish());
        }
        let mut mpiio: Vec<_> = self.mpiio.into_iter().collect();
        mpiio.sort_by_key(|((f, r), _)| (*f, *r));
        for (_, acc) in mpiio {
            writer.add_mpiio_record(acc.finish());
        }
        let mut stdio: Vec<_> = self.stdio.into_iter().collect();
        stdio.sort_by_key(|((f, r), _)| (*f, *r));
        for (_, acc) in stdio {
            writer.add_stdio_record(acc.finish());
        }
        let mut lustre: Vec<_> = self.lustre.into_iter().collect();
        lustre.sort_by_key(|(f, _)| *f);
        for (_, rec) in lustre {
            writer.add_lustre_record(rec);
        }
        let mut dxt: Vec<_> = self.dxt.into_iter().collect();
        dxt.sort_by_key(|((f, r, l), _)| (*f, *r, matches!(l, DxtLayer::MpiIo) as u8));
        for (_, rec) in dxt {
            writer.add_dxt_record(rec);
        }
        let mut heatmap: Vec<_> = self.heatmap.into_iter().collect();
        heatmap.sort_by_key(|(r, _)| *r);
        for (_, acc) in heatmap {
            writer.add_heatmap_record(acc.finish());
        }
        writer.into_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shim_collects_posix_and_dxt() {
        let mut shim = DarshanShim::new(AlignmentSpec::default(), true);
        let f = shim.register("/data/a");
        shim.register_host(0, "nid00000");
        shim.posix_open(f, 0, 0.0, 0.001);
        shim.posix_write(f, 0, 0, 4096, 0.001, 0.002, true);
        shim.posix_close(f, 0, 0.002, 0.003);
        let log = shim.finish(JobRecord::new(1, 2, 1));
        assert_eq!(log.posix.len(), 1);
        assert_eq!(log.dxt.len(), 1);
        assert_eq!(log.dxt[0].writes.len(), 1);
        assert_eq!(log.dxt[0].hostname, "nid00000");
        assert_eq!(log.path_for(f), Some("/data/a"));
    }

    #[test]
    fn dxt_disabled_suppresses_traces() {
        let mut shim = DarshanShim::new(AlignmentSpec::default(), false);
        let f = shim.register("/data/a");
        shim.posix_write(f, 0, 0, 4096, 0.0, 0.1, true);
        let log = shim.finish(JobRecord::new(1, 2, 1));
        assert_eq!(log.posix.len(), 1);
        assert!(log.dxt.is_empty());
    }

    #[test]
    fn records_keyed_per_rank() {
        let mut shim = DarshanShim::new(AlignmentSpec::default(), false);
        let f = shim.register("/data/a");
        for rank in 0..4 {
            shim.posix_write(f, rank, 0, 10, 0.0, 0.1, true);
        }
        let log = shim.finish(JobRecord::new(1, 2, 4));
        assert_eq!(log.posix.len(), 4);
        // Deterministic ordering by rank.
        let ranks: Vec<i32> = log.posix.iter().map(|r| r.rank).collect();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn lustre_record_captured_once() {
        let mut shim = DarshanShim::new(AlignmentSpec::default(), false);
        let f = shim.register("/data/a");
        shim.record_lustre(f, 1 << 20, vec![0, 1]);
        shim.record_lustre(f, 2 << 20, vec![5]); // ignored: already captured
        let log = shim.finish(JobRecord::new(1, 2, 1));
        assert_eq!(log.lustre.len(), 1);
        assert_eq!(log.lustre[0].stripe_size(), 1 << 20);
    }

    #[test]
    fn active_modules_tracks_usage() {
        let mut shim = DarshanShim::new(AlignmentSpec::default(), true);
        let f = shim.register("/a");
        shim.mpiio_write(f, 0, 0, 100, true, 0.0, 0.1);
        let mods = shim.active_modules();
        assert!(mods.contains(&ModuleId::MpiIo));
        assert!(mods.contains(&ModuleId::Dxt));
        assert!(!mods.contains(&ModuleId::Posix));
    }
}
