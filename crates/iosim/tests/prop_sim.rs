//! Property-based tests for the simulator substrate: conservation,
//! placement and collective-plan invariants.

use iosim::mpiio::{CollectivePlan, CollectiveRequest};
use iosim::pfs::StripeLayout;
use iosim::{SimConfig, Simulation};
use proptest::prelude::*;

proptest! {
    #[test]
    fn split_extent_partitions_exactly(
        stripe_pow in 16u32..22,
        offset in 0u64..1 << 30,
        len in 0u64..1 << 24,
    ) {
        let layout = StripeLayout {
            stripe_size: 1 << stripe_pow,
            stripe_width: 4,
            ost_offset: 0,
        };
        let chunks = layout.split_extent(offset, len);
        // Chunks are contiguous, cover [offset, offset+len), and never
        // cross a stripe boundary.
        let mut cur = offset;
        for (stripe, chunk_off, chunk_len) in &chunks {
            prop_assert_eq!(*chunk_off, cur);
            prop_assert!(*chunk_len > 0);
            prop_assert_eq!(*stripe, chunk_off / (1 << stripe_pow));
            prop_assert_eq!((chunk_off + chunk_len - 1) / (1 << stripe_pow), *stripe);
            cur = chunk_off + chunk_len;
        }
        prop_assert_eq!(cur, offset + len);
    }

    #[test]
    fn ost_placement_within_bounds(
        stripe_pow in 16u32..22,
        width in 1u32..16,
        ost_offset in 0u32..64,
        ost_count in 1u32..64,
        offset in 0u64..1 << 40,
    ) {
        let layout = StripeLayout {
            stripe_size: 1 << stripe_pow,
            stripe_width: width,
            ost_offset,
        };
        let ost = layout.ost_for(offset, ost_count);
        prop_assert!(ost < ost_count);
    }

    #[test]
    fn bytes_are_conserved_through_the_stack(
        writes in proptest::collection::vec(
            (0u32..4, 0u64..1 << 22, 1u64..1 << 16),
            1..40
        ),
    ) {
        let mut sim = Simulation::new(SimConfig::default().with_ranks(4));
        let f = sim.posix_open_all("/prop").unwrap();
        let mut expected = 0u64;
        for (rank, offset, len) in writes {
            sim.posix_write(rank, f, offset, len).unwrap();
            expected += len;
        }
        prop_assert_eq!(sim.fs().total_ost_bytes_written(), expected);
        prop_assert_eq!(sim.fs().total_file_bytes_written(), expected);
        let log = sim.finish();
        let logged: i64 = log
            .posix
            .iter()
            .map(|r| r.get(darshan::counters::PosixCounter::POSIX_BYTES_WRITTEN))
            .sum();
        prop_assert_eq!(logged as u64, expected);
        // DXT traces exactly the same bytes.
        let dxt_bytes: u64 = log.dxt.iter().map(darshan::dxt::DxtRecord::total_bytes).sum();
        prop_assert_eq!(dxt_bytes, expected);
    }

    #[test]
    fn clocks_are_monotone_under_any_op_sequence(
        ops in proptest::collection::vec(
            (0u32..4, 0u64..1 << 20, 0u64..1 << 14, any::<bool>()),
            1..40
        ),
    ) {
        let mut sim = Simulation::new(SimConfig::default().with_ranks(4));
        let f = sim.posix_open_all("/prop").unwrap();
        let mut last = [0.0f64; 4];
        for r in 0..4u32 {
            last[r as usize] = sim.time(r);
        }
        for (rank, offset, len, is_write) in ops {
            let before = sim.time(rank);
            if is_write {
                sim.posix_write(rank, f, offset, len).unwrap();
            } else {
                // Reads may hit EOF; either way the clock must not go back.
                let _ = sim.posix_read(rank, f, offset, len);
            }
            prop_assert!(sim.time(rank) >= before);
        }
    }

    #[test]
    fn collective_plan_covers_merged_bytes_exactly_once(
        sizes in proptest::collection::vec(1u64..1 << 22, 1..32),
        cb in 1u32..12,
        stripe_pow in 18u32..22,
    ) {
        // Contiguous per-rank extents (the common collective shape).
        let mut offset = 0u64;
        let reqs: Vec<CollectiveRequest> = sizes
            .iter()
            .enumerate()
            .map(|(rank, &length)| {
                let r = CollectiveRequest {
                    rank: rank as u32,
                    offset,
                    length,
                };
                offset += length;
                r
            })
            .collect();
        let plan = CollectivePlan::plan(&reqs, cb, 1 << stripe_pow);
        let total: u64 = sizes.iter().sum();
        prop_assert_eq!(plan.file_bytes, total);
        let covered: u64 = plan.assignments.iter().map(|a| a.length).sum();
        prop_assert_eq!(covered, total);
        // Assignments are disjoint, sorted, contiguous.
        let mut cur = 0u64;
        for a in &plan.assignments {
            prop_assert_eq!(a.offset, cur);
            prop_assert!(a.length > 0);
            cur = a.offset + a.length;
        }
        // No more aggregator accesses than we have aggregators... per
        // stripe-snapped domain; at minimum the plan must not degenerate to
        // more accesses than requests when extents merge fully.
        prop_assert!(plan.assignments.len() <= reqs.len().max(cb as usize));
        // Exchange never exceeds the total produced.
        prop_assert!(plan.exchange_bytes <= total);
    }

    #[test]
    fn overlapping_collective_requests_write_merged_extent(
        base in 0u64..1 << 20,
        len in 1u64..1 << 16,
        overlap in 0u64..1 << 12,
    ) {
        // Two ranks whose extents overlap by `overlap` bytes.
        let second_off = base + len - overlap.min(len - 1);
        let reqs = vec![
            CollectiveRequest { rank: 0, offset: base, length: len },
            CollectiveRequest { rank: 1, offset: second_off, length: len },
        ];
        let plan = CollectivePlan::plan(&reqs, 2, 1 << 20);
        let merged_len = (second_off + len) - base;
        prop_assert_eq!(plan.file_bytes, merged_len);
    }
}
