//! CLI smoke for the daemon: `ion_cli serve 127.0.0.1:0` binds an
//! ephemeral port (scraped from the stderr banner), serves a full job
//! round-trip over real TCP, and a SIGINT drains it to a clean exit with
//! the drain summary on stderr.
#![cfg(unix)]

use darshan::log::LogWriter;
use iosim::{SimConfig, Simulation};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Command, Stdio};

fn trace_bytes() -> Vec<u8> {
    let mut sim = Simulation::new(
        SimConfig::default()
            .with_ranks(2)
            .with_exe("serve-cli-smoke"),
    );
    let f = sim.posix_open_all("/scratch/smoke.dat").unwrap();
    for i in 0..16u64 {
        for rank in 0..2u32 {
            let base = u64::from(rank) * (4 << 20);
            sim.posix_write(rank, f, base + i * 1024, 1024).unwrap();
        }
    }
    sim.posix_close_all(f);
    LogWriter::from_log(sim.finish()).finish().unwrap()
}

#[test]
fn serve_subcommand_round_trips_and_drains_on_sigint() {
    let root = std::env::temp_dir().join(format!("ion-serve-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut child = Command::new(env!("CARGO_BIN_EXE_ion_cli"))
        .arg("serve")
        .arg("127.0.0.1:0")
        .arg("--store")
        .arg(root.join("store"))
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ion_cli serve");
    let stderr = child.stderr.take().unwrap();
    let mut lines = BufReader::new(stderr).lines();
    let banner = lines
        .next()
        .expect("daemon must print a listen banner")
        .unwrap();
    let addr: SocketAddr = banner
        .split("http://")
        .nth(1)
        .unwrap_or_else(|| panic!("no address in banner: {banner}"))
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap_or_else(|e| panic!("bad address in banner ({e}): {banner}"));

    let health = ion_serve::client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);

    let submitted = ion_serve::client::post(
        addr,
        "/v1/jobs",
        &[("X-Ion-Tenant", "smoke")],
        &trace_bytes(),
    )
    .unwrap();
    assert_eq!(submitted.status, 202, "{}", submitted.text());
    let id = submitted
        .json()
        .unwrap()
        .get("job")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();

    let done = ion_serve::client::get(addr, &format!("/v1/jobs/{id}?wait_ms=30000")).unwrap();
    assert_eq!(
        done.json().unwrap().get("state").unwrap().as_str(),
        Some("done"),
        "{}",
        done.text()
    );
    let report = ion_serve::client::get(addr, &format!("/v1/jobs/{id}/report")).unwrap();
    assert_eq!(report.status, 200);
    assert!(!report.body.is_empty(), "report must be non-empty");

    // First SIGINT: graceful drain, clean exit, summary on stderr.
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(kill.success());
    let tail: Vec<String> = lines.map_while(Result::ok).collect();
    let status = child.wait().unwrap();
    assert!(
        status.success(),
        "daemon must exit cleanly, got {status}; stderr:\n{}",
        tail.join("\n")
    );
    let tail = tail.join("\n");
    assert!(tail.contains("ion-serve stopped"), "{tail}");
    assert!(tail.contains("1 done"), "{tail}");
    let _ = std::fs::remove_dir_all(&root);
}
