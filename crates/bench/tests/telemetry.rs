//! Live telemetry, end to end: the `/metrics`-`/progress`-`/healthz`
//! endpoint over a real batch run, the `--events` JSONL stream, the
//! `obs diff` regression gate's exit codes, and `exp_scaling --bench-out`.
//!
//! Library-level tests drive `MetricsServer` + `analyze_dir` in-process
//! (deterministic); process-level tests spawn the actual binaries the CI
//! smoke step and human users run.

use ion_obs::events::{Event, SCHEMA as EVENTS_SCHEMA};
use ion_obs::json;
use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;
use workloads::ior::ior_easy_2kb_shared;
use workloads::Workload;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ion-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write a few distinct small traces (plus one duplicate for cache hits).
fn write_traces(dir: &Path) {
    std::fs::create_dir_all(dir).unwrap();
    for (name, scale) in [("a", 0.02), ("b", 0.03), ("a-again", 0.02)] {
        let log = ior_easy_2kb_shared(scale).generate();
        let bytes = darshan::log::LogWriter::from_log(log).finish().unwrap();
        std::fs::write(dir.join(format!("{name}.darshan")), bytes).unwrap();
    }
}

/// One plain-std HTTP GET; returns (status line, body).
fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    (head.lines().next().unwrap().to_owned(), body.to_owned())
}

/// Parse the events JSONL file: checked header, then the event lines.
fn read_events(path: &Path) -> Vec<Event> {
    let text = std::fs::read_to_string(path).unwrap();
    let mut lines = text.lines();
    let header = json::parse(lines.next().expect("header line")).unwrap();
    assert_eq!(header.get("schema").unwrap().as_str(), Some(EVENTS_SCHEMA));
    lines
        .map(|line| Event::from_json(&json::parse(line).unwrap()).expect("event line"))
        .collect()
}

/// The whole telemetry stack in-process: a live endpoint over a real
/// batch run against a real store, with the event stream attached.
#[test]
fn live_batch_is_observable_end_to_end() {
    // The global sink and event stream are process-wide; serialize with
    // any other test in this binary that might touch them.
    static SINK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let dir = tmp_dir("lib");
    write_traces(&dir.join("traces"));

    ion_obs::reset();
    ion_obs::enable();
    let ring = Arc::new(ion_obs::events::EventRing::new(
        ion_obs::events::DEFAULT_CAPACITY,
    ));
    ion_obs::events::install(Arc::clone(&ring));
    let server = ion_obs::serve::MetricsServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    let store = Arc::new(ion_store::Store::open(dir.join("store")).unwrap());
    let driver = ion_store::StoredPipeline::new(store);
    let report = std::thread::scope(|scope| {
        let batch = scope.spawn(|| ion_store::analyze_dir(&driver, &dir.join("traces"), 2));
        // Scrape while the batch runs; progress counts only ever grow.
        let mut last_done = 0;
        while !batch.is_finished() {
            let (status, body) = http_get(&addr, "/progress");
            assert_eq!(status, "HTTP/1.1 200 OK");
            let doc = json::parse(body.trim()).unwrap();
            // The batch thread may not have registered its totals yet;
            // only assert once the run has actually started.
            if doc.get("total").unwrap().as_u64() == Some(0) {
                std::thread::sleep(std::time::Duration::from_millis(1));
                continue;
            }
            assert_eq!(doc.get("total").unwrap().as_u64(), Some(3));
            let done = doc.get("completed").unwrap().as_u64().unwrap()
                + doc.get("failed").unwrap().as_u64().unwrap();
            assert!(done >= last_done, "progress never goes backwards");
            last_done = done;
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        batch.join().unwrap().unwrap()
    });
    assert_eq!(report.succeeded(), 3);

    // Re-analyze one trace against the now-warm store: red-green
    // revalidation serves everything from cache and its counters
    // surface on the same endpoint.
    let warm_trace = std::fs::read(dir.join("traces").join("a.darshan")).unwrap();
    driver.analyze_bytes(&warm_trace).unwrap();

    // Final state through every route.
    let (status, body) = http_get(&addr, "/healthz");
    assert_eq!(
        (status.as_str(), body.as_str()),
        ("HTTP/1.1 200 OK", "ok\n")
    );
    let (_, body) = http_get(&addr, "/progress");
    let doc = json::parse(body.trim()).unwrap();
    assert_eq!(doc.get("completed").unwrap().as_u64(), Some(3));
    assert_eq!(doc.get("failed").unwrap().as_u64(), Some(0));
    assert_eq!(doc.get("in_flight").unwrap().as_u64(), Some(0));
    let (_, metrics) = http_get(&addr, "/metrics");
    assert!(metrics.contains("ion_batch_total 3"), "{metrics}");
    assert!(metrics.contains("ion_batch_completed 3"), "{metrics}");
    assert!(
        metrics.contains("# TYPE ion_store_hit counter"),
        "{metrics}"
    );
    assert!(metrics.contains("# TYPE ion_llm_runs counter"), "{metrics}");
    // The warm re-run above revalidated every memoized issue green.
    assert!(
        metrics.contains("# TYPE ion_store_revalidate_green counter"),
        "{metrics}"
    );
    let green = metrics
        .lines()
        .find_map(|l| l.strip_prefix("ion_store_revalidate_green "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0);
    assert!(
        green > 0,
        "warm re-analysis must revalidate green:\n{metrics}"
    );
    assert!(
        metrics.contains("# TYPE ion_store_revalidate_red counter"),
        "registered at zero so absence of red runs is provable: {metrics}"
    );
    // The batch dispatched through the ion-exec pool, whose gauges and
    // counters surface on the same endpoint.
    assert!(metrics.contains("ion_exec_width"), "{metrics}");
    assert!(metrics.contains("ion_exec_queue_depth 0"), "{metrics}");
    assert!(
        metrics.contains("# TYPE ion_exec_tasks counter"),
        "{metrics}"
    );

    // The event stream saw the batch: per-trace outcomes, span lifecycle,
    // store lookups and model runs all flowed through one ordered ring.
    server.shutdown();
    ion_obs::events::uninstall();
    let events = ring.drain();
    let kind_count = |kind: &str| events.iter().filter(|e| e.kind == kind).count();
    assert_eq!(kind_count("batch.trace.completed"), 3);
    assert_eq!(kind_count("batch.trace.failed"), 0);
    assert!(kind_count("span.open") > 0);
    assert!(kind_count("span.close") > 0);
    assert!(kind_count("store.lookup") > 0);
    assert!(kind_count("llm.run.started") > 0);
    assert!(kind_count("llm.run.completed") > 0);
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "stream is seq-ordered");
    }
    assert_eq!(ring.dropped(), 0, "default capacity absorbs a small batch");

    ion_obs::disable();
    ion_obs::reset();
    let _ = std::fs::remove_dir_all(&dir);
}

fn ion_cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ion_cli"))
}

/// `ion_cli batch --serve --events`: the process serves all three routes
/// while it runs (the `--serve-hold-ms` window keeps the endpoint up long
/// enough for a scrape even when the batch finishes quickly) and leaves a
/// valid JSONL event stream behind.
#[test]
fn cli_batch_serves_and_streams() {
    let dir = tmp_dir("cli-batch");
    write_traces(&dir.join("traces"));
    let events_path = dir.join("events.jsonl");

    let mut child = ion_cli()
        .args([
            "--store",
            dir.join("store").to_str().unwrap(),
            "--serve",
            "127.0.0.1:0",
            "--serve-hold-ms",
            "4000",
            "--events",
            events_path.to_str().unwrap(),
            "batch",
            dir.join("traces").to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    // The bound address is announced on stderr before dispatch.
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).unwrap() > 0,
            "stderr closed before the serve line"
        );
        if let Some(rest) = line.trim().strip_prefix("serving telemetry on http://") {
            break rest.to_owned();
        }
    };

    let (status, body) = http_get(&addr, "/healthz");
    assert_eq!(
        (status.as_str(), body.as_str()),
        ("HTTP/1.1 200 OK", "ok\n")
    );
    // The batch may not have recorded its first metric yet; the
    // --serve-hold-ms window exists exactly so a scrape can land.
    let metrics = loop {
        let (status, metrics) = http_get(&addr, "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        if metrics.contains("# TYPE ") {
            break metrics;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    assert!(metrics.contains("counter\n"), "{metrics}");
    let (status, body) = http_get(&addr, "/progress");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let doc = json::parse(body.trim()).unwrap();
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("ion-obs/progress/1")
    );

    let mut remaining_err = String::new();
    stderr.read_to_string(&mut remaining_err).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "stderr: {remaining_err}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3 analyzed, 0 failed"), "{stdout}");
    assert!(
        remaining_err.contains("event(s) to") && remaining_err.contains("(0 dropped)"),
        "writer accounting on stderr: {remaining_err}"
    );

    let events = read_events(&events_path);
    assert!(!events.is_empty());
    assert_eq!(
        events
            .iter()
            .filter(|e| e.kind == "batch.trace.completed")
            .count(),
        3
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `analyze --events --metrics-json` feeds the CI smoke step: the JSONL
/// stream parses, and the written snapshot self-diffs clean.
#[test]
fn cli_analyze_events_and_self_diff() {
    let dir = tmp_dir("cli-analyze");
    let trace = dir.join("t.darshan");
    let events_path = dir.join("events.jsonl");
    let snap_path = dir.join("snap.json");

    let out = ion_cli()
        .env("IONREPRO_SCALE", "0.02")
        .args(["generate", "ior-easy-2k", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = ion_cli()
        .args([
            "--events",
            events_path.to_str().unwrap(),
            "--metrics-json",
            snap_path.to_str().unwrap(),
            "analyze",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    let events = read_events(&events_path);
    assert!(events.iter().any(|e| e.kind == "span.open"));
    assert!(events.iter().any(|e| e.kind == "span.close"));
    assert!(events.iter().any(|e| e.kind == "counter.add"));
    assert!(events.iter().any(|e| e.kind == "llm.run.completed"));
    assert!(events.iter().any(|e| e.kind == "pipeline.completed"));

    // The snapshot the run wrote gates itself cleanly.
    let out = ion_cli()
        .args([
            "obs",
            "diff",
            snap_path.to_str().unwrap(),
            snap_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 regression(s)"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A hand-authored `ion-obs/1` document pair exercises every gate exit
/// path of `obs diff` at the process level.
#[test]
fn cli_obs_diff_exit_codes() {
    let dir = tmp_dir("cli-diff");
    let doc = |stage_ns: u64, llm_runs: u64| {
        format!(
            "{{\"schema\": \"ion-obs/1\", \
             \"stages\": {{\"pipeline\": {{\"total_ns\": {stage_ns}, \"count\": 1}}}}, \
             \"counters\": {{\"llm.runs\": {llm_runs}}}}}"
        )
    };
    let base = dir.join("base.json");
    let slow = dir.join("slow.json");
    std::fs::write(&base, doc(100_000_000, 5)).unwrap();
    std::fs::write(&slow, doc(200_000_000, 6)).unwrap();

    // Identical documents: clean exit.
    let out = ion_cli()
        .args([
            "obs",
            "diff",
            base.to_str().unwrap(),
            base.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Regressed run: non-zero exit, the report names both regressions,
    // and the usage blurb stays out of the way (this is a CI gate).
    let out = ion_cli()
        .args([
            "obs",
            "diff",
            base.to_str().unwrap(),
            slow.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("REGRESSION stage `pipeline`"), "{stdout}");
    assert!(stdout.contains("REGRESSION counter `llm.runs`"), "{stdout}");
    assert!(
        stderr.contains("regression(s) beyond tolerance"),
        "{stderr}"
    );
    assert!(
        !stderr.contains("usage:"),
        "gate failure is not an argument error: {stderr}"
    );

    // A loose enough tolerance admits the slowdown but never the extra
    // model runs? No — --tolerance loosens counter_frac too, so 1.5 passes.
    let out = ion_cli()
        .args([
            "obs",
            "diff",
            base.to_str().unwrap(),
            slow.to_str().unwrap(),
            "--tolerance",
            "1.5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Argument mistakes still get the usage text.
    let out = ion_cli().args(["obs", "diff"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    // A non-snapshot document is rejected.
    let bogus = dir.join("bogus.json");
    std::fs::write(&bogus, "{}").unwrap();
    let out = ion_cli()
        .args([
            "obs",
            "diff",
            bogus.to_str().unwrap(),
            bogus.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

/// `exp_scaling --quick --bench-out` writes an `ion-obs/1` snapshot with
/// the per-scale spans and stage histograms the diff gate consumes.
#[test]
fn exp_scaling_writes_bench_snapshot() {
    let dir = tmp_dir("scaling");
    let bench = dir.join("BENCH_scaling.json");
    let out = Command::new(env!("CARGO_BIN_EXE_exp_scaling"))
        .args(["--quick", "--bench-out", bench.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&bench).unwrap();
    let doc = json::parse(&text).unwrap();
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("ion-obs/1"));
    let stage = doc.get("stages").unwrap().get("scaling.run").unwrap();
    assert_eq!(
        stage.get("count").unwrap().as_u64(),
        Some(1),
        "--quick runs one scale"
    );
    assert!(stage.get("total_ns").unwrap().as_u64().unwrap() > 0);
    assert!(doc
        .get("counters")
        .unwrap()
        .get("scaling.traced_ops")
        .is_some());

    // And it self-diffs clean through the gate binary.
    let out = ion_cli()
        .args([
            "obs",
            "diff",
            bench.to_str().unwrap(),
            bench.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

/// `exp_scaling --sched` compares chunk-barrier dispatch against the
/// `ion-exec` shared queue and gates on the width-4 speedup; its snapshot
/// is the `BENCH_sched.json` trajectory CI diffs against.
#[test]
fn exp_scaling_sched_gate_passes_and_writes_snapshot() {
    let dir = tmp_dir("sched");
    let bench = dir.join("BENCH_sched.json");
    let out = Command::new(env!("CARGO_BIN_EXE_exp_scaling"))
        .args(["--sched", "--quick", "--bench-out", bench.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&bench).unwrap();
    let doc = json::parse(&text).unwrap();
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("ion-obs/1"));
    let stage = doc.get("stages").unwrap().get("sched.run").unwrap();
    assert_eq!(stage.get("count").unwrap().as_u64(), Some(4), "four widths");
    let gauges = doc.get("gauges").unwrap();
    let speedup = gauges.get("sched.speedup.w4").unwrap().as_f64().unwrap();
    assert!(speedup >= 1.2, "width-4 speedup {speedup} under the gate");
    let _ = std::fs::remove_dir_all(&dir);
}
