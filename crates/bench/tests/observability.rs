//! End-to-end observability: run the quickstart pipeline on a small
//! IOR-Easy trace with the global sink enabled and check the span tree,
//! the timing invariants, and the machine-readable output.

use ion::pipeline::IonPipeline;
use ion_obs::render::Snapshot;
use ion_obs::span::{SpanData, SpanId};
use std::borrow::Cow;
use workloads::ior::ior_easy_2kb_shared;
use workloads::Workload;

/// Capture one profiled pipeline run over a small IOR-Easy trace. The
/// global sink is process-wide, so concurrent callers serialize here.
fn profiled_run() -> (Snapshot, ion::pipeline::IonReport) {
    static SINK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let log = ior_easy_2kb_shared(0.02).generate();
    let bytes = darshan::log::LogWriter::from_log(log).finish().unwrap();
    ion_obs::reset();
    ion_obs::enable();
    let report = IonPipeline::new().run_bytes(&bytes).unwrap();
    let snap = ion_obs::snapshot();
    ion_obs::disable();
    ion_obs::reset();
    (snap, report)
}

#[test]
fn pipeline_span_tree_covers_every_stage() {
    let (snap, report) = profiled_run();

    let roots = snap.roots();
    assert_eq!(
        roots.len(),
        1,
        "one pipeline root:\n{}",
        snap.render_profile()
    );
    let pipeline = roots[0];
    assert_eq!(pipeline.name, "pipeline");

    let stage_names: Vec<&str> = snap
        .children_of(pipeline.id)
        .iter()
        .map(|s| s.name.as_ref())
        .collect();
    assert_eq!(
        stage_names,
        vec!["decode", "extract", "analyze"],
        "pipeline stages in order:\n{}",
        snap.render_profile()
    );

    // The decode span breaks down into per-module region spans.
    let decode = snap.spans_named("decode").next().unwrap();
    assert!(
        snap.children_of(decode.id)
            .iter()
            .any(|s| s.name == "decode.posix"),
        "decode has per-module children:\n{}",
        snap.render_profile()
    );

    // One issue span per analyzed context, plus the summarization span,
    // all under analyze.
    let analyze = snap.spans_named("analyze").next().unwrap();
    let issue_count = snap
        .children_of(analyze.id)
        .iter()
        .filter(|s| s.name == "issue")
        .count();
    assert_eq!(issue_count, report.diagnoses.len());
    assert_eq!(
        snap.children_of(analyze.id)
            .iter()
            .filter(|s| s.name == "summarize")
            .count(),
        1
    );

    // Every issue analysis ran the model, and the model drove the IQL
    // interpreter at least once overall.
    assert!(snap.spans_named("llm.run").count() >= issue_count);
    assert_eq!(snap.counter("llm.runs"), issue_count as u64 + 1);
    assert!(snap.counter("iql.queries_evaluated") > 0);
    assert!(snap.counter("iql.rows_scanned") > 0);
    assert!(snap.counter("darshan.decode.bytes") > 0);
    assert!(snap.counter("darshan.decode.crc_checks") > 0);
    assert!(snap.counter("ion.issue_analyses") == issue_count as u64);
}

#[test]
fn stage_durations_sum_within_total() {
    let (snap, _) = profiled_run();
    let pipeline = snap.roots()[0];
    let stage_sum: u64 = snap
        .children_of(pipeline.id)
        .iter()
        .map(|s| s.duration_ns())
        .sum();
    assert!(
        stage_sum <= pipeline.duration_ns(),
        "stages ({stage_sum}ns) exceed pipeline ({}ns)",
        pipeline.duration_ns()
    );
    assert!(pipeline.duration_ns() <= snap.total_ns());
}

#[test]
fn metrics_json_is_well_formed() {
    let (snap, _) = profiled_run();
    let json = snap.to_json();
    assert!(json.contains("\"schema\": \"ion-obs/1\""));
    assert!(json.contains("\"pipeline\""));
    assert!(json.contains("\"iql.query_ns\""));
    assert!(!json.contains("\"total_ns\": 0,"), "timings are nonzero");
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

#[test]
fn golden_profile_tree_render() {
    let span = |id: u64, parent: Option<u64>, name: &'static str, start: u64, end: u64| SpanData {
        id: SpanId(id),
        parent: parent.map(SpanId),
        name: Cow::Borrowed(name),
        thread: 0,
        start_ns: start,
        end_ns: end,
        trace: 0,
        attrs: Vec::new(),
    };
    let mut extract = span(3, Some(1), "extract", 250_000, 600_000);
    extract.attrs.push((Cow::Borrowed("tables"), "3".into()));
    let mut snap = Snapshot {
        spans: vec![
            span(1, None, "pipeline", 0, 1_000_000),
            span(2, Some(1), "decode", 0, 250_000),
            extract,
            span(4, Some(1), "analyze", 600_000, 1_000_000),
            span(5, Some(4), "issue", 600_000, 800_000),
            span(6, Some(4), "summarize", 800_000, 1_000_000),
        ],
        ..Snapshot::default()
    };
    snap.counters.insert("llm.runs".into(), 2);

    let expected = "\
profile · 6 spans · total 1.000ms
└─ pipeline                                      1.000ms
   ├─ decode                                   250.000µs
   ├─ extract                                  350.000µs  [tables=3]
   └─ analyze                                  400.000µs
      ├─ issue                                 200.000µs
      └─ summarize                             200.000µs
counters:
  llm.runs = 2
";
    assert_eq!(snap.render_profile(), expected);
}
