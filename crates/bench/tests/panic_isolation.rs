//! Regression test for the panic-abort bug: before `ion-exec`, a panic in
//! one issue's analysis unwound through `thread::scope` and aborted the
//! whole `Analyzer::analyze` call. Now the panic is caught per task and
//! rendered as a failed diagnosis; every other issue still gets analyzed.
//!
//! Fault injection uses the `ION_PANIC_ISSUE` env var (honored by
//! `Analyzer::run_one`), which is process-wide — this file stays the only
//! test binary that sets it.

use darshan::log::LogWriter;
use ion::pipeline::IonPipeline;
use iosim::{SimConfig, Simulation};

/// A trace whose misaligned writes make `misaligned-io` (the issue we
/// blow up) and several other issues applicable.
fn misaligned_trace_bytes() -> Vec<u8> {
    let mut sim = Simulation::new(SimConfig::default().with_ranks(2).with_exe("panic"));
    let f = sim.posix_open_all("/scratch/out.nc4").unwrap();
    for i in 0..64u64 {
        for rank in 0..2u32 {
            let base = u64::from(rank) * (32 << 20);
            sim.posix_write(rank, f, base + i * 4096 + 17, 4096)
                .unwrap();
        }
    }
    sim.posix_close_all(f);
    LogWriter::from_log(sim.finish()).finish().unwrap()
}

#[test]
fn panicking_issue_fails_alone_and_the_report_survives() {
    let bytes = misaligned_trace_bytes();
    let healthy = IonPipeline::new().run_bytes(&bytes).unwrap();
    assert!(healthy.diagnosis("misaligned-io").unwrap().is_detected());
    let n = healthy.diagnoses.len();
    assert!(n >= 2, "need other issues to prove they survive");

    std::env::set_var("ION_PANIC_ISSUE", "misaligned-io");
    let report = IonPipeline::new().run_bytes(&bytes).unwrap();
    std::env::remove_var("ION_PANIC_ISSUE");

    // Same issue set: the victim is present as a failed entry, not missing.
    assert_eq!(report.diagnoses.len(), n);
    let victim = report.diagnosis("misaligned-io").unwrap();
    assert!(
        victim.conclusion.contains("analysis panicked"),
        "{}",
        victim.conclusion
    );
    assert!(victim.raw.contains("ANALYSIS FAILED"), "{}", victim.raw);
    // Every other diagnosis is byte-identical to the healthy run.
    for d in &report.diagnoses {
        if d.issue != "misaligned-io" {
            assert_eq!(Some(d), healthy.diagnosis(&d.issue), "{}", d.issue);
        }
    }
    assert!(!report.summary.is_empty());
}

#[test]
fn cli_analyze_survives_a_panicking_issue() {
    let dir = std::env::temp_dir().join(format!("ion-panic-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.darshan");
    std::fs::write(&trace, misaligned_trace_bytes()).unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ion_cli"))
        .arg("analyze")
        .arg(&trace)
        .env("ION_PANIC_ISSUE", "misaligned-io")
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "analyze exited {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("ANALYSIS FAILED"), "{stdout}");
    assert!(stdout.contains("GLOBAL DIAGNOSIS SUMMARY"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
