//! Regression test for the panic-abort bug: before `ion-exec`, a panic in
//! one issue's analysis unwound through `thread::scope` and aborted the
//! whole `Analyzer::analyze` call. Now the panic is caught per task and
//! rendered as a failed diagnosis; every other issue still gets analyzed.
//!
//! Fault injection uses the `ION_PANIC_ISSUE` env var (honored by
//! `Analyzer::run_one`), which is process-wide — this file stays the only
//! test binary that sets it.

use darshan::log::LogWriter;
use ion::pipeline::IonPipeline;
use iosim::{SimConfig, Simulation};
use std::io::{BufRead as _, BufReader, Read as _, Write as _};

/// A trace whose misaligned writes make `misaligned-io` (the issue we
/// blow up) and several other issues applicable.
fn misaligned_trace_bytes() -> Vec<u8> {
    let mut sim = Simulation::new(SimConfig::default().with_ranks(2).with_exe("panic"));
    let f = sim.posix_open_all("/scratch/out.nc4").unwrap();
    for i in 0..64u64 {
        for rank in 0..2u32 {
            let base = u64::from(rank) * (32 << 20);
            sim.posix_write(rank, f, base + i * 4096 + 17, 4096)
                .unwrap();
        }
    }
    sim.posix_close_all(f);
    LogWriter::from_log(sim.finish()).finish().unwrap()
}

#[test]
fn panicking_issue_fails_alone_and_the_report_survives() {
    let bytes = misaligned_trace_bytes();
    let healthy = IonPipeline::new().run_bytes(&bytes).unwrap();
    assert!(healthy.diagnosis("misaligned-io").unwrap().is_detected());
    let n = healthy.diagnoses.len();
    assert!(n >= 2, "need other issues to prove they survive");

    std::env::set_var("ION_PANIC_ISSUE", "misaligned-io");
    let report = IonPipeline::new().run_bytes(&bytes).unwrap();
    std::env::remove_var("ION_PANIC_ISSUE");

    // Same issue set: the victim is present as a failed entry, not missing.
    assert_eq!(report.diagnoses.len(), n);
    let victim = report.diagnosis("misaligned-io").unwrap();
    assert!(
        victim.conclusion.contains("analysis panicked"),
        "{}",
        victim.conclusion
    );
    assert!(victim.raw.contains("ANALYSIS FAILED"), "{}", victim.raw);
    // Every other diagnosis is byte-identical to the healthy run.
    for d in &report.diagnoses {
        if d.issue != "misaligned-io" {
            assert_eq!(Some(d), healthy.diagnosis(&d.issue), "{}", d.issue);
        }
    }
    assert!(!report.summary.is_empty());
}

#[test]
fn cli_analyze_survives_a_panicking_issue() {
    let dir = std::env::temp_dir().join(format!("ion-panic-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.darshan");
    std::fs::write(&trace, misaligned_trace_bytes()).unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ion_cli"))
        .arg("analyze")
        .arg(&trace)
        .env("ION_PANIC_ISSUE", "misaligned-io")
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "analyze exited {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("ANALYSIS FAILED"), "{stdout}");
    assert!(stdout.contains("GLOBAL DIAGNOSIS SUMMARY"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Minimal HTTP GET against the telemetry endpoint (no client dep).
fn http_get(addr: &str, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut body = String::new();
    stream.read_to_string(&mut body).unwrap();
    body
}

/// One trace panicking mid-batch must not take the others down: their
/// reports stay intact, the victim is a failed entry, and the panic shows
/// up as `exec.tasks.panicked == 1` on the live `/metrics` endpoint.
///
/// Runs `ion_cli batch` in a subprocess so the counter on `/metrics` is
/// exactly this batch's — in-process tests in this binary also panic
/// tasks and would pollute the global registry.
#[test]
fn batch_isolates_a_panicking_trace_and_counts_it_on_metrics() {
    let dir = std::env::temp_dir().join(format!("ion-panic-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("traces")).unwrap();
    std::fs::write(dir.join("traces/a.darshan"), misaligned_trace_bytes()).unwrap();
    std::fs::write(dir.join("traces/b.darshan"), misaligned_trace_bytes()).unwrap();
    std::fs::write(dir.join("traces/boom.darshan"), misaligned_trace_bytes()).unwrap();

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_ion_cli"))
        .arg("batch")
        .arg(dir.join("traces"))
        .arg("--store")
        .arg(dir.join("store"))
        .arg("--jobs")
        .arg("2")
        .arg("--serve")
        .arg("127.0.0.1:0")
        .arg("--serve-hold-ms")
        .arg("10000")
        .env("ION_PANIC_TRACE", "boom.darshan")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();

    // The CLI prints the bound ephemeral address before dispatching.
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        assert_ne!(stderr.read_line(&mut line).unwrap(), 0, "no serve line");
        if let Some(rest) = line.trim().strip_prefix("serving telemetry on http://") {
            break rest.to_owned();
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe.
    let drain = std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = stderr.read_to_string(&mut rest);
        rest
    });

    // Poll /metrics until the batch finishes (success + failure = 3).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let metrics = loop {
        assert!(std::time::Instant::now() < deadline, "batch never finished");
        let body = http_get(&addr, "/metrics");
        let done = ["ion_batch_completed 2", "ion_batch_failed 1"]
            .iter()
            .all(|needle| body.contains(needle));
        if done {
            break body;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    };
    assert!(
        metrics.contains("ion_exec_tasks_panicked 1"),
        "exactly one panicked task expected:\n{metrics}"
    );

    let mut stdout = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut stdout)
        .unwrap();
    let status = child.wait().unwrap();
    let _ = drain.join();
    // One failed trace makes the batch exit nonzero — that is the outcome
    // contract, not a crash (the report below proves the run completed).
    assert!(!status.success(), "expected outcome failure, got success");
    // The victim failed alone; both healthy traces produced reports.
    assert!(
        stdout.contains("boom.darshan: FAILED: batch worker panicked"),
        "{stdout}"
    );
    assert!(stdout.contains("2 analyzed, 1 failed"), "{stdout}");
    for healthy in ["a.darshan", "b.darshan"] {
        let line = stdout
            .lines()
            .find(|l| l.contains(healthy))
            .unwrap_or_else(|| panic!("no line for {healthy}: {stdout}"));
        assert!(line.contains("issue(s) detected"), "{line}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
