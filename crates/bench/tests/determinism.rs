//! Determinism under parallelism: the analyzer must produce byte-identical
//! results whether issue contexts run on one worker or on every core, and
//! the metrics must show exactly one model run per issue context.

use ion::analyzer::{Analyzer, SystemParams};
use workloads::ior::ior_easy_2kb_shared;
use workloads::Workload;

#[test]
fn parallel_analysis_is_byte_identical_and_runs_each_issue_once() {
    let log = ior_easy_2kb_shared(0.02).generate();
    let tables = extractor::extract_tables(&log);
    let params = SystemParams::from_log(&log);

    let sequential = Analyzer::new().sequential().analyze(&tables, &params);

    ion_obs::reset();
    ion_obs::enable();
    let parallel = Analyzer::new().analyze(&tables, &params);
    let snap = ion_obs::snapshot();
    ion_obs::disable();
    ion_obs::reset();

    // Byte-identical output regardless of worker count.
    assert_eq!(sequential, parallel);
    assert_eq!(format!("{sequential:?}"), format!("{parallel:?}"));

    // Exactly one model run per issue context, plus the summarization run.
    let issues = parallel.diagnoses.len() as u64;
    assert!(issues > 0);
    assert_eq!(snap.counter("ion.issue_analyses"), issues);
    assert_eq!(snap.counter("llm.runs"), issues + 1);
    assert_eq!(snap.spans_named("issue").count() as u64, issues);

    // The parallel issue spans really ran across threads when the host has
    // them, but every one still parents to the single analyze span.
    let analyze = snap.spans_named("analyze").next().unwrap();
    for issue in snap.spans_named("issue") {
        assert_eq!(issue.parent, Some(analyze.id));
    }
}
