//! Criterion bench: simulator substrate throughput — POSIX op rate,
//! collective planning, and full workload generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iosim::mpiio::{CollectivePlan, CollectiveRequest};
use iosim::{SimConfig, Simulation};
use workloads::ior::ior_hard;
use workloads::Workload;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");

    let ops = 10_000u64;
    group.throughput(Throughput::Elements(ops));
    group.bench_function("posix_write_ops", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(SimConfig::default().with_ranks(4));
            let f = sim.posix_open_all("/bench").unwrap();
            for i in 0..ops {
                let rank = (i % 4) as u32;
                sim.posix_write(rank, f, i * 4096, 4096).unwrap();
            }
            sim.finish()
        });
    });

    for nranks in [16u32, 256] {
        let reqs: Vec<CollectiveRequest> = (0..nranks)
            .map(|rank| CollectiveRequest {
                rank,
                offset: u64::from(rank) * (1 << 20),
                length: 1 << 20,
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("collective_plan", nranks),
            &reqs,
            |b, reqs| {
                b.iter(|| CollectivePlan::plan(reqs, 8, 1 << 20));
            },
        );
    }

    group.sample_size(10);
    group.bench_function("generate_ior_hard", |b| {
        let w = ior_hard(0.002);
        b.iter(|| w.generate());
    });

    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
