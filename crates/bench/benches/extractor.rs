//! Criterion bench: the ION Extractor (log → CSV tables) and the CSV
//! codec round trip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use extractor::csv::{from_csv, to_csv};
use extractor::extract_tables;
use workloads::ior::ior_easy_2kb_shared;
use workloads::Workload;

fn bench_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("extractor");
    for scale in [0.05, 0.25] {
        let log = ior_easy_2kb_shared(scale).generate();
        let ops: usize = log.dxt.iter().map(darshan::dxt::DxtRecord::len).sum();
        group.bench_with_input(BenchmarkId::new("extract_tables", ops), &log, |b, log| {
            b.iter(|| extract_tables(log));
        });
        let tables = extract_tables(&log);
        let dxt = tables.get("DXT").unwrap();
        group.bench_with_input(BenchmarkId::new("to_csv", ops), dxt, |b, t| {
            b.iter(|| to_csv(t));
        });
        let csv = to_csv(dxt);
        group.bench_with_input(BenchmarkId::new("from_csv", ops), &csv, |b, s| {
            b.iter(|| from_csv("DXT", s).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extract);
criterion_main!(benches);
