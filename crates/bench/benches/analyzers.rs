//! Criterion bench: end-to-end analyzers — the trigger-based Drishti
//! baseline vs the full ION pipeline (extraction, nine parallel model runs
//! with code-interpreter execution, summarization). This quantifies the
//! cost of ION's richer diagnosis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ion::pipeline::IonPipeline;
use workloads::ior::ior_easy_2kb_shared;
use workloads::Workload;

fn bench_analyzers(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyzers");
    group.sample_size(10);
    for scale in [0.05, 0.25] {
        let log = ior_easy_2kb_shared(scale).generate();
        let ops: usize = log.dxt.iter().map(darshan::dxt::DxtRecord::len).sum();
        group.bench_with_input(BenchmarkId::new("drishti", ops), &log, |b, log| {
            b.iter(|| drishti::analyze(log));
        });
        group.bench_with_input(BenchmarkId::new("ion_full", ops), &log, |b, log| {
            let pipeline = IonPipeline::new();
            b.iter(|| pipeline.run(log));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analyzers);
criterion_main!(benches);
