//! Criterion bench: binary log codec throughput (encode/decode) as the
//! trace grows — the storage-engineering cost of the Darshan substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use darshan::log::{LogReader, LogWriter};
use workloads::ior::ior_easy_2kb_shared;
use workloads::Workload;

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_codec");
    for scale in [0.02, 0.1, 0.5] {
        let log = ior_easy_2kb_shared(scale).generate();
        let bytes = LogWriter::from_log(log.clone()).finish().unwrap();
        let ops: usize = log.dxt.iter().map(darshan::dxt::DxtRecord::len).sum();
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", ops), &log, |b, log| {
            b.iter(|| LogWriter::from_log(log.clone()).finish().unwrap());
        });
        group.bench_with_input(BenchmarkId::new("decode", ops), &bytes, |b, bytes| {
            b.iter(|| LogReader::read(bytes).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
