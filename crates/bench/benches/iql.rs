//! Criterion bench: the IQL language — parse and evaluate the kind of
//! analysis programs the expert model generates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use extractor::extract_tables;
use ion_llm::iql::{parse_program, Interpreter};
use workloads::ior::ior_easy_2kb_shared;
use workloads::Workload;

const PROGRAM: &str = "
LOAD DXT
FILTER module == 'X_POSIX'
DERIVE small = length < 4_194_304
AGG total_ops = count(), small_ops = sum(small), mean_size = mean(length), p95 = pct(length, 95)
LET small_pct = 100 * small_ops / max(total_ops, 1)
EMIT total_ops, small_ops, small_pct, mean_size, p95
";

const GROUP_PROGRAM: &str = "
LOAD DXT
DERIVE stripe = floor(offset / 1_048_576)
GROUP file_name, stripe AGG ranks_in_stripe = distinct(rank), ops = count()
DERIVE conflict_ops = if(ranks_in_stripe > 1, ops, 0)
AGG conflicted = sum(conflict_ops), all_ops = sum(ops)
LET pct = 100 * conflicted / max(all_ops, 1)
EMIT conflicted, all_ops, pct
";

fn bench_iql(c: &mut Criterion) {
    let mut group = c.benchmark_group("iql");
    group.bench_function("parse", |b| {
        b.iter(|| parse_program(PROGRAM).unwrap());
    });
    for scale in [0.05, 0.25] {
        let log = ior_easy_2kb_shared(scale).generate();
        let tables = extract_tables(&log);
        let rows = tables.get("DXT").unwrap().len();
        let program = parse_program(PROGRAM).unwrap();
        group.bench_with_input(BenchmarkId::new("eval_agg", rows), &tables, |b, t| {
            let interp = Interpreter::new(t);
            b.iter(|| interp.run(&program).unwrap());
        });
        let gprogram = parse_program(GROUP_PROGRAM).unwrap();
        group.bench_with_input(BenchmarkId::new("eval_group_by", rows), &tables, |b, t| {
            let interp = Interpreter::new(t);
            b.iter(|| interp.run(&gprogram).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_iql);
criterion_main!(benches);
