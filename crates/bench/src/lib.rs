//! Shared helpers for the ION experiment binaries and Criterion benches.

use workloads::ior::{
    ior_easy_1mb_fpp, ior_easy_1mb_shared, ior_easy_2kb_shared, ior_hard, ior_rnd4k, IorWorkload,
};
use workloads::mdworkbench::MdWorkbench;
use workloads::Workload;

/// Scale factor for experiment runs, from `IONREPRO_SCALE` (default 0.1,
/// where 1.0 approximates the paper's operation counts; large values are
/// expensive because the analyzer clones per-operation DXT tables).
#[must_use]
pub fn experiment_scale() -> f64 {
    std::env::var("IONREPRO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1)
}

/// The six Figure 2 workloads at a given scale.
#[must_use]
pub fn fig2_workloads(scale: f64) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(ior_easy_2kb_shared(scale)),
        Box::new(ior_easy_1mb_shared(scale)),
        Box::new(ior_easy_1mb_fpp(scale)),
        // ior-hard's paper-scale op count is 10× the others; keep the same
        // wall-clock budget.
        Box::new(ior_hard(scale / 10.0)),
        Box::new(ior_rnd4k(scale / 2.0)),
        Box::new(MdWorkbench::scaled(scale * 5.0)),
    ]
}

/// A small, fast IOR workload used by benches.
#[must_use]
pub fn bench_workload() -> IorWorkload {
    ior_easy_2kb_shared(0.05)
}

/// Truncate a string to one display line of at most `width` chars.
#[must_use]
pub fn one_line(text: &str, width: usize) -> String {
    let line = text.lines().next().unwrap_or("");
    if line.chars().count() <= width {
        line.to_owned()
    } else {
        let truncated: String = line.chars().take(width.saturating_sub(1)).collect();
        format!("{truncated}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_set_has_six_workloads() {
        assert_eq!(fig2_workloads(0.01).len(), 6);
    }

    #[test]
    fn one_line_truncates() {
        assert_eq!(one_line("abc\ndef", 10), "abc");
        assert_eq!(one_line("abcdefghij", 5), "abcd…");
    }
}
