//! Experiment: *what-if* validation of ION's recommendations.
//!
//! ```sh
//! cargo run --release -p ion-bench --bin exp_whatif
//! ```
//!
//! ION doesn't just detect issues — it recommends fixes (aggregate small
//! consecutive ops, use MPI-IO collectives, align to stripes). Because our
//! substrate is a simulator, each recommendation can be *applied* and the
//! runtime re-measured, closing the loop: does following ION's advice
//! actually help, and does ION correctly refuse to promise wins where the
//! pattern makes the fix inapplicable (random offsets)?

use ion::pipeline::IonPipeline;
use iosim::{SimConfig, SimError, Simulation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const RANKS: u32 = 4;
const VOLUME_PER_RANK: u64 = 64 << 20; // 64 MiB

fn sequential_writer(transfer: u64) -> Result<f64, SimError> {
    let mut sim = Simulation::new(SimConfig::default().with_ranks(RANKS));
    let f = sim.posix_open_all("/whatif/seq")?;
    let ops = VOLUME_PER_RANK / transfer;
    for i in 0..ops {
        for rank in 0..RANKS {
            let base = u64::from(rank) * VOLUME_PER_RANK;
            sim.posix_write(rank, f, base + i * transfer, transfer)?;
        }
    }
    sim.posix_close_all(f);
    Ok(sim.finish().job.run_time())
}

fn interleaved_posix() -> Result<(darshan::log::Log, f64), SimError> {
    let mut sim = Simulation::new(SimConfig::default().with_ranks(RANKS));
    let f = sim.posix_open_all("/whatif/hard")?;
    let record = 47_008u64;
    let ops = VOLUME_PER_RANK / record / 8;
    for i in 0..ops {
        for rank in 0..RANKS {
            let off = (i * u64::from(RANKS) + u64::from(rank)) * record;
            sim.posix_write(rank, f, off, record)?;
        }
        // ior-hard ranks proceed in lockstep (stonewalling): every wave
        // synchronizes, so conflicting requests really do collide.
        sim.barrier();
    }
    sim.posix_close_all(f);
    let log = sim.finish();
    let t = log.job.run_time();
    Ok((log, t))
}

fn interleaved_collective() -> Result<f64, SimError> {
    let mut sim = Simulation::new(SimConfig::default().with_ranks(RANKS));
    let f = sim.mpi_file_open("/whatif/hard")?;
    let record = 47_008u64;
    let ops = VOLUME_PER_RANK / record / 8;
    for i in 0..ops {
        let reqs: Vec<(u32, u64, u64)> = (0..RANKS)
            .map(|rank| {
                (
                    rank,
                    (i * u64::from(RANKS) + u64::from(rank)) * record,
                    record,
                )
            })
            .collect();
        sim.mpi_write_collective(f, &reqs)?;
    }
    sim.mpi_file_close(f)?;
    Ok(sim.finish().job.run_time())
}

fn random_writer(buffered: bool) -> Result<f64, SimError> {
    let mut sim = Simulation::new(SimConfig::default().with_ranks(RANKS));
    let f = sim.posix_open_all("/whatif/rnd")?;
    let transfer = 4096u64;
    let ops = VOLUME_PER_RANK / transfer / 16;
    let slots = ops * u64::from(RANKS) * 4;
    let mut rngs: Vec<SmallRng> = (0..RANKS)
        .map(|r| SmallRng::seed_from_u64(0x77 ^ u64::from(r)))
        .collect();
    for _ in 0..ops {
        for rank in 0..RANKS {
            let off = rngs[rank as usize].gen_range(0..slots) * transfer;
            // "Buffering" random writes cannot merge non-adjacent offsets:
            // the client still issues one RPC per record. We model the
            // (futile) attempt as identical I/O — the point of the negative
            // control.
            let _ = buffered;
            sim.posix_write(rank, f, off, transfer)?;
        }
    }
    sim.posix_close_all(f);
    Ok(sim.finish().job.run_time())
}

fn misaligned_writer(aligned: bool) -> Result<f64, SimError> {
    let mut sim = Simulation::new(SimConfig::default().with_ranks(RANKS));
    let f = sim.posix_open_all("/whatif/align")?;
    let record = 1u64 << 20;
    let shift = if aligned { 0 } else { 2688 };
    let ops = VOLUME_PER_RANK / record;
    for i in 0..ops {
        for rank in 0..RANKS {
            let base = u64::from(rank) * 2 * VOLUME_PER_RANK;
            sim.posix_write(rank, f, base + i * record + shift, record)?;
        }
    }
    sim.posix_close_all(f);
    Ok(sim.finish().job.run_time())
}

fn row(name: &str, recommendation: &str, before: f64, after: f64) {
    println!(
        "{name:<28} {before:>9.3}s → {after:>9.3}s   speedup {:>5.2}×   ({recommendation})",
        before / after.max(1e-9)
    );
}

fn main() -> Result<(), SimError> {
    println!("═══ What-if: applying ION's recommendations in the simulator ═══\n");

    // 1. Small consecutive writes → aggregate into RPC-sized transfers.
    let before = sequential_writer(2048)?;
    let after = sequential_writer(4 << 20)?;
    row(
        "small sequential writes",
        "aggregate consecutive 2 KiB ops into 4 MiB transfers",
        before,
        after,
    );

    // 2. Interleaved shared-file records → MPI-IO collective writes.
    let (hard_log, before) = interleaved_posix()?;
    let after = interleaved_collective()?;
    row(
        "interleaved shared file",
        "switch to MPI-IO collective (two-phase) writes",
        before,
        after,
    );

    // 3. Negative control: random 4 KiB writes cannot be aggregated.
    let before = random_writer(false)?;
    let after = random_writer(true)?;
    row(
        "random 4 KiB writes",
        "aggregation inapplicable: non-adjacent offsets",
        before,
        after,
    );

    // 4. Misaligned streaming writes → pad offsets to the stripe grid.
    let before = misaligned_writer(false)?;
    let after = misaligned_writer(true)?;
    row(
        "misaligned 1 MiB writes",
        "align record offsets to the 1 MiB stripe boundary",
        before,
        after,
    );

    // Cross-check: ION's diagnosis of the interleaved trace recommends
    // exactly the fix that helped.
    println!("\nION's advice on the interleaved shared-file trace:");
    let report = IonPipeline::new().run(&hard_log);
    if let Some(iface) = report.diagnosis("interface-usage") {
        for f in &iface.findings {
            println!("  · {}", f.text);
        }
    }
    if let Some(shared) = report.diagnosis("shared-file-contention") {
        for f in &shared.findings {
            println!("  · {}", f.text);
        }
    }
    println!("\nreading: the two fixes ION recommends (aggregation, collectives) yield real");
    println!("speedups; the negative control shows no change, matching ION's refusal to");
    println!("promise aggregation for random access patterns.");
    Ok(())
}
