//! `ion-cli` — command-line front end for the ION reproduction.
//!
//! ```text
//! ion-cli generate <workload> <out.darshan>   create a synthetic trace
//! ion-cli parse <log.darshan>                 darshan-parser text output
//! ion-cli dxt <log.darshan>                   darshan-dxt-parser output
//! ion-cli extract <log.darshan> <out-dir>     write the per-module CSVs
//! ion-cli analyze <log.darshan>               full ION diagnosis
//! ion-cli batch <trace-dir>                   analyze every trace in a directory
//! ion-cli drishti <log.darshan>               Drishti baseline report
//! ion-cli compare <base> <optimized>          diff two diagnoses (resolved/introduced)
//! ion-cli qa <log.darshan> "<question>" ...   diagnose then answer questions
//! ion-cli store gc [--apply]                  prune unreferenced store artifacts
//! ```
//!
//! `--store <dir>` (valid anywhere on the command line) backs `analyze`,
//! `batch` and `qa` with the content-addressed incremental store: stages
//! whose inputs did not change are served from cache instead of being
//! recomputed. `batch` additionally accepts `--jobs <n>`.
//!
//! Workloads: `ior-easy-2k`, `ior-easy-1m`, `ior-easy-fpp`, `ior-hard`,
//! `ior-rnd4k`, `mdworkbench`, `openpmd`, `openpmd-opt`, `e2e`, `e2e-opt`.
//! Scale via `IONREPRO_SCALE` (default 0.1).

use darshan::log::{LogReader, LogWriter};
use ion::pipeline::IonPipeline;
use ion_bench::experiment_scale;
use std::fs;
use std::io::Write as _;
use std::process::ExitCode;

/// Print to stdout, ignoring broken pipes (`ion-cli parse log | head`).
fn emit(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}
use workloads::e2e::{E2e, E2eVariant};
use workloads::ior::{
    ior_easy_1mb_fpp, ior_easy_1mb_shared, ior_easy_2kb_shared, ior_hard, ior_rnd4k,
};
use workloads::mdworkbench::MdWorkbench;
use workloads::openpmd::{OpenPmd, OpenPmdVariant};
use workloads::Workload;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ion-cli [--profile] [--metrics-json <path>] [--store <dir>] [--jobs <n>] \
         <generate|parse|dxt|extract|analyze|batch|drishti|compare|qa|store> <args...>\n\
         a bare <log.darshan> after the flags is shorthand for `analyze`\n\
         see `cargo doc` or the README for details"
    );
    ExitCode::FAILURE
}

/// Global flags, stripped from anywhere on the command line.
#[derive(Debug, Default)]
struct ObsFlags {
    profile: bool,
    metrics_json: Option<String>,
    store: Option<String>,
    jobs: usize,
}

impl ObsFlags {
    /// Extract `--profile` / `--metrics-json <path>` / `--store <dir>` /
    /// `--jobs <n>` from `args`.
    fn strip(args: &mut Vec<String>) -> Result<ObsFlags, String> {
        let mut flags = ObsFlags::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--profile" => {
                    flags.profile = true;
                    args.remove(i);
                }
                "--metrics-json" => {
                    if i + 1 >= args.len() {
                        return Err("--metrics-json needs a <path>".into());
                    }
                    args.remove(i);
                    flags.metrics_json = Some(args.remove(i));
                }
                "--store" => {
                    if i + 1 >= args.len() {
                        return Err("--store needs a <dir>".into());
                    }
                    args.remove(i);
                    flags.store = Some(args.remove(i));
                }
                "--jobs" => {
                    if i + 1 >= args.len() {
                        return Err("--jobs needs a <n>".into());
                    }
                    args.remove(i);
                    let n = args.remove(i);
                    flags.jobs = n
                        .parse()
                        .map_err(|_| format!("--jobs needs a number, got {n}"))?;
                }
                _ => i += 1,
            }
        }
        Ok(flags)
    }

    fn any(&self) -> bool {
        self.profile || self.metrics_json.is_some()
    }

    /// Open the store named by `--store`, or explain which command
    /// needed it.
    fn open_store(&self, needed_by: &str) -> Result<std::sync::Arc<ion_store::Store>, String> {
        let dir = self
            .store
            .as_ref()
            .ok_or_else(|| format!("{needed_by} needs --store <dir>"))?;
        ion_store::Store::open(dir)
            .map(std::sync::Arc::new)
            .map_err(|e| format!("cannot open store {dir}: {e}"))
    }

    /// Render whatever the run recorded: the profile tree to stderr (so it
    /// never corrupts piped report output) and the JSON document to a file.
    fn report(&self) -> Result<(), String> {
        if !self.any() {
            return Ok(());
        }
        let snap = ion_obs::snapshot();
        if self.profile {
            eprint!("{}", snap.render_profile());
        }
        if let Some(path) = &self.metrics_json {
            fs::write(path, snap.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote metrics to {path}");
        }
        Ok(())
    }
}

fn workload_by_name(name: &str, scale: f64) -> Option<Box<dyn Workload>> {
    Some(match name {
        "ior-easy-2k" => Box::new(ior_easy_2kb_shared(scale)),
        "ior-easy-1m" => Box::new(ior_easy_1mb_shared(scale)),
        "ior-easy-fpp" => Box::new(ior_easy_1mb_fpp(scale)),
        "ior-hard" => Box::new(ior_hard(scale / 10.0)),
        "ior-rnd4k" => Box::new(ior_rnd4k(scale / 2.0)),
        "mdworkbench" => Box::new(MdWorkbench::scaled(scale * 5.0)),
        "openpmd" => Box::new(OpenPmd::scaled(OpenPmdVariant::Baseline, scale)),
        "openpmd-opt" => Box::new(OpenPmd::scaled(OpenPmdVariant::Optimized, scale)),
        "e2e" => Box::new(E2e::scaled(E2eVariant::Baseline, scale)),
        "e2e-opt" => Box::new(E2e::scaled(E2eVariant::Optimized, scale)),
        _ => return None,
    })
}

fn load(path: &str) -> Result<darshan::log::Log, String> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    LogReader::read(&bytes).map_err(|e| format!("cannot decode {path}: {e}"))
}

/// Full diagnosis of trace bytes — incremental when `--store` is given,
/// the plain pipeline otherwise.
fn analyze_bytes(bytes: &[u8], flags: &ObsFlags) -> Result<ion::pipeline::IonReport, String> {
    if flags.store.is_some() {
        let store = flags.open_store("analyze")?;
        ion_store::StoredPipeline::new(store)
            .analyze_bytes(bytes)
            .map_err(|e| e.to_string())
    } else {
        IonPipeline::new()
            .run_bytes(bytes)
            .map_err(|e| format!("cannot decode trace: {e}"))
    }
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let flags = ObsFlags::strip(&mut args)?;
    if flags.any() {
        ion_obs::enable();
    }
    let result = dispatch(&args, &flags);
    flags.report()?;
    result
}

const COMMANDS: [&str; 10] = [
    "generate", "parse", "dxt", "extract", "analyze", "batch", "drishti", "compare", "qa", "store",
];

fn dispatch(args: &[String], flags: &ObsFlags) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    // `ion-cli --profile trace.darshan` profiles the default full-pipeline
    // command: a bare trace path means `analyze`.
    let implicit_analyze = [String::from("analyze"), cmd.clone()];
    let args: &[String] =
        if !COMMANDS.contains(&cmd.as_str()) && std::path::Path::new(cmd).is_file() {
            &implicit_analyze
        } else {
            args
        };
    let cmd = &args[0];
    match cmd.as_str() {
        "generate" => {
            let (name, out) = match (args.get(1), args.get(2)) {
                (Some(n), Some(o)) => (n, o),
                _ => return Err("generate needs <workload> <out.darshan>".into()),
            };
            let scale = experiment_scale();
            let w =
                workload_by_name(name, scale).ok_or_else(|| format!("unknown workload {name}"))?;
            let log = w.generate_traced();
            let bytes = LogWriter::from_log(log)
                .finish()
                .map_err(|e| e.to_string())?;
            fs::write(out, &bytes).map_err(|e| e.to_string())?;
            println!("wrote {} ({} bytes, scale {scale})", out, bytes.len());
        }
        "parse" => {
            let path = args.get(1).ok_or("parse needs <log.darshan>")?;
            emit(&darshan::parser::render_text(&load(path)?));
        }
        "dxt" => {
            let path = args.get(1).ok_or("dxt needs <log.darshan>")?;
            emit(&darshan::parser::render_dxt_text(&load(path)?));
        }
        "extract" => {
            let (path, dir) = match (args.get(1), args.get(2)) {
                (Some(p), Some(d)) => (p, d),
                _ => return Err("extract needs <log.darshan> <out-dir>".into()),
            };
            let log = load(path)?;
            let tables = extractor::extract_tables(&log);
            fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            for (name, table) in tables.iter() {
                let file = format!("{dir}/{name}.csv");
                fs::write(&file, extractor::csv::to_csv(table)).map_err(|e| e.to_string())?;
                println!("wrote {file} ({} rows)", table.len());
            }
        }
        "analyze" => {
            let path = args.get(1).ok_or("analyze needs <log.darshan>")?;
            // Feed bytes so the decode span nests under the pipeline span.
            let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let report = analyze_bytes(&bytes, flags).map_err(|e| format!("{path}: {e}"))?;
            emit(&report.render_text());
            let problems = report.consistency();
            if problems.is_empty() {
                println!("(consistency check: clean)");
            } else {
                println!("(consistency check: {} problems)", problems.len());
                for p in problems {
                    println!("  {:?}: {}", p.level, p.message);
                }
            }
        }
        "batch" => {
            let dir = args.get(1).ok_or("batch needs <trace-dir>")?;
            let store = flags.open_store("batch")?;
            let driver = ion_store::StoredPipeline::new(store);
            let report = ion_store::analyze_dir(&driver, std::path::Path::new(dir), flags.jobs)
                .map_err(|e| e.to_string())?;
            emit(&report.render_text());
            if report.failed() > 0 {
                return Err(format!("{} trace(s) failed", report.failed()));
            }
        }
        "store" => match args.get(1).map(String::as_str) {
            Some("gc") => {
                let apply = args.get(2).map(String::as_str) == Some("--apply");
                let store = flags.open_store("store gc")?;
                let report = store.gc(!apply).map_err(|e| e.to_string())?;
                println!(
                    "{} live object(s), {} unreferenced",
                    report.live,
                    report.unreferenced.len()
                );
                for digest in &report.unreferenced {
                    println!(
                        "  {} {}",
                        if report.deleted {
                            "pruned"
                        } else {
                            "would prune"
                        },
                        digest.hex()
                    );
                }
                if !report.deleted && !report.unreferenced.is_empty() {
                    println!("(dry run; pass --apply to prune)");
                }
            }
            _ => return Err("store needs a subcommand: store gc [--apply]".into()),
        },
        "drishti" => {
            let path = args.get(1).ok_or("drishti needs <log.darshan>")?;
            emit(&drishti::analyze(&load(path)?).render_text());
        }
        "compare" => {
            let (base, opt) = match (args.get(1), args.get(2)) {
                (Some(b), Some(o)) => (b, o),
                _ => return Err("compare needs <baseline.darshan> <optimized.darshan>".into()),
            };
            let pipeline = IonPipeline::new();
            let before = pipeline.run(&load(base)?);
            let after = pipeline.run(&load(opt)?);
            emit(&ion::compare::compare(&before, &after).render_text());
        }
        "qa" => {
            let path = args.get(1).ok_or("qa needs <log.darshan> [questions...]")?;
            let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let report = analyze_bytes(&bytes, flags).map_err(|e| format!("{path}: {e}"))?;
            emit(&format!("{}\n", report.summary));
            let mut session = report.session();
            for q in &args[2..] {
                emit(&format!("\nQ: {q}\n"));
                emit(&format!("A: {}\n", session.ask(q)));
            }
        }
        other => return Err(format!("unknown command {other}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}
