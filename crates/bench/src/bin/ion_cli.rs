//! `ion-cli` — command-line front end for the ION reproduction.
//!
//! ```text
//! ion-cli generate <workload> <out.darshan>   create a synthetic trace
//! ion-cli parse <log.darshan>                 darshan-parser text output
//! ion-cli dxt <log.darshan>                   darshan-dxt-parser output
//! ion-cli extract <log.darshan> <out-dir>     write the per-module CSVs
//! ion-cli analyze <log.darshan>               full ION diagnosis
//! ion-cli batch <trace-dir>                   analyze every trace in a directory
//! ion-cli drishti <log.darshan>               Drishti baseline report
//! ion-cli compare <base> <optimized>          diff two diagnoses (resolved/introduced)
//! ion-cli qa <log.darshan> "<question>" ...   diagnose then answer questions
//! ion-cli iql <log.darshan> <file.iql>        run an IQL program on a trace
//!         [--explain]                         print the optimized plan instead
//! ion-cli fuzz [--iters N] [--seed S]         hostile-input fuzz campaign
//!         [--minimize] [--save-crashes <dir>] (crashes exit nonzero, bytes pinned)
//!         [--replay <corpus-dir>]             replay pinned regression seeds
//! ion-cli store gc [--apply]                  prune unreferenced store artifacts
//! ion-cli serve [addr]                        multi-tenant analysis daemon
//! ion-cli obs serve [addr]                    standalone live-telemetry endpoint
//! ion-cli obs diff <base.json> <new.json>     snapshot-diff regression gate
//! ion-cli obs export --chrome <trace.json>    render an ion-trace/1 document as
//!         [-o <out.json>]                     Chrome trace_event JSON (Perfetto)
//! ```
//!
//! `--store <dir>` (valid anywhere on the command line) backs `analyze`,
//! `batch`, `qa` and `serve` with the content-addressed incremental
//! store: stages whose inputs did not change are served from cache
//! instead of being recomputed. `batch` additionally accepts
//! `--jobs <n>`.
//!
//! `serve` runs the always-on analysis daemon (`ion-serve/v1`): POST a
//! trace to `/v1/jobs`, poll `/v1/jobs/<id>`, fetch `/report`, ask
//! `/qa`, and fetch the finished job's span tree from `/trace`. Jobs
//! slower than `--slow-job-ms <n>` (default 10 000, `0` disables) log a
//! `serve.job.slow` event with a stage breakdown. The first Ctrl-C
//! drains gracefully (503 new submissions, finish in-flight work); a
//! second one hard-cancels in-flight jobs.
//!
//! Execution policy (valid anywhere on the command line, honored by
//! `analyze`, `batch` and `qa`):
//!
//! - `--workers <n>` sets the analysis worker-pool width (`0` = one per
//!   core; the `ION_WORKERS` env var sets the same default process-wide).
//! - `--deadline-ms <n>` bounds the run: analyses that have not started
//!   when the deadline passes are reported as failed instead of running.
//!
//! Live telemetry (valid anywhere on the command line):
//!
//! - `--events <path>` streams structured events (span open/close, counter
//!   deltas, model-run lifecycle, store hit/miss, per-trace batch
//!   outcomes) to `<path>` as `ion-obs/events/2` JSONL while the command
//!   runs.
//! - `--serve <addr>` serves `/metrics` (Prometheus text format),
//!   `/progress` and `/healthz` on `<addr>` for the duration of the
//!   command; `--serve-hold-ms <n>` keeps the endpoint up `n` ms after the
//!   command finishes so a final scrape can land (short-lived jobs would
//!   otherwise vanish between scrape intervals).
//!
//! Workloads: `ior-easy-2k`, `ior-easy-1m`, `ior-easy-fpp`, `ior-hard`,
//! `ior-rnd4k`, `mdworkbench`, `openpmd`, `openpmd-opt`, `e2e`, `e2e-opt`.
//! Scale via `IONREPRO_SCALE` (default 0.1).

use darshan::log::{LogReader, LogWriter};
use ion::pipeline::IonPipeline;
use ion_bench::experiment_scale;
use std::fs;
use std::io::Write as _;
use std::process::ExitCode;

/// Print to stdout, ignoring broken pipes (`ion-cli parse log | head`).
fn emit(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}
use workloads::e2e::{E2e, E2eVariant};
use workloads::ior::{
    ior_easy_1mb_fpp, ior_easy_1mb_shared, ior_easy_2kb_shared, ior_hard, ior_rnd4k,
};
use workloads::mdworkbench::MdWorkbench;
use workloads::openpmd::{OpenPmd, OpenPmdVariant};
use workloads::Workload;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ion-cli [--profile] [--metrics-json <path>] [--events <path>] \
         [--serve <addr>] [--serve-hold-ms <n>] [--store <dir>] [--jobs <n>] \
         [--workers <n>] [--deadline-ms <n>] [--slow-job-ms <n>] \
         [--chunk-rows <n>] [--spill-dir <dir>] \
         <generate|parse|dxt|extract|analyze|batch|drishti|compare|qa|iql|store|serve|obs|fuzz> \
         <args...>\n\
         a bare <log.darshan> after the flags is shorthand for `analyze`\n\
         see `cargo doc` or the README for details"
    );
    ExitCode::FAILURE
}

/// A failed invocation. Argument mistakes get the usage text; *outcome*
/// failures (a failed batch trace, a perf regression caught by `obs
/// diff`) only set the exit code — dumping usage over a regression report
/// would bury the signal.
struct Failure {
    message: String,
    show_usage: bool,
}

impl Failure {
    /// The command ran; its outcome is the failure.
    fn outcome(message: impl Into<String>) -> Failure {
        Failure {
            message: message.into(),
            show_usage: false,
        }
    }
}

impl From<String> for Failure {
    fn from(message: String) -> Failure {
        Failure {
            message,
            show_usage: true,
        }
    }
}

impl From<&str> for Failure {
    fn from(message: &str) -> Failure {
        Failure::from(message.to_owned())
    }
}

/// Global flags, stripped from anywhere on the command line.
#[derive(Debug, Default)]
struct ObsFlags {
    profile: bool,
    metrics_json: Option<String>,
    events: Option<String>,
    serve: Option<String>,
    serve_hold_ms: u64,
    store: Option<String>,
    jobs: usize,
    workers: Option<usize>,
    deadline_ms: u64,
    slow_job_ms: Option<u64>,
    chunk_rows: Option<usize>,
    spill_dir: Option<String>,
}

impl ObsFlags {
    /// Extract `--profile` / `--metrics-json <path>` / `--events <path>` /
    /// `--serve <addr>` / `--serve-hold-ms <n>` / `--store <dir>` /
    /// `--jobs <n>` / `--workers <n>` / `--deadline-ms <n>` /
    /// `--slow-job-ms <n>` / `--chunk-rows <n>` / `--spill-dir <dir>`
    /// from `args`.
    fn strip(args: &mut Vec<String>) -> Result<ObsFlags, String> {
        let mut flags = ObsFlags::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--profile" => {
                    flags.profile = true;
                    args.remove(i);
                }
                "--metrics-json" => {
                    if i + 1 >= args.len() {
                        return Err("--metrics-json needs a <path>".into());
                    }
                    args.remove(i);
                    flags.metrics_json = Some(args.remove(i));
                }
                "--events" => {
                    if i + 1 >= args.len() {
                        return Err("--events needs a <path>".into());
                    }
                    args.remove(i);
                    flags.events = Some(args.remove(i));
                }
                "--serve" => {
                    if i + 1 >= args.len() {
                        return Err("--serve needs an <addr>".into());
                    }
                    args.remove(i);
                    flags.serve = Some(args.remove(i));
                }
                "--serve-hold-ms" => {
                    if i + 1 >= args.len() {
                        return Err("--serve-hold-ms needs a <n>".into());
                    }
                    args.remove(i);
                    let n = args.remove(i);
                    flags.serve_hold_ms = n
                        .parse()
                        .map_err(|_| format!("--serve-hold-ms needs a number, got {n}"))?;
                }
                "--store" => {
                    if i + 1 >= args.len() {
                        return Err("--store needs a <dir>".into());
                    }
                    args.remove(i);
                    flags.store = Some(args.remove(i));
                }
                "--jobs" => {
                    if i + 1 >= args.len() {
                        return Err("--jobs needs a <n>".into());
                    }
                    args.remove(i);
                    let n = args.remove(i);
                    flags.jobs = n
                        .parse()
                        .map_err(|_| format!("--jobs needs a number, got {n}"))?;
                }
                "--workers" => {
                    if i + 1 >= args.len() {
                        return Err("--workers needs a <n>".into());
                    }
                    args.remove(i);
                    let n = args.remove(i);
                    flags.workers = Some(
                        n.parse()
                            .map_err(|_| format!("--workers needs a number, got {n}"))?,
                    );
                }
                "--deadline-ms" => {
                    if i + 1 >= args.len() {
                        return Err("--deadline-ms needs a <n>".into());
                    }
                    args.remove(i);
                    let n = args.remove(i);
                    flags.deadline_ms = n
                        .parse()
                        .map_err(|_| format!("--deadline-ms needs a number, got {n}"))?;
                }
                "--slow-job-ms" => {
                    if i + 1 >= args.len() {
                        return Err("--slow-job-ms needs a <n>".into());
                    }
                    args.remove(i);
                    let n = args.remove(i);
                    flags.slow_job_ms = Some(
                        n.parse()
                            .map_err(|_| format!("--slow-job-ms needs a number, got {n}"))?,
                    );
                }
                "--chunk-rows" => {
                    if i + 1 >= args.len() {
                        return Err("--chunk-rows needs a <n>".into());
                    }
                    args.remove(i);
                    let n = args.remove(i);
                    let rows: usize = n
                        .parse()
                        .map_err(|_| format!("--chunk-rows needs a number, got {n}"))?;
                    if rows == 0 {
                        return Err("--chunk-rows must be at least 1".into());
                    }
                    flags.chunk_rows = Some(rows);
                }
                "--spill-dir" => {
                    if i + 1 >= args.len() {
                        return Err("--spill-dir needs a <dir>".into());
                    }
                    args.remove(i);
                    flags.spill_dir = Some(args.remove(i));
                }
                _ => i += 1,
            }
        }
        Ok(flags)
    }

    fn any(&self) -> bool {
        self.profile || self.metrics_json.is_some() || self.events.is_some() || self.serve.is_some()
    }

    /// The execution policy `--workers` / `--deadline-ms` describe.
    /// `fallback_width` covers `batch`, whose older `--jobs` flag keeps
    /// working when `--workers` is absent.
    fn exec_batch(&self, fallback_width: usize) -> ion_exec::Batch {
        let mut exec = ion_exec::Batch::new().with_width(self.workers.unwrap_or(fallback_width));
        if self.deadline_ms > 0 {
            exec = exec.with_deadline(std::time::Duration::from_millis(self.deadline_ms));
        }
        exec
    }

    /// Open the store named by `--store`, or explain which command
    /// needed it.
    fn open_store(&self, needed_by: &str) -> Result<std::sync::Arc<ion_store::Store>, String> {
        let dir = self
            .store
            .as_ref()
            .ok_or_else(|| format!("{needed_by} needs --store <dir>"))?;
        ion_store::Store::open(dir)
            .map(std::sync::Arc::new)
            .map_err(|e| format!("cannot open store {dir}: {e}"))
    }

    /// Render whatever the run recorded: the profile tree to stderr (so it
    /// never corrupts piped report output) and the JSON document to a file.
    fn report(&self) -> Result<(), String> {
        if !self.any() {
            return Ok(());
        }
        let snap = ion_obs::snapshot();
        if self.profile {
            eprint!("{}", snap.render_profile());
        }
        if let Some(path) = &self.metrics_json {
            fs::write(path, snap.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote metrics to {path}");
        }
        Ok(())
    }
}

fn workload_by_name(name: &str, scale: f64) -> Option<Box<dyn Workload>> {
    Some(match name {
        "ior-easy-2k" => Box::new(ior_easy_2kb_shared(scale)),
        "ior-easy-1m" => Box::new(ior_easy_1mb_shared(scale)),
        "ior-easy-fpp" => Box::new(ior_easy_1mb_fpp(scale)),
        "ior-hard" => Box::new(ior_hard(scale / 10.0)),
        "ior-rnd4k" => Box::new(ior_rnd4k(scale / 2.0)),
        "mdworkbench" => Box::new(MdWorkbench::scaled(scale * 5.0)),
        "openpmd" => Box::new(OpenPmd::scaled(OpenPmdVariant::Baseline, scale)),
        "openpmd-opt" => Box::new(OpenPmd::scaled(OpenPmdVariant::Optimized, scale)),
        "e2e" => Box::new(E2e::scaled(E2eVariant::Baseline, scale)),
        "e2e-opt" => Box::new(E2e::scaled(E2eVariant::Optimized, scale)),
        _ => return None,
    })
}

fn load(path: &str) -> Result<darshan::log::Log, String> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    LogReader::read(&bytes).map_err(|e| format!("cannot decode {path}: {e}"))
}

/// Full diagnosis of trace bytes — incremental when `--store` is given,
/// streaming out-of-core when `--chunk-rows` or `--spill-dir` is given,
/// the plain pipeline otherwise.
fn analyze_bytes(bytes: &[u8], flags: &ObsFlags) -> Result<ion::pipeline::IonReport, String> {
    let exec = flags.exec_batch(0);
    if flags.chunk_rows.is_some() || flags.spill_dir.is_some() {
        if flags.store.is_some() {
            return Err(
                "--chunk-rows/--spill-dir stream past the warm store; drop --store to use them"
                    .into(),
            );
        }
        let pager = flags.spill_dir.as_deref().map(|d| {
            std::sync::Arc::new(ion_store::SpillDir::new(std::path::Path::new(d)))
                as std::sync::Arc<dyn extractor::ChunkPager>
        });
        let chunk_rows = flags.chunk_rows.unwrap_or(extractor::DEFAULT_CHUNK_ROWS);
        let extracted = extractor::extract_stream(bytes, chunk_rows, pager)
            .map_err(|e| format!("cannot stream-decode trace: {e}"))?;
        let pipeline = IonPipeline::new().with_exec(exec);
        let params = pipeline.params_for(&extracted.skeleton);
        return Ok(pipeline.run_tables(&extracted.tables, &params));
    }
    if flags.store.is_some() {
        let store = flags.open_store("analyze")?;
        ion_store::StoredPipeline::new(store)
            .with_exec(exec)
            .analyze_bytes(bytes)
            .map_err(|e| e.to_string())
    } else {
        IonPipeline::new()
            .with_exec(exec)
            .run_bytes(bytes)
            .map_err(|e| format!("cannot decode trace: {e}"))
    }
}

fn run() -> Result<(), Failure> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let flags = ObsFlags::strip(&mut args)?;
    if flags.any() {
        ion_obs::enable();
    }
    // Start streaming and serving *before* dispatch so the whole run is
    // covered; tear both down after so the last events and a final scrape
    // window are not lost.
    let events_writer = match &flags.events {
        Some(path) => {
            let ring = std::sync::Arc::new(ion_obs::events::EventRing::new(
                ion_obs::events::DEFAULT_CAPACITY,
            ));
            ion_obs::events::install(std::sync::Arc::clone(&ring));
            let writer = ion_obs::events::EventWriter::spawn(ring, std::path::Path::new(path))
                .map_err(|e| format!("cannot stream events to {path}: {e}"))?;
            Some(writer)
        }
        None => None,
    };
    let server = match &flags.serve {
        Some(addr) => {
            let server = ion_obs::serve::MetricsServer::bind(addr.as_str())
                .map_err(|e| format!("cannot bind {addr}: {e}"))?;
            eprintln!("serving telemetry on http://{}", server.local_addr());
            Some(server)
        }
        None => None,
    };
    let result = dispatch(&args, &flags);
    flags.report()?;
    if let Some(server) = server {
        if flags.serve_hold_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(flags.serve_hold_ms));
        }
        server.shutdown();
    }
    if let Some(writer) = events_writer {
        ion_obs::events::uninstall();
        let stats = writer.finish().map_err(|e| format!("event writer: {e}"))?;
        eprintln!(
            "wrote {} event(s) to {} ({} dropped)",
            stats.written,
            flags.events.as_deref().unwrap_or("?"),
            stats.dropped
        );
    }
    result
}

const COMMANDS: [&str; 14] = [
    "generate", "parse", "dxt", "extract", "analyze", "batch", "drishti", "compare", "qa", "iql",
    "store", "serve", "obs", "fuzz",
];

fn dispatch(args: &[String], flags: &ObsFlags) -> Result<(), Failure> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    // `ion-cli --profile trace.darshan` profiles the default full-pipeline
    // command: a bare trace path means `analyze`.
    let implicit_analyze = [String::from("analyze"), cmd.clone()];
    let args: &[String] =
        if !COMMANDS.contains(&cmd.as_str()) && std::path::Path::new(cmd).is_file() {
            &implicit_analyze
        } else {
            args
        };
    let cmd = &args[0];
    match cmd.as_str() {
        "generate" => {
            let (name, out) = match (args.get(1), args.get(2)) {
                (Some(n), Some(o)) => (n, o),
                _ => return Err("generate needs <workload> <out.darshan>".into()),
            };
            let scale = experiment_scale();
            let w =
                workload_by_name(name, scale).ok_or_else(|| format!("unknown workload {name}"))?;
            let log = w.generate_traced();
            let bytes = LogWriter::from_log(log)
                .finish()
                .map_err(|e| e.to_string())?;
            fs::write(out, &bytes).map_err(|e| e.to_string())?;
            println!("wrote {} ({} bytes, scale {scale})", out, bytes.len());
        }
        "parse" => {
            let path = args.get(1).ok_or("parse needs <log.darshan>")?;
            emit(&darshan::parser::render_text(&load(path)?));
        }
        "dxt" => {
            let path = args.get(1).ok_or("dxt needs <log.darshan>")?;
            emit(&darshan::parser::render_dxt_text(&load(path)?));
        }
        "extract" => {
            let (path, dir) = match (args.get(1), args.get(2)) {
                (Some(p), Some(d)) => (p, d),
                _ => return Err("extract needs <log.darshan> <out-dir>".into()),
            };
            let log = load(path)?;
            let tables = extractor::extract_tables(&log);
            fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            for (name, table) in tables.iter() {
                let file = format!("{dir}/{name}.csv");
                fs::write(&file, extractor::csv::to_csv(table)).map_err(|e| e.to_string())?;
                println!("wrote {file} ({} rows)", table.len());
            }
        }
        "analyze" => {
            let path = args.get(1).ok_or("analyze needs <log.darshan>")?;
            // Feed bytes so the decode span nests under the pipeline span.
            let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let report = analyze_bytes(&bytes, flags).map_err(|e| format!("{path}: {e}"))?;
            emit(&report.render_text());
            let problems = report.consistency();
            if problems.is_empty() {
                println!("(consistency check: clean)");
            } else {
                println!("(consistency check: {} problems)", problems.len());
                for p in problems {
                    println!("  {:?}: {}", p.level, p.message);
                }
            }
        }
        "batch" => {
            let dir = args.get(1).ok_or("batch needs <trace-dir>")?;
            let store = flags.open_store("batch")?;
            let driver = ion_store::StoredPipeline::new(store);
            let cancel = ion_exec::CancelToken::new();
            ion_serve::signal::cancel_on_signal(cancel.clone());
            let exec = flags.exec_batch(flags.jobs).with_cancel(cancel);
            let report = ion_store::analyze_dir_with(&driver, std::path::Path::new(dir), &exec)
                .map_err(|e| e.to_string())?;
            emit(&report.render_text());
            if ion_serve::signal::tripped() {
                return Err(Failure::outcome("batch interrupted (Ctrl-C)"));
            }
            if report.failed() > 0 {
                return Err(Failure::outcome(format!(
                    "{} trace(s) failed",
                    report.failed()
                )));
            }
        }
        "serve" => {
            let addr = args.get(1).map_or("127.0.0.1:8080", String::as_str);
            let store = flags.open_store("serve")?;
            let mut config = ion_serve::ServeConfig::default();
            if let Some(workers) = flags.workers {
                config.workers = workers.max(1);
            }
            if flags.jobs > 0 {
                config.issue_width = flags.jobs;
            }
            if flags.deadline_ms > 0 {
                config.job_deadline = Some(std::time::Duration::from_millis(flags.deadline_ms));
            }
            if let Some(ms) = flags.slow_job_ms {
                // `--slow-job-ms 0` turns the slow-job log off entirely.
                config.slow_job_threshold = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            let daemon = ion_serve::Daemon::bind(addr, store, config)
                .map_err(|e| format!("cannot bind {addr}: {e}"))?;
            // The bound address goes to stderr so scripts (and the CI
            // smoke test) can scrape the ephemeral port from `serve :0`.
            eprintln!(
                "ion-serve {} ({}) listening on http://{} (Ctrl-C drains; twice cancels in-flight)",
                env!("CARGO_PKG_VERSION"),
                ion_obs::serve::build_profile(),
                daemon.local_addr()
            );
            let stop = ion_exec::CancelToken::new();
            ion_serve::signal::cancel_on_signal(stop.clone());
            daemon.run_until(&stop);
            // Escalation path: a second signal during the drain trips the
            // daemon's hard-cancel token so stuck jobs cannot block exit.
            let trips_at_drain = ion_serve::signal::trip_count();
            let hard = daemon.cancel_token();
            let _ = std::thread::Builder::new()
                .name("ion-serve-escalate".to_owned())
                .spawn(move || loop {
                    if ion_serve::signal::trip_count() > trips_at_drain {
                        hard.cancel();
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(50));
                });
            eprintln!("ion-serve draining...");
            let summary = daemon.shutdown();
            eprintln!(
                "ion-serve stopped: {} done, {} failed, {} cancelled ({} never ran), {} deadlined",
                summary.done,
                summary.failed,
                summary.cancelled,
                summary.cancelled_queued,
                summary.deadlined
            );
        }
        "fuzz" => {
            let mut iters: u64 = 1000;
            let mut seed: u64 = 0;
            let mut minimize = false;
            let mut replay: Option<String> = None;
            let mut save_crashes: Option<String> = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--iters" => {
                        let n = args.get(i + 1).ok_or("--iters needs a <n>")?;
                        iters = n
                            .parse()
                            .map_err(|_| format!("--iters needs a number, got {n}"))?;
                        i += 2;
                    }
                    "--seed" => {
                        let n = args.get(i + 1).ok_or("--seed needs a <n>")?;
                        seed = n
                            .parse()
                            .map_err(|_| format!("--seed needs a number, got {n}"))?;
                        i += 2;
                    }
                    "--minimize" => {
                        minimize = true;
                        i += 1;
                    }
                    "--replay" => {
                        replay = Some(args.get(i + 1).ok_or("--replay needs a <dir>")?.clone());
                        i += 2;
                    }
                    "--save-crashes" => {
                        save_crashes = Some(
                            args.get(i + 1)
                                .ok_or("--save-crashes needs a <dir>")?
                                .clone(),
                        );
                        i += 2;
                    }
                    other => return Err(format!("fuzz: unknown argument {other}").into()),
                }
            }
            if let Some(dir) = replay {
                let (count, failures) = ion_fuzz::corpus::replay_dir(std::path::Path::new(&dir))
                    .map_err(|e| format!("cannot replay {dir}: {e}"))?;
                println!("replayed {count} corpus seed(s) from {dir}");
                if !failures.is_empty() {
                    for f in &failures {
                        println!("  {}: CRASH at {}: {}", f.name, f.stage, f.message);
                        println!("    minimized seed (hex): {}", f.minimized_hex);
                    }
                    return Err(Failure::outcome(format!(
                        "{} corpus seed(s) crash the pipeline",
                        failures.len()
                    )));
                }
                return Ok(());
            }
            let cancel = ion_exec::CancelToken::new();
            ion_serve::signal::cancel_on_signal(cancel.clone());
            let config = ion_fuzz::CampaignConfig {
                iters,
                seed,
                minimize,
                jobs: (flags.jobs > 0).then_some(flags.jobs),
                cancel: Some(cancel),
            };
            let report = ion_fuzz::run_campaign(&config);
            println!("{}", report.render_text());
            for c in &report.crashes {
                println!(
                    "  iter {} [{}] CRASH at {}: {}",
                    c.iter,
                    c.corruption.map_or("valid", ion_fuzz::Corruption::name),
                    c.stage.name(),
                    c.message
                );
                if let Some(dir) = &save_crashes {
                    match ion_fuzz::corpus::save(std::path::Path::new(dir), c) {
                        Ok(path) => println!("    pinned: {}", path.display()),
                        Err(e) => eprintln!("    cannot pin crash: {e}"),
                    }
                }
            }
            if !report.crashes.is_empty() {
                return Err(Failure::outcome(format!(
                    "{} uncaught panic(s) in {} iterations (seed {seed})",
                    report.crashes.len(),
                    iters
                )));
            }
        }
        "store" => match args.get(1).map(String::as_str) {
            Some("gc") => {
                let apply = args.get(2).map(String::as_str) == Some("--apply");
                let store = flags.open_store("store gc")?;
                let report = store.gc(!apply).map_err(|e| e.to_string())?;
                println!(
                    "{} live object(s), {} unreferenced",
                    report.live,
                    report.unreferenced.len()
                );
                for digest in &report.unreferenced {
                    println!(
                        "  {} {}",
                        if report.deleted {
                            "pruned"
                        } else {
                            "would prune"
                        },
                        digest.hex()
                    );
                }
                if !report.deleted && !report.unreferenced.is_empty() {
                    println!("(dry run; pass --apply to prune)");
                }
            }
            _ => return Err("store needs a subcommand: store gc [--apply]".into()),
        },
        "obs" => {
            match args.get(1).map(String::as_str) {
                Some("serve") => {
                    let addr = args.get(2).map_or("127.0.0.1:9188", String::as_str);
                    ion_obs::enable();
                    let server = ion_obs::serve::MetricsServer::bind(addr)
                        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
                    eprintln!(
                        "serving telemetry on http://{} (Ctrl-C to stop)",
                        server.local_addr()
                    );
                    loop {
                        std::thread::sleep(std::time::Duration::from_secs(3600));
                    }
                }
                Some("export") => {
                    let rest = &args[2..];
                    if !rest.iter().any(|a| a == "--chrome") {
                        return Err("obs export needs --chrome <trace.json> [-o <out.json>]".into());
                    }
                    let out = match rest.iter().position(|a| a == "-o") {
                        Some(at) => Some(rest.get(at + 1).ok_or("-o needs a path")?.clone()),
                        None => None,
                    };
                    // The input is the first operand that is neither a flag
                    // nor the -o value.
                    let input = rest
                        .iter()
                        .enumerate()
                        .find(|(i, a)| {
                            a.as_str() != "--chrome"
                                && a.as_str() != "-o"
                                && rest.get(i.wrapping_sub(1)).map(String::as_str) != Some("-o")
                        })
                        .map(|(_, a)| a)
                        .ok_or("obs export needs --chrome <trace.json>")?;
                    let text = fs::read_to_string(input)
                        .map_err(|e| format!("cannot read {input}: {e}"))?;
                    let doc = ion_obs::json::parse(&text).map_err(|e| format!("{input}: {e}"))?;
                    let spans = ion_obs::trace::parse_spans(&doc).ok_or_else(|| {
                        format!("{input}: no \"spans\" array (expected an ion-trace/1 document)")
                    })?;
                    let chrome = ion_obs::trace::chrome_trace(&spans);
                    match out {
                        Some(path) => {
                            fs::write(&path, &chrome)
                                .map_err(|e| format!("cannot write {path}: {e}"))?;
                            println!("wrote {path} ({} spans)", spans.len());
                        }
                        None => emit(&chrome),
                    }
                }
                Some("diff") => {
                    let (base, new) = match (args.get(2), args.get(3)) {
                        (Some(b), Some(n)) => (b, n),
                        _ => return Err("obs diff needs <base.json> <new.json>".into()),
                    };
                    let tolerance = match args.iter().position(|a| a == "--tolerance") {
                        Some(at) => {
                            let frac = args
                                .get(at + 1)
                                .ok_or("--tolerance needs a <frac>")?
                                .parse::<f64>()
                                .map_err(|_| "--tolerance needs a number, e.g. 0.25")?;
                            ion_obs::diff::Tolerance::with_frac(frac)
                        }
                        None => ion_obs::diff::Tolerance::default(),
                    };
                    let base_text =
                        fs::read_to_string(base).map_err(|e| format!("cannot read {base}: {e}"))?;
                    let new_text =
                        fs::read_to_string(new).map_err(|e| format!("cannot read {new}: {e}"))?;
                    let report = ion_obs::diff::diff_documents(&base_text, &new_text, &tolerance)?;
                    emit(&report.render_text());
                    if report.has_regressions() {
                        return Err(Failure::outcome(format!(
                            "{} regression(s) beyond tolerance",
                            report.regressions.len()
                        )));
                    }
                }
                _ => return Err(
                    "obs needs a subcommand: obs serve [addr] | obs diff <base.json> <new.json> \
                     [--tolerance <frac>] | obs export --chrome <trace.json> [-o <out.json>]"
                        .into(),
                ),
            }
        }
        "drishti" => {
            let path = args.get(1).ok_or("drishti needs <log.darshan>")?;
            emit(&drishti::analyze(&load(path)?).render_text());
        }
        "compare" => {
            let (base, opt) = match (args.get(1), args.get(2)) {
                (Some(b), Some(o)) => (b, o),
                _ => return Err("compare needs <baseline.darshan> <optimized.darshan>".into()),
            };
            let pipeline = IonPipeline::new();
            let before = pipeline.run(&load(base)?);
            let after = pipeline.run(&load(opt)?);
            emit(&ion::compare::compare(&before, &after).render_text());
        }
        "iql" => {
            let positional: Vec<&String> = args[1..].iter().filter(|a| *a != "--explain").collect();
            let explain_flag = args[1..].iter().any(|a| a == "--explain");
            let (path, src_path) = match (positional.first(), positional.get(1)) {
                (Some(p), Some(s)) => (*p, *s),
                _ => return Err("iql needs <log.darshan> <file.iql> [--explain]".into()),
            };
            let src = fs::read_to_string(src_path)
                .map_err(|e| Failure::outcome(format!("cannot read {src_path}: {e}")))?;
            let tables = extractor::extract_tables(&load(path)?);
            let program =
                ion_llm::iql::parse_program(&src).map_err(|e| Failure::outcome(e.to_string()))?;
            let interp = ion_llm::iql::Interpreter::new(&tables);
            if explain_flag || program.explain {
                emit(&interp.explain(&program));
            } else {
                let out = interp
                    .run(&program)
                    .map_err(|e| Failure::outcome(e.to_string()))?;
                for (name, value) in &out.emitted {
                    println!("{name} = {value}");
                }
                if let Some(t) = &out.table {
                    if out.emitted.is_empty() {
                        emit(&extractor::csv::to_csv(t));
                    }
                }
                eprintln!("({} rows scanned)", out.rows_scanned);
            }
        }
        "qa" => {
            let path = args.get(1).ok_or("qa needs <log.darshan> [questions...]")?;
            let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let report = analyze_bytes(&bytes, flags).map_err(|e| format!("{path}: {e}"))?;
            emit(&format!("{}\n", report.summary));
            let mut session = report.session();
            for q in &args[2..] {
                emit(&format!("\nQ: {q}\n"));
                emit(&format!("A: {}\n", session.ask(q)));
            }
        }
        other => return Err(format!("unknown command {other}").into()),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            if e.show_usage {
                usage()
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
