//! Experiment: regenerate **Figure 3** — ION vs Drishti on the two real
//! applications (OpenPMD and E2E), each in baseline and optimized form.
//!
//! ```sh
//! cargo run --release -p ion-bench --bin exp_fig3
//! IONREPRO_SCALE=1.0 cargo run --release -p ion-bench --bin exp_fig3   # paper-scale ranks
//! ```
//!
//! For each trace the binary prints both tools' outputs side by side and
//! then checks the paper's comparison claims (both tools catch the
//! headline issues; ION adds aggregatability, per-rank attribution, and
//! low-volume contextualization).

use ion::pipeline::IonPipeline;
use ion_bench::experiment_scale;
use workloads::e2e::{E2e, E2eVariant};
use workloads::openpmd::{OpenPmd, OpenPmdVariant};
use workloads::Workload;

struct Claim {
    text: &'static str,
    holds: bool,
}

fn check_trace(w: &dyn Workload, claims: impl Fn(&ion::IonReport, &drishti::Report) -> Vec<Claim>) {
    let t0 = std::time::Instant::now();
    let log = w.generate();
    let ops: usize = log.dxt.iter().map(darshan::dxt::DxtRecord::len).sum();
    println!(
        "┌─ {} ({} ranks, {} traced ops, generated in {:.2?})",
        w.name(),
        log.job.nprocs,
        ops,
        t0.elapsed()
    );

    let drishti_report = drishti::analyze(&log);
    println!("│ DRISHTI OUTPUT:");
    for i in &drishti_report.insights {
        if i.level >= drishti::Level::Warn {
            println!("│   [{}] {}", i.level, i.message);
        }
    }

    let ion_report = IonPipeline::new().run(&log);
    println!("│ ION OUTPUT:");
    for d in ion_report.detected() {
        for f in &d.findings {
            println!("│   [{}] {}", f.severity, f.text);
        }
        for m in &d.mitigations {
            println!("│   [mitigation] {m}");
        }
        for n in &d.notes {
            println!("│   [note] {n}");
        }
    }

    println!("│ PAPER CLAIMS:");
    let mut ok = 0;
    let cs = claims(&ion_report, &drishti_report);
    let total = cs.len();
    for c in cs {
        println!("│   {} {}", if c.holds { "✓" } else { "✗" }, c.text);
        ok += usize::from(c.holds);
    }
    println!("└─ {ok}/{total} claims hold\n");
}

fn main() {
    let scale = experiment_scale();
    println!("═══ Figure 3: ION vs Drishti on real applications (scale {scale}) ═══\n");

    check_trace(
        &OpenPmd::scaled(OpenPmdVariant::Baseline, scale),
        |ion, dr| {
            let small = ion.diagnosis("small-io");
            let coll = ion.diagnosis("collective-io");
            vec![
                Claim {
                    text: "Drishti flags small reads, small writes and misalignment",
                    holds: dr.fired("small-reads")
                        && dr.fired("small-writes")
                        && dr.fired("misaligned-file"),
                },
                Claim {
                    text: "Drishti attributes small writes to the dominant shared file",
                    holds: dr.fired("small-writes-shared-file"),
                },
                Claim {
                    text: "ION detects the small+misaligned I/O too",
                    holds: small.is_some_and(ion::Diagnosis::is_detected)
                        && ion
                            .diagnosis("misaligned-io")
                            .is_some_and(ion::Diagnosis::is_detected),
                },
                Claim {
                    text: "ION adds that the small ops are consecutive → aggregatable",
                    holds: small.is_some_and(|d| d.raw.contains("consecutive")),
                },
                Claim {
                    text: "ION surfaces the collective-decomposition (HDF5 bug) signature",
                    holds: coll.is_some_and(|d| d.is_detected() && d.raw.contains("independent")),
                },
            ]
        },
    );

    check_trace(
        &OpenPmd::scaled(OpenPmdVariant::Optimized, scale),
        |ion, dr| {
            let rnd = ion.diagnosis("random-access");
            vec![
                Claim {
                    text: "Drishti flags the random read operations",
                    holds: dr.fired("random-reads"),
                },
                Claim {
                    text: "ION detects the random accesses as well",
                    holds: rnd.is_some_and(ion::Diagnosis::is_detected),
                },
                Claim {
                    text: "ION contextualizes them: low per-rank count and volume → not a concern",
                    holds: rnd.is_some_and(|d| {
                        d.detection == Some(ion::Detection::Mitigated) && d.raw.contains("per rank")
                    }),
                },
                Claim {
                    text: "small I/O is no longer a hard detection",
                    holds: ion
                        .diagnosis("small-io")
                        .is_none_or(|d| d.detection != Some(ion::Detection::Yes)),
                },
            ]
        },
    );

    check_trace(&E2e::scaled(E2eVariant::Baseline, scale), |ion, dr| {
        let imb = ion.diagnosis("load-imbalance");
        vec![
            Claim {
                text: "Drishti flags misalignment and load imbalance on the .nc4 file",
                holds: dr.fired("misaligned-file")
                    && dr
                        .insight("load-imbalance")
                        .is_some_and(|i| i.message.contains(".nc4")),
            },
            Claim {
                text: "ION detects misalignment (file and memory) and imbalance",
                holds: ion
                    .diagnosis("misaligned-io")
                    .is_some_and(|d| d.is_detected() && d.raw.contains("memory"))
                    && imb.is_some_and(ion::Diagnosis::is_detected),
            },
            Claim {
                text: "ION attributes the imbalance to rank 0 doing much more work",
                holds: imb.is_some_and(|d| d.raw.contains("rank 0")),
            },
        ]
    });

    check_trace(&E2e::scaled(E2eVariant::Optimized, scale), |ion, dr| {
        let imb = ion.diagnosis("load-imbalance");
        vec![
            Claim {
                text: "both tools still see pervasive misalignment",
                holds: dr.fired("misaligned-file")
                    && ion
                        .diagnosis("misaligned-io")
                        .is_some_and(ion::Diagnosis::is_detected),
            },
            Claim {
                text: "ION recognizes the writer-subset pattern (not a rank-0 alarm)",
                holds: imb.is_some_and(|d| d.raw.contains("subset")),
            },
            Claim {
                text: "ION suggests the skew may be intentional/algorithmic",
                holds: imb.is_some_and(|d| d.raw.contains("intentional")),
            },
        ]
    });
}
