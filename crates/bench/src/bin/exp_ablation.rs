//! Experiment: ablation study of ION's design choices (DESIGN.md calls
//! these out; the paper motivates each qualitatively).
//!
//! ```sh
//! cargo run --release -p ion-bench --bin exp_ablation
//! ```
//!
//! Four configurations run over the Figure 2 ground-truth suite:
//!
//! 1. **full** — the complete pipeline;
//! 2. **no-dxt** — drop the DXT table before analysis (counter-only
//!    traces, as on systems without `DXT_ENABLE_IO_TRACE`);
//! 3. **no-mitigations** — strip `MITIGATE` rules from every context
//!    (collapses ION to trigger-style yes/no reporting, Drishti-like);
//! 4. **retrieval-k6** — RAG-style context selection keeping only the 6
//!    most relevant contexts per trace.
//!
//! The output table reports ground-truth accuracy per configuration, which
//! quantifies how much each ingredient contributes.

use extractor::TableSet;
use ion::analyzer::{Analyzer, SystemParams};
use ion::pipeline::IonReport;
use ion_bench::{experiment_scale, fig2_workloads};
use ion_repro::{accuracy, score_report};

fn strip_mitigations(contexts: Vec<ion::IssueContext>) -> Vec<ion::IssueContext> {
    contexts
        .into_iter()
        .map(|mut c| {
            c.text = c
                .text
                .lines()
                .filter(|l| !l.trim_start().starts_with("MITIGATE "))
                .collect::<Vec<_>>()
                .join("\n");
            c
        })
        .collect()
}

fn drop_dxt(tables: &TableSet) -> TableSet {
    let mut out = TableSet::default();
    for (name, table) in tables.iter() {
        if name != "DXT" {
            out.insert(table.clone());
        }
    }
    out
}

fn report_from(analyzer: &Analyzer<'_>, tables: &TableSet, params: &SystemParams) -> IonReport {
    let result = analyzer.analyze(tables, params);
    IonReport {
        diagnoses: result.diagnoses,
        summary: result.summary,
        skipped: result.skipped,
        params: Some(*params),
    }
}

fn main() {
    let scale = experiment_scale();
    println!("═══ Ablation study over the Figure 2 ground-truth suite (scale {scale}) ═══\n");

    let configs = ["full", "no-dxt", "no-mitigations", "retrieval-k6"];
    let mut hits = vec![0usize; configs.len()];
    let mut totals = vec![0usize; configs.len()];
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();

    for w in fig2_workloads(scale) {
        let truth = w.ground_truth();
        let log = w.generate();
        let tables = extractor::extract_tables(&log);
        let params = SystemParams::from_log(&log);
        let mut accs = Vec::new();

        for (i, cfg) in configs.iter().enumerate() {
            let report = match *cfg {
                "full" => report_from(&Analyzer::new(), &tables, &params),
                "no-dxt" => report_from(&Analyzer::new(), &drop_dxt(&tables), &params),
                "no-mitigations" => {
                    let analyzer =
                        Analyzer::new().with_contexts(strip_mitigations(ion::builtin_contexts()));
                    report_from(&analyzer, &tables, &params)
                }
                "retrieval-k6" => {
                    let contexts =
                        ion::retrieval::select_contexts(ion::builtin_contexts(), &tables, 6);
                    let analyzer = Analyzer::new().with_contexts(contexts);
                    report_from(&analyzer, &tables, &params)
                }
                _ => unreachable!(),
            };
            let scores = score_report(&report, &truth);
            hits[i] += scores.iter().filter(|s| s.hit).count();
            totals[i] += scores.len();
            accs.push(accuracy(&scores));
        }
        rows.push((w.name().to_owned(), accs));
    }

    print!("{:<30}", "workload");
    for c in &configs {
        print!(" {c:>15}");
    }
    println!();
    for (name, accs) in &rows {
        print!("{name:<30}");
        for a in accs {
            print!(" {:>14.0}%", a * 100.0);
        }
        println!();
    }
    println!();
    print!("{:<30}", "OVERALL");
    for i in 0..configs.len() {
        print!(
            " {:>14.1}%",
            100.0 * hits[i] as f64 / totals[i].max(1) as f64
        );
    }
    println!();
    println!(
        "\nreading: 'no-mitigations' loses exactly the Mitigated expectations (ION \
degenerates to\n  trigger-style reporting); 'no-dxt' loses the stripe-overlap and \
transfer-size analyses\n  that need per-operation traces; retrieval keeps accuracy while \
running fewer prompts."
    );
}
