//! Experiment: request-scoped tracing overhead on the analysis pipeline.
//!
//! ```sh
//! cargo run --release -p ion-bench --bin exp_trace
//! cargo run --release -p ion-bench --bin exp_trace -- --bench-out BENCH_trace.json
//! cargo run --release -p ion-bench --bin exp_trace -- --quick
//! ```
//!
//! Runs the full decode → extract → detect pipeline over the same
//! synthetic trace twice: once with the `ion-obs` sink disabled (the
//! zero-cost path every library caller gets by default) and once with the
//! sink enabled and a request trace installed, the way `ion-serve`
//! executes every job. The comparison uses min-of-N per mode — the
//! minimum is the least noise-sensitive statistic on a shared box — and
//! enforces the acceptance gate: tracing may cost at most 5% over the
//! disabled baseline. Every traced iteration must also produce a
//! non-empty span tree whose spans all carry the installed trace id, so
//! the harness cannot "pass" by accidentally measuring an uninstrumented
//! run.
//!
//! `--bench-out <path>` records an `ion-obs/1` snapshot (per-mode latency
//! histograms plus the overhead gauge) for `ion_cli obs diff`; `--quick`
//! shrinks the iteration count for CI smoke.

use darshan::log::LogWriter;
use ion::pipeline::IonPipeline;
use iosim::{SimConfig, Simulation};
use std::time::Instant;

/// A mid-size trace: enough ranks and operations that the pipeline does
/// real work per iteration, small enough that N iterations stay quick.
fn trace_bytes() -> Vec<u8> {
    let mut sim = Simulation::new(SimConfig::default().with_ranks(4).with_exe("exp-trace"));
    let f = sim.posix_open_all("/scratch/overhead.dat").unwrap();
    for i in 0..512u64 {
        for rank in 0..4u32 {
            let base = u64::from(rank) * (8 << 20);
            sim.posix_write(rank, f, base + i * 512, 512).unwrap();
        }
    }
    sim.posix_close_all(f);
    LogWriter::from_log(sim.finish()).finish().unwrap()
}

fn min_ns(samples: &[u64]) -> u64 {
    samples.iter().copied().min().unwrap_or(u64::MAX)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench_out = args
        .iter()
        .position(|a| a == "--bench-out")
        .map(|i| args.get(i + 1).cloned().unwrap_or_default());
    if bench_out.as_deref() == Some("") {
        eprintln!("error: --bench-out needs a <path>");
        std::process::exit(1);
    }
    let quick = args.iter().any(|a| a == "--quick");
    // Quick mode trims the iteration count for CI but not below what a
    // stable min-of-N needs: 7 iterations left the gate at the mercy of
    // scheduler noise (observed spread −1%..+5% on an idle box).
    let (warmup, iters, max_overhead_pct) = if quick { (3, 15, 5.0) } else { (3, 21, 5.0) };

    let bytes = trace_bytes();
    let pipeline = IonPipeline::new();
    println!(
        "═══ tracing overhead: {iters} iterations per mode over a {}-byte trace ═══\n",
        bytes.len()
    );

    // Warm caches and pin the expected analysis result with the sink off.
    ion_obs::disable();
    let mut baseline_detected = 0usize;
    for _ in 0..warmup {
        baseline_detected = pipeline
            .run_bytes(&bytes)
            .expect("pipeline run")
            .detected()
            .len();
    }
    ion_obs::enable();
    for _ in 0..warmup {
        let ctx = ion_obs::mint_trace();
        let _scope = ion_obs::install_trace(ctx);
        pipeline.run_bytes(&bytes).expect("pipeline run");
        let _ = ion_obs::take_trace(ctx.trace);
    }

    // Measure the two modes interleaved — disabled then traced inside
    // every iteration — so slow drift on a shared box (thermal, noisy
    // neighbors) hits both modes alike instead of biasing one phase.
    // Samples are kept locally and fed to the registry afterwards (the
    // sink is off for half of every iteration).
    let mut disabled_ns = Vec::with_capacity(iters);
    let mut traced_ns = Vec::with_capacity(iters);
    let mut spans_per_run = 0usize;
    let mut misattributed = 0usize;
    for _ in 0..iters {
        // Disabled leg: the zero-cost path every library caller gets by
        // default when nobody is watching.
        ion_obs::disable();
        let t0 = Instant::now();
        let report = pipeline.run_bytes(&bytes).expect("pipeline run");
        disabled_ns.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(report.detected().len(), baseline_detected);

        // Traced leg: sink enabled with a request trace installed —
        // exactly how an ion-serve worker executes a job.
        ion_obs::enable();
        let ctx = ion_obs::mint_trace();
        let t0 = Instant::now();
        let report = {
            let _scope = ion_obs::install_trace(ctx);
            pipeline.run_bytes(&bytes).expect("pipeline run")
        };
        traced_ns.push(t0.elapsed().as_nanos() as u64);
        let spans = ion_obs::take_trace(ctx.trace);
        spans_per_run = spans.len();
        misattributed += spans.iter().filter(|s| s.trace != ctx.trace).count();
        assert_eq!(
            report.detected().len(),
            baseline_detected,
            "tracing must not change analysis results"
        );
    }

    for ns in &disabled_ns {
        ion_obs::observe("trace.bench.disabled_ns", *ns);
    }
    for ns in &traced_ns {
        ion_obs::observe("trace.bench.traced_ns", *ns);
    }

    let base = min_ns(&disabled_ns);
    let traced = min_ns(&traced_ns);
    #[allow(clippy::cast_precision_loss)]
    let overhead_pct = (traced as f64 - base as f64) / base as f64 * 100.0;
    ion_obs::gauge("trace.bench.overhead_pct", overhead_pct);
    ion_obs::counter("trace.bench.spans_per_run", spans_per_run as u64);

    #[allow(clippy::cast_precision_loss)]
    {
        println!("{:<10} {:>12} {:>12}", "mode", "min (ms)", "median (ms)");
        for (name, samples) in [("disabled", &mut disabled_ns), ("traced", &mut traced_ns)] {
            samples.sort_unstable();
            println!(
                "{:<10} {:>12.3} {:>12.3}",
                name,
                samples[0] as f64 / 1e6,
                samples[samples.len() / 2] as f64 / 1e6
            );
        }
    }
    println!(
        "\ntracing overhead {overhead_pct:+.2}% (min-of-{iters}), {spans_per_run} span(s) per run"
    );

    if let Some(path) = &bench_out {
        let json = ion_obs::snapshot().to_json();
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote tracing-overhead trajectory to {path}");
    }

    // Acceptance gates.
    let mut gate_ok = true;
    let mut fail = |msg: String| {
        gate_ok = false;
        eprintln!("FAIL: {msg}");
    };
    if spans_per_run == 0 {
        fail("traced runs produced no spans — the harness measured nothing".into());
    }
    if misattributed != 0 {
        fail(format!(
            "{misattributed} span(s) carried a foreign trace id"
        ));
    }
    if overhead_pct > max_overhead_pct {
        fail(format!(
            "tracing overhead {overhead_pct:.2}% exceeds the {max_overhead_pct:.0}% ceiling"
        ));
    }
    if !gate_ok {
        std::process::exit(1);
    }
}
