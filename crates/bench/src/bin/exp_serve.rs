//! Experiment: ion-serve daemon under a multi-tenant client swarm.
//!
//! ```sh
//! cargo run --release -p ion-bench --bin exp_serve
//! cargo run --release -p ion-bench --bin exp_serve -- --bench-out BENCH_serve.json
//! cargo run --release -p ion-bench --bin exp_serve -- --quick
//! ```
//!
//! Boots an in-process [`ion_serve::Daemon`] on an ephemeral port with
//! the deterministic expert model, then drives it over real TCP with a
//! swarm of client threads spread across tenants. Every client runs a
//! mixed workload: submit a unique synthetic trace, long-poll it to
//! `done`, fetch the report, ask two Q&A questions — plus one submit of
//! a swarm-shared trace so cross-client dedup is exercised under load.
//!
//! Reports per-operation latency percentiles (p50/p95/p99) and overall
//! job throughput, then enforces the acceptance gates: p99 submit
//! latency, end-to-end job throughput, zero worker panics, and every
//! job finishing `done`. `--bench-out <path>` records an `ion-obs/1`
//! snapshot (daemon counters plus swarm latency histograms) for
//! `ion_cli obs diff`; `--quick` shrinks the swarm for CI smoke.

use darshan::log::LogWriter;
use iosim::{SimConfig, Simulation};
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A small but analyzable trace; `tag` varies the digest per job.
fn trace_bytes(tag: &str) -> Vec<u8> {
    let mut sim = Simulation::new(SimConfig::default().with_ranks(2).with_exe(tag));
    let f = sim.posix_open_all("/scratch/swarm.dat").unwrap();
    for i in 0..16u64 {
        for rank in 0..2u32 {
            let base = u64::from(rank) * (4 << 20);
            sim.posix_write(rank, f, base + i * 1024, 1024).unwrap();
        }
    }
    sim.posix_close_all(f);
    LogWriter::from_log(sim.finish()).finish().unwrap()
}

/// Latency samples for one operation class, merged across the swarm.
#[derive(Default)]
struct OpStats {
    nanos: Vec<u64>,
}

impl OpStats {
    fn pct(&self, p: f64) -> f64 {
        if self.nanos.is_empty() {
            return 0.0;
        }
        let idx = ((p / 100.0) * (self.nanos.len() - 1) as f64).round() as usize;
        self.nanos[idx] as f64 / 1e6
    }
}

#[derive(Default)]
struct Swarm {
    submit: OpStats,
    poll: OpStats,
    report: OpStats,
    qa: OpStats,
    jobs_done: u64,
    dedup_joins: u64,
    failures: Vec<String>,
}

fn timed<T>(bucket: &mut Vec<u64>, metric: &'static str, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    let ns = t0.elapsed().as_nanos() as u64;
    bucket.push(ns);
    ion_obs::observe(metric, ns);
    out
}

/// One client's mixed workload; returns its local stats.
fn client_run(addr: SocketAddr, tenant: &str, client: usize, jobs: usize, shared: &[u8]) -> Swarm {
    use ion_serve::client::{get, post};
    let mut local = Swarm::default();
    let header = [("X-Ion-Tenant", tenant)];
    for round in 0..jobs {
        // Round 0 is the swarm-shared trace — all clients fire it at
        // start-up, so identical submissions overlap in flight and the
        // dedup/singleflight path is exercised; later rounds are unique.
        let unique;
        let trace: &[u8] = if round == 0 {
            shared
        } else {
            unique = trace_bytes(&format!("swarm-{tenant}-{client}-{round}"));
            &unique
        };
        let submitted = timed(&mut local.submit.nanos, "serve.bench.submit_ns", || {
            post(addr, "/v1/jobs", &header, trace)
        });
        let reply = match submitted {
            Ok(r) if r.status == 202 || r.status == 200 => r,
            Ok(r) => {
                local.failures.push(format!(
                    "{tenant}/{client}: submit -> {} {}",
                    r.status,
                    r.text()
                ));
                continue;
            }
            Err(e) => {
                local
                    .failures
                    .push(format!("{tenant}/{client}: submit: {e}"));
                continue;
            }
        };
        let doc = reply.json().expect("submit returns JSON");
        if doc.get("deduped").and_then(|d| d.as_bool()) == Some(true) {
            local.dedup_joins += 1;
        }
        let id = doc.get("job").unwrap().as_str().unwrap().to_owned();

        let polled = timed(&mut local.poll.nanos, "serve.bench.poll_ns", || {
            get(addr, &format!("/v1/jobs/{id}?wait_ms=30000"))
        });
        let state = polled
            .ok()
            .and_then(|r| r.json())
            .and_then(|d| d.get("state").and_then(|s| s.as_str().map(str::to_owned)));
        if state.as_deref() != Some("done") {
            local
                .failures
                .push(format!("{tenant}/{client}: job {id} ended {state:?}"));
            continue;
        }
        local.jobs_done += 1;

        let report = timed(&mut local.report.nanos, "serve.bench.report_ns", || {
            get(addr, &format!("/v1/jobs/{id}/report"))
        });
        match report {
            Ok(r) if r.status == 200 && !r.body.is_empty() => {}
            other => local
                .failures
                .push(format!("{tenant}/{client}: report on {id}: {other:?}")),
        }
        for question in [
            "what issues were detected?",
            "how severe is the worst issue?",
        ] {
            let answered = timed(&mut local.qa.nanos, "serve.bench.qa_ns", || {
                post(addr, &format!("/v1/jobs/{id}/qa"), &[], question.as_bytes())
            });
            match answered {
                Ok(r) if r.status == 200 => {}
                other => local
                    .failures
                    .push(format!("{tenant}/{client}: qa on {id}: {other:?}")),
            }
        }
    }
    local
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench_out = args
        .iter()
        .position(|a| a == "--bench-out")
        .map(|i| args.get(i + 1).cloned().unwrap_or_default());
    if bench_out.as_deref() == Some("") {
        eprintln!("error: --bench-out needs a <path>");
        std::process::exit(1);
    }
    let quick = args.iter().any(|a| a == "--quick");

    // Swarm shape: tenants × clients × jobs-per-client. Gates are
    // deliberately loose floors — they catch collapse (lock convoys,
    // lost wakeups, worker panics), not small regressions, so the
    // experiment stays green on slow shared CI boxes.
    let (tenants, clients, jobs, p99_submit_ms, min_jobs_per_s) = if quick {
        (3, 2, 2, 500.0, 1.0)
    } else {
        (4, 3, 5, 500.0, 4.0)
    };

    let root = std::env::temp_dir().join(format!("ion-exp-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = Arc::new(ion_store::Store::open(root.join("store")).expect("open store"));
    let daemon = ion_serve::Daemon::bind(
        "127.0.0.1:0",
        store,
        ion_serve::ServeConfig {
            workers: 4,
            queue_budget: 0, // swarm paces itself; admission is tested elsewhere
            tenant_budget: 0,
            ..ion_serve::ServeConfig::default()
        },
    )
    .expect("bind daemon");
    let addr = daemon.local_addr();

    let total_jobs = tenants * clients * jobs;
    println!(
        "═══ ion-serve swarm: {tenants} tenants × {clients} clients × {jobs} jobs \
         ({total_jobs} total) on {addr} ═══\n"
    );

    let shared = Arc::new(trace_bytes("swarm-shared"));
    let merged = Arc::new(Mutex::new(Swarm::default()));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for t in 0..tenants {
        for c in 0..clients {
            let merged = Arc::clone(&merged);
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                let tenant = format!("tenant-{t}");
                let local = client_run(addr, &tenant, c, jobs, &shared);
                let mut all = merged.lock().unwrap();
                all.submit.nanos.extend(local.submit.nanos);
                all.poll.nanos.extend(local.poll.nanos);
                all.report.nanos.extend(local.report.nanos);
                all.qa.nanos.extend(local.qa.nanos);
                all.jobs_done += local.jobs_done;
                all.dedup_joins += local.dedup_joins;
                all.failures.extend(local.failures);
            }));
        }
    }
    for h in handles {
        h.join().expect("client thread must not panic");
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let mut all = Arc::try_unwrap(merged)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_else(|_| unreachable!("all clients joined"));
    for stats in [&mut all.submit, &mut all.poll, &mut all.report, &mut all.qa] {
        stats.nanos.sort_unstable();
    }

    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10}",
        "op", "count", "p50 (ms)", "p95 (ms)", "p99 (ms)"
    );
    for (name, stats) in [
        ("submit", &all.submit),
        ("poll", &all.poll),
        ("report", &all.report),
        ("qa", &all.qa),
    ] {
        println!(
            "{:<10} {:>8} {:>10.2} {:>10.2} {:>10.2}",
            name,
            stats.nanos.len(),
            stats.pct(50.0),
            stats.pct(95.0),
            stats.pct(99.0)
        );
    }
    let jobs_per_s = all.jobs_done as f64 / wall_s;
    println!(
        "\n{} jobs done in {wall_s:.2}s ({jobs_per_s:.1} jobs/s), {} dedup join(s)",
        all.jobs_done, all.dedup_joins
    );

    // Drain and read the daemon's own ledger before gating.
    let summary = daemon.shutdown();
    let snap = ion_obs::snapshot();
    let panics = snap.counter("serve.worker.panics");
    println!(
        "daemon: {} done, {} failed, {} cancelled, {} deadlined, {} worker panic(s)",
        summary.done, summary.failed, summary.cancelled, summary.deadlined, panics
    );

    if let Some(path) = &bench_out {
        let json = snap.to_json();
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote serve swarm trajectory to {path}");
    }
    let _ = std::fs::remove_dir_all(&root);

    // Acceptance gates.
    let mut gate_ok = true;
    let mut fail = |msg: String| {
        gate_ok = false;
        eprintln!("FAIL: {msg}");
    };
    for f in &all.failures {
        fail(format!("request failure: {f}"));
    }
    if all.jobs_done != total_jobs as u64 {
        fail(format!("{}/{total_jobs} jobs done", all.jobs_done));
    }
    if all.dedup_joins == 0 {
        fail("no dedup joins — the shared-trace path never collapsed".into());
    }
    let p99 = all.submit.pct(99.0);
    if p99 > p99_submit_ms {
        fail(format!(
            "p99 submit latency {p99:.1}ms exceeds the {p99_submit_ms:.0}ms ceiling"
        ));
    }
    if jobs_per_s < min_jobs_per_s {
        fail(format!(
            "throughput {jobs_per_s:.2} jobs/s below the {min_jobs_per_s:.1} floor"
        ));
    }
    if panics != 0 {
        fail(format!("{panics} analysis worker(s) panicked"));
    }
    if summary.failed != 0 || summary.deadlined != 0 {
        fail(format!(
            "daemon ledger not clean: {} failed, {} deadlined",
            summary.failed, summary.deadlined
        ));
    }
    if !gate_ok {
        std::process::exit(1);
    }
}
