//! Experiment: out-of-core ingest — streaming decode into compressed
//! chunked tables under a fixed peak-RSS budget.
//!
//! ```sh
//! cargo run --release -p ion-bench --bin exp_ingest
//! cargo run --release -p ion-bench --bin exp_ingest -- --quick
//! cargo run --release -p ion-bench --bin exp_ingest -- --bench-out BENCH_ingest.json
//! cargo run --release -p ion-bench --bin exp_ingest -- --segments 200000000 --spill-dir /tmp/spill
//! ```
//!
//! Generates a synthetic DXT trace of `--segments` traced operations
//! (default 100 M) as an `impl Read` that frames regions on demand — the
//! serialized log never exists in memory — and feeds it to
//! `extractor::extract_stream`, which seals fixed-row chunks into
//! Dict/RLE-compressed columns (optionally spilling them through
//! `ion-store`'s content-addressed pager). The resulting DXT table is
//! then analyzed in place by the full detector battery, whose IQL
//! filters and aggregates scan the compressed runs directly.
//!
//! The acceptance gate is a peak-RSS ceiling read from `VmHWM` in
//! `/proc/self/status`: the run must stay under `--rss-budget-mb`
//! (default 8192 MB for the 100 M-segment trace). For scale: a batch
//! decode of the same log would hold ~3.2 GB of segment structs before
//! the first table row existed, the dense ten-column table another
//! ~9 GB next to it, and the analyzer's sorts/derives would then
//! materialize over those dense columns — >20 GB end to end, where the
//! streaming path peaks under 6 GB (the one honest dense column, the
//! per-record segment ordinal, accounts for 0.8 GB; analysis-stage
//! materializations for the rest). Throughput lands in the snapshot as
//! `ingest.bench.rows_per_sec`.
//!
//! `--quick` shrinks the trace to 1 M segments (and the budget to
//! 512 MB) for CI smoke; `--bench-out <path>` writes the `ion-obs/1`
//! snapshot consumed by `ion_cli obs diff`.

use darshan::dxt::{DxtLayer, DxtRecord, DxtSegment, OpKind};
use darshan::log::StreamWriter;
use darshan::records::{JobRecord, NameRecord};
use extractor::{extract_stream, ChunkPager, DEFAULT_CHUNK_ROWS};
use ion::pipeline::IonPipeline;
use ion_store::SpillDir;
use std::cell::RefCell;
use std::io::{Read, Write};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

/// Segments per generated DXT record: long enough that the constant
/// per-record columns (file, rank, offset, length, times) form runs the
/// chunk compressor collapses, short enough that the per-region scratch
/// stays a few megabytes.
const SEGS_PER_RECORD: u64 = 1 << 17;

/// Distinct file paths in the trace (dictionary-encoded downstream).
const NFILES: u64 = 32;

/// `Write` half of the generator: regions are framed into this shared
/// buffer and drained by the `Read` half.
#[derive(Clone)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Streams a synthetic DXT log of `remaining` segments, one region at a
/// time. Only the frame currently being drained is resident.
struct SyntheticDxt {
    writer: Option<StreamWriter<SharedBuf>>,
    buf: Rc<RefCell<Vec<u8>>>,
    pos: usize,
    remaining: u64,
    record_no: u64,
}

impl SyntheticDxt {
    fn new(segments: u64) -> Self {
        let buf = Rc::new(RefCell::new(Vec::new()));
        let job = JobRecord::new(1000, 4242, 64).with_metadata("exe", "exp-ingest");
        let mut writer =
            StreamWriter::new(SharedBuf(Rc::clone(&buf)), &job).expect("in-memory write");
        let names: Vec<NameRecord> = (0..NFILES)
            .map(|i| NameRecord {
                id: i + 1,
                path: format!("/scratch/run/out.{i:02}.dat"),
            })
            .collect();
        writer.write_names(&names).expect("in-memory write");
        SyntheticDxt {
            writer: Some(writer),
            buf,
            pos: 0,
            remaining: segments,
            record_no: 0,
        }
    }

    /// Frame the next region (or the end tag) into the buffer.
    fn pump(&mut self) {
        self.buf.borrow_mut().clear();
        self.pos = 0;
        let Some(writer) = self.writer.as_mut() else {
            return;
        };
        if self.remaining == 0 {
            self.writer
                .take()
                .unwrap()
                .finish()
                .expect("in-memory write");
            return;
        }
        let n = self.remaining.min(SEGS_PER_RECORD);
        let rec = next_record(self.record_no, n);
        writer
            .write_dxt(std::slice::from_ref(&rec))
            .expect("in-memory write");
        self.remaining -= n;
        self.record_no += 1;
    }
}

/// One record: every segment identical, so all columns but the
/// per-record segment ordinal compress into runs. Writes and reads
/// split the record into two runs of the `op` column.
fn next_record(r: u64, n: u64) -> DxtRecord {
    let mut rec = DxtRecord::new(
        r % NFILES + 1,
        (r % 64) as i32,
        if r.is_multiple_of(2) {
            DxtLayer::Posix
        } else {
            DxtLayer::MpiIo
        },
        &format!("node{:02}", r % 64 / 8),
    );
    #[allow(clippy::cast_precision_loss)]
    let start = r as f64 * 1e-3;
    let seg = DxtSegment {
        offset: r * 4096 % (1 << 30),
        length: 4096,
        start_time: start,
        end_time: start + 1e-4,
    };
    for i in 0..n {
        rec.push(
            if i * 2 < n {
                OpKind::Write
            } else {
                OpKind::Read
            },
            seg,
        );
    }
    rec
}

impl Read for SyntheticDxt {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.buf.borrow().len() {
            self.pump();
        }
        let buf = self.buf.borrow();
        let n = out.len().min(buf.len() - self.pos);
        out[..n].copy_from_slice(&buf[self.pos..self.pos + n]);
        drop(buf);
        self.pos += n;
        Ok(n)
    }
}

/// Peak resident set size (`VmHWM`) in megabytes.
fn peak_rss_mb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024)
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            std::process::exit(1);
        })
    })
}

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let bench_out = arg_value(&args, "--bench-out");
    let spill_dir = arg_value(&args, "--spill-dir");
    let segments: u64 = arg_value(&args, "--segments")
        .map(|s| s.parse().expect("--segments takes an integer"))
        .unwrap_or(if quick { 1_000_000 } else { 100_000_000 });
    let rss_budget_mb: u64 = arg_value(&args, "--rss-budget-mb")
        .map(|s| s.parse().expect("--rss-budget-mb takes an integer"))
        .unwrap_or(if quick { 512 } else { 8192 });
    ion_obs::enable();

    println!(
        "═══ out-of-core ingest: {segments} DXT segments, peak-RSS budget {rss_budget_mb} MB ═══\n"
    );

    let pager: Option<Arc<dyn ChunkPager>> = spill_dir
        .as_deref()
        .map(|d| Arc::new(SpillDir::new(std::path::Path::new(d))) as Arc<dyn ChunkPager>);

    let t0 = Instant::now();
    let source = SyntheticDxt::new(segments);
    let extracted =
        extract_stream(source, DEFAULT_CHUNK_ROWS, pager).expect("synthetic trace extracts");
    let extract_s = t0.elapsed().as_secs_f64();
    let extract_peak_mb = peak_rss_mb().expect("VmHWM readable on linux");
    assert_eq!(
        extracted.rows, segments,
        "every segment must land as exactly one DXT row"
    );

    let rows_per_sec = extracted.rows as f64 / extract_s;
    println!(
        "extract   {:>12.1}s  {:>14.0} rows/s  {:>10} bytes read",
        extract_s, rows_per_sec, extracted.bytes_read
    );

    let t1 = Instant::now();
    let pipeline = IonPipeline::new();
    let params = pipeline.params_for(&extracted.skeleton);
    let report = pipeline.run_tables(&extracted.tables, &params);
    let analyze_s = t1.elapsed().as_secs_f64();
    println!(
        "analyze   {:>12.1}s  {:>14} diagnoses",
        analyze_s,
        report.diagnoses.len()
    );

    let peak_mb = peak_rss_mb().expect("VmHWM readable on linux");
    println!(
        "peak RSS  {peak_mb:>12} MB  (extract phase {extract_peak_mb} MB, budget {rss_budget_mb} MB)"
    );

    ion_obs::gauge("ingest.bench.rows_per_sec", rows_per_sec);
    ion_obs::gauge("ingest.bench.extract_s", extract_s);
    ion_obs::gauge("ingest.bench.analyze_s", analyze_s);
    ion_obs::gauge("ingest.bench.peak_rss_mb", peak_mb as f64);
    ion_obs::gauge("ingest.bench.extract_peak_rss_mb", extract_peak_mb as f64);
    ion_obs::counter("ingest.bench.rows", extracted.rows);
    ion_obs::counter("ingest.bench.bytes_read", extracted.bytes_read);

    if let Some(path) = &bench_out {
        let json = ion_obs::snapshot().to_json();
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote ingest trajectory to {path}");
    }

    // Acceptance gates.
    let mut gate_ok = true;
    let mut fail = |msg: String| {
        gate_ok = false;
        eprintln!("FAIL: {msg}");
    };
    if peak_mb > rss_budget_mb {
        fail(format!(
            "peak RSS {peak_mb} MB exceeds the {rss_budget_mb} MB budget"
        ));
    }
    if report.diagnoses.is_empty() {
        fail("analysis produced no diagnoses — the gate measured an empty pipeline".into());
    }
    if !gate_ok {
        std::process::exit(1);
    }
}
