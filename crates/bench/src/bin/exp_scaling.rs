//! Experiment: engineering scaling study — how trace size and pipeline
//! cost grow with rank count and operation count.
//!
//! ```sh
//! cargo run --release -p ion-bench --bin exp_scaling
//! ```
//!
//! Not a paper figure; this quantifies the reproduction's own substrate so
//! EXPERIMENTS.md can speak to feasibility at paper scale (the OpenPMD
//! baseline has ~700k traced operations).

use darshan::log::LogWriter;
use ion::analyzer::SystemParams;
use ion::pipeline::IonPipeline;
use std::time::Instant;
use workloads::openpmd::{OpenPmd, OpenPmdVariant};
use workloads::Workload;

fn main() -> Result<(), darshan::DarshanError> {
    println!("═══ Scaling: OpenPMD baseline vs rank count ═══\n");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "ranks", "traced ops", "log bytes", "gen (ms)", "encode (ms)", "extract (ms)", "ion (ms)"
    );
    for scale in [0.02, 0.05, 0.1, 0.2] {
        let w = OpenPmd::scaled(OpenPmdVariant::Baseline, scale);
        let t0 = Instant::now();
        let log = w.generate();
        let gen_ms = t0.elapsed().as_secs_f64() * 1e3;
        let ops: usize = log.dxt.iter().map(darshan::dxt::DxtRecord::len).sum();
        let nprocs = log.job.nprocs;

        let t1 = Instant::now();
        let bytes = LogWriter::from_log(log.clone()).finish()?.len();
        let encode_ms = t1.elapsed().as_secs_f64() * 1e3;

        let t2 = Instant::now();
        let tables = extractor::extract_tables(&log);
        let extract_ms = t2.elapsed().as_secs_f64() * 1e3;

        let t3 = Instant::now();
        let report = IonPipeline::new().run_tables(&tables, &SystemParams::from_log(&log));
        let ion_ms = t3.elapsed().as_secs_f64() * 1e3;
        assert!(!report.diagnoses.is_empty());

        println!(
            "{nprocs:<8} {ops:>10} {bytes:>12} {gen_ms:>12.1} {encode_ms:>12.1} {extract_ms:>12.1} {ion_ms:>12.1}"
        );
    }
    println!(
        "\nbytes per traced op stay roughly constant (varint+delta DXT encoding);\n\
         extraction and analysis scale linearly with trace size."
    );
    Ok(())
}
