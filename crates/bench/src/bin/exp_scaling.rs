//! Experiment: engineering scaling study — how trace size and pipeline
//! cost grow with rank count and operation count.
//!
//! ```sh
//! cargo run --release -p ion-bench --bin exp_scaling
//! cargo run --release -p ion-bench --bin exp_scaling -- \
//!     --bench-out BENCH_scaling.json
//! ```
//!
//! Not a paper figure; this quantifies the reproduction's own substrate so
//! EXPERIMENTS.md can speak to feasibility at paper scale (the OpenPMD
//! baseline has ~700k traced operations).
//!
//! `--bench-out <path>` records the run into an `ion-obs/1` snapshot (one
//! `scaling.run` span per scale, stage histograms in nanoseconds) so the
//! perf trajectory is machine-comparable across commits — `ion_cli obs
//! diff` gates on exactly this document. `--quick` runs only the smallest
//! scale (CI smoke).
//!
//! `--workers <w1,w2,...>` additionally sweeps the analyze stage across
//! those `ion-exec` pool widths (gauges `scaling.analyze_ms.w<n>`).
//!
//! `--sched` runs the scheduler microbenchmark instead of the scaling
//! table: skewed synthetic task durations dispatched through the old
//! chunk-barrier pattern versus the `ion-exec` shared queue, at widths
//! 1/2/4/8. The run *gates*: it exits non-zero unless the shared queue is
//! at least 1.2x faster than the barrier at width 4 (`BENCH_sched.json`
//! pins the trajectory; sleeps parallelize regardless of core count, so
//! the gate is meaningful even on one-core CI runners).

use darshan::log::LogWriter;
use ion::analyzer::SystemParams;
use ion::pipeline::IonPipeline;
use std::time::{Duration, Instant};
use workloads::openpmd::{OpenPmd, OpenPmdVariant};
use workloads::Workload;

/// The old dispatch shape `ion-exec` replaced: split into width-sized
/// chunks, join every chunk before starting the next — the slowest task
/// in each chunk gates all of it.
fn barrier_dispatch(tasks: &[u64], width: usize) {
    for chunk in tasks.chunks(width) {
        std::thread::scope(|scope| {
            for &ms in chunk {
                scope.spawn(move || std::thread::sleep(Duration::from_millis(ms)));
            }
        });
    }
}

/// Skewed durations: every fourth task is 10x the rest, the worst case
/// for chunk barriers (one straggler per chunk).
fn sched_tasks(quick: bool) -> Vec<u64> {
    let (long, short) = if quick { (10, 1) } else { (40, 4) };
    (0..16u64)
        .map(|i| if i % 4 == 0 { long } else { short })
        .collect()
}

fn run_sched(quick: bool, bench_out: Option<&str>) {
    let tasks = sched_tasks(quick);
    println!("═══ Scheduler: chunk-barrier vs ion-exec shared queue ═══\n");
    println!(
        "{:<8} {:>14} {:>14} {:>10}",
        "width", "barrier (ms)", "shared (ms)", "speedup"
    );
    let mut speedup_at_4 = 0.0f64;
    for width in [1usize, 2, 4, 8] {
        let mut span = ion_obs::span!("sched.run");
        span.attr("width", width);
        let t0 = Instant::now();
        barrier_dispatch(&tasks, width);
        let barrier_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let out = ion_exec::Batch::new()
            .with_width(width)
            .map_ordered(&tasks, |&ms, _| {
                std::thread::sleep(Duration::from_millis(ms));
            });
        let shared_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert!(out.iter().all(ion_exec::TaskOutcome::is_ok));
        let speedup = barrier_ms / shared_ms;
        if width == 4 {
            speedup_at_4 = speedup;
        }
        ion_obs::gauge(&format!("sched.barrier_ms.w{width}"), barrier_ms);
        ion_obs::gauge(&format!("sched.shared_ms.w{width}"), shared_ms);
        ion_obs::gauge(&format!("sched.speedup.w{width}"), speedup);
        println!("{width:<8} {barrier_ms:>14.1} {shared_ms:>14.1} {speedup:>9.2}x");
    }
    println!(
        "\nthe shared queue starts the next task the moment a worker frees up;\n\
         the barrier waits for the slowest task in every chunk."
    );
    if let Some(path) = bench_out {
        let json = ion_obs::snapshot().to_json();
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote scheduler comparison to {path}");
    }
    if speedup_at_4 < 1.2 {
        eprintln!(
            "error: shared-queue speedup at width 4 is {speedup_at_4:.2}x, below the 1.2x gate"
        );
        std::process::exit(1);
    }
}

fn main() -> Result<(), darshan::DarshanError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench_out = args
        .iter()
        .position(|a| a == "--bench-out")
        .map(|i| args.get(i + 1).cloned().unwrap_or_default());
    if bench_out.as_deref() == Some("") {
        eprintln!("error: --bench-out needs a <path>");
        std::process::exit(1);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let workers_sweep: Vec<usize> = match args.iter().position(|a| a == "--workers") {
        Some(i) => {
            let list = args.get(i + 1).cloned().unwrap_or_default();
            let parsed: Option<Vec<usize>> =
                list.split(',').map(|w| w.parse::<usize>().ok()).collect();
            match parsed {
                Some(widths) if !widths.is_empty() => widths,
                _ => {
                    eprintln!("error: --workers needs a comma-separated width list, e.g. 1,2,4");
                    std::process::exit(1);
                }
            }
        }
        None => Vec::new(),
    };
    if bench_out.is_some() {
        ion_obs::enable();
    }
    if args.iter().any(|a| a == "--sched") {
        run_sched(quick, bench_out.as_deref());
        return Ok(());
    }

    println!("═══ Scaling: OpenPMD baseline vs rank count ═══\n");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "ranks", "traced ops", "log bytes", "gen (ms)", "encode (ms)", "extract (ms)", "ion (ms)"
    );
    let scales: &[f64] = if quick {
        &[0.02]
    } else {
        &[0.02, 0.05, 0.1, 0.2]
    };
    for &scale in scales {
        let mut run_span = ion_obs::span!("scaling.run");
        run_span.attr("scale", scale);
        let w = OpenPmd::scaled(OpenPmdVariant::Baseline, scale);
        let t0 = Instant::now();
        let log = w.generate();
        let gen_ms = t0.elapsed().as_secs_f64() * 1e3;
        let ops: usize = log.dxt.iter().map(darshan::dxt::DxtRecord::len).sum();
        let nprocs = log.job.nprocs;
        run_span.attr("ranks", nprocs);
        run_span.attr("ops", ops);

        let t1 = Instant::now();
        let bytes = ion_obs::timed("scaling.encode_ns", || {
            LogWriter::from_log(log.clone()).finish()
        })?
        .len();
        let encode_ms = t1.elapsed().as_secs_f64() * 1e3;

        let t2 = Instant::now();
        let tables = ion_obs::timed("scaling.extract_ns", || extractor::extract_tables(&log));
        let extract_ms = t2.elapsed().as_secs_f64() * 1e3;

        let t3 = Instant::now();
        let report = ion_obs::timed("scaling.analyze_ns", || {
            IonPipeline::new().run_tables(&tables, &SystemParams::from_log(&log))
        });
        let ion_ms = t3.elapsed().as_secs_f64() * 1e3;
        assert!(!report.diagnoses.is_empty());
        ion_obs::counter("scaling.traced_ops", ops as u64);
        ion_obs::counter("scaling.log_bytes", bytes as u64);

        println!(
            "{nprocs:<8} {ops:>10} {bytes:>12} {gen_ms:>12.1} {encode_ms:>12.1} {extract_ms:>12.1} {ion_ms:>12.1}"
        );
    }
    println!(
        "\nbytes per traced op stay roughly constant (varint+delta DXT encoding);\n\
         extraction and analysis scale linearly with trace size."
    );
    if !workers_sweep.is_empty() {
        println!("\n═══ Analyze stage vs ion-exec pool width ═══\n");
        println!("{:<8} {:>12}", "workers", "ion (ms)");
        let log = OpenPmd::scaled(OpenPmdVariant::Baseline, scales[0]).generate();
        let tables = extractor::extract_tables(&log);
        let params = SystemParams::from_log(&log);
        for &w in &workers_sweep {
            let t = Instant::now();
            let report = IonPipeline::new()
                .with_exec(ion_exec::Batch::new().with_width(w))
                .run_tables(&tables, &params);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            assert!(!report.diagnoses.is_empty());
            ion_obs::gauge(&format!("scaling.analyze_ms.w{w}"), ms);
            println!("{w:<8} {ms:>12.1}");
        }
    }
    if let Some(path) = bench_out {
        let json = ion_obs::snapshot().to_json();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote scaling trajectory to {path}");
    }
    Ok(())
}
