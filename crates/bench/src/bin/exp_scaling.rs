//! Experiment: engineering scaling study — how trace size and pipeline
//! cost grow with rank count and operation count.
//!
//! ```sh
//! cargo run --release -p ion-bench --bin exp_scaling
//! cargo run --release -p ion-bench --bin exp_scaling -- \
//!     --bench-out BENCH_scaling.json
//! ```
//!
//! Not a paper figure; this quantifies the reproduction's own substrate so
//! EXPERIMENTS.md can speak to feasibility at paper scale (the OpenPMD
//! baseline has ~700k traced operations).
//!
//! `--bench-out <path>` records the run into an `ion-obs/1` snapshot (one
//! `scaling.run` span per scale, stage histograms in nanoseconds) so the
//! perf trajectory is machine-comparable across commits — `ion_cli obs
//! diff` gates on exactly this document. `--quick` runs only the smallest
//! scale (CI smoke).

use darshan::log::LogWriter;
use ion::analyzer::SystemParams;
use ion::pipeline::IonPipeline;
use std::time::Instant;
use workloads::openpmd::{OpenPmd, OpenPmdVariant};
use workloads::Workload;

fn main() -> Result<(), darshan::DarshanError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench_out = args
        .iter()
        .position(|a| a == "--bench-out")
        .map(|i| args.get(i + 1).cloned().unwrap_or_default());
    if bench_out.as_deref() == Some("") {
        eprintln!("error: --bench-out needs a <path>");
        std::process::exit(1);
    }
    let quick = args.iter().any(|a| a == "--quick");
    if bench_out.is_some() {
        ion_obs::enable();
    }

    println!("═══ Scaling: OpenPMD baseline vs rank count ═══\n");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "ranks", "traced ops", "log bytes", "gen (ms)", "encode (ms)", "extract (ms)", "ion (ms)"
    );
    let scales: &[f64] = if quick {
        &[0.02]
    } else {
        &[0.02, 0.05, 0.1, 0.2]
    };
    for &scale in scales {
        let mut run_span = ion_obs::span!("scaling.run");
        run_span.attr("scale", scale);
        let w = OpenPmd::scaled(OpenPmdVariant::Baseline, scale);
        let t0 = Instant::now();
        let log = w.generate();
        let gen_ms = t0.elapsed().as_secs_f64() * 1e3;
        let ops: usize = log.dxt.iter().map(darshan::dxt::DxtRecord::len).sum();
        let nprocs = log.job.nprocs;
        run_span.attr("ranks", nprocs);
        run_span.attr("ops", ops);

        let t1 = Instant::now();
        let bytes = ion_obs::timed("scaling.encode_ns", || {
            LogWriter::from_log(log.clone()).finish()
        })?
        .len();
        let encode_ms = t1.elapsed().as_secs_f64() * 1e3;

        let t2 = Instant::now();
        let tables = ion_obs::timed("scaling.extract_ns", || extractor::extract_tables(&log));
        let extract_ms = t2.elapsed().as_secs_f64() * 1e3;

        let t3 = Instant::now();
        let report = ion_obs::timed("scaling.analyze_ns", || {
            IonPipeline::new().run_tables(&tables, &SystemParams::from_log(&log))
        });
        let ion_ms = t3.elapsed().as_secs_f64() * 1e3;
        assert!(!report.diagnoses.is_empty());
        ion_obs::counter("scaling.traced_ops", ops as u64);
        ion_obs::counter("scaling.log_bytes", bytes as u64);

        println!(
            "{nprocs:<8} {ops:>10} {bytes:>12} {gen_ms:>12.1} {encode_ms:>12.1} {extract_ms:>12.1} {ion_ms:>12.1}"
        );
    }
    println!(
        "\nbytes per traced op stay roughly constant (varint+delta DXT encoding);\n\
         extraction and analysis scale linearly with trace size."
    );
    if let Some(path) = bench_out {
        let json = ion_obs::snapshot().to_json();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote scaling trajectory to {path}");
    }
    Ok(())
}
