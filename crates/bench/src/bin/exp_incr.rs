//! Experiment: incremental-rebuild latency — fine-grained red-green
//! revalidation vs the coarse revision-keyed baseline.
//!
//! ```sh
//! cargo run --release -p ion-bench --bin exp_incr
//! cargo run --release -p ion-bench --bin exp_incr -- --quick
//! cargo run --release -p ion-bench --bin exp_incr -- --bench-out BENCH_incr.json
//! cargo run --release -p ion-bench --bin exp_incr -- --traces 200
//! ```
//!
//! The operator's steady-state loop: a warm store over a fleet of traces
//! (default 1000), then one *cosmetic* edit to the context library —
//! every line re-indented, not one knowledge statement changed — and a
//! full re-analysis of the fleet. The coarse baseline keys each
//! diagnosis by the whole-context revision, so the edit invalidates
//! every cached issue and re-runs every model. The fine path walks each
//! memo's consulted-statement dependencies, proves the edit inert, and
//! backdates: zero model runs, zero table decodes.
//!
//! Both keyings are warmed against the same store before the edit, so
//! the timed rebuilds compare pure revalidation strategies — not cold
//! extraction. Acceptance gates: the fine rebuild performs **zero**
//! model runs (counter-proven) and is ≥5x faster than the coarse
//! rebuild (≥3x under `--quick`, where fixed per-run overheads weigh
//! more against the smaller fleet).
//!
//! `--quick` shrinks the fleet to 50 traces for CI smoke;
//! `--bench-out <path>` writes the `ion-obs/1` snapshot consumed by
//! `ion_cli obs diff`.

use darshan::log::LogWriter;
use ion::context::builtin_contexts;
use ion::pipeline::IonPipeline;
use ion::IssueContext;
use ion_store::{Store, StoredPipeline};
use iosim::{SimConfig, Simulation};
use std::sync::Arc;
use std::time::Instant;

/// One synthetic trace, varied by index so every *table set* differs —
/// the file path, write size and op count all embed `i` directly, never
/// a cycle. A cycling fleet would let the coarse baseline's
/// content-addressed issue keys dedupe across traces and understate its
/// rebuild cost.
fn trace_bytes(i: usize) -> Vec<u8> {
    let ranks = 2 + (i % 3) as u32;
    let mut sim = Simulation::new(
        SimConfig::default()
            .with_ranks(ranks)
            .with_exe(&format!("incr-bench-{i}")),
    );
    let f = sim
        .posix_open_all(&format!("/scratch/incr-{i}.dat"))
        .unwrap();
    let size = 1024 + 8 * i as u64;
    let ops = 256 + (i as u64 % 16);
    for op in 0..ops {
        for rank in 0..ranks {
            let base = u64::from(rank) * (8 << 20);
            sim.posix_write(rank, f, base + op * size, size).unwrap();
        }
    }
    sim.posix_close_all(f);
    LogWriter::from_log(sim.finish()).finish().unwrap()
}

/// The cosmetic edit: re-indent every line of every context. The coarse
/// whole-text revision of each context changes; no knowledge statement
/// does.
fn reindented_contexts() -> Vec<IssueContext> {
    let mut contexts = builtin_contexts();
    for context in &mut contexts {
        context.text = context
            .text
            .lines()
            .map(|l| {
                if l.is_empty() {
                    String::new()
                } else {
                    format!("  {l}")
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
    }
    contexts
}

/// Analyze the whole fleet under one deferred-saves scope — the batch
/// idiom: per-trace scopes nest inside it, so the manifest is rewritten
/// once per pass instead of once per trace.
fn analyze_all(store: &Store, driver: &StoredPipeline<'_>, traces: &[Vec<u8>]) -> u64 {
    store
        .with_deferred_saves(|| {
            let mut diagnoses = 0u64;
            for bytes in traces {
                diagnoses += driver.analyze_bytes(bytes)?.diagnoses.len() as u64;
            }
            Ok(diagnoses)
        })
        .expect("analysis succeeds")
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            std::process::exit(1);
        })
    })
}

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let bench_out = arg_value(&args, "--bench-out");
    let n_traces: usize = arg_value(&args, "--traces")
        .map(|s| s.parse().expect("--traces takes an integer"))
        .unwrap_or(if quick { 50 } else { 1000 });
    let min_speedup = if quick { 3.0 } else { 5.0 };
    ion_obs::enable();

    println!("═══ incremental rebuild: {n_traces} traces, cosmetic context edit ═══\n");

    let root = std::env::temp_dir().join(format!("ion-exp-incr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = Arc::new(Store::open(&root).unwrap());

    let traces: Vec<Vec<u8>> = (0..n_traces).map(trace_bytes).collect();

    // Warm both keyings over the pristine builtin library. The key
    // families are disjoint, so one store carries both.
    let t0 = Instant::now();
    let fine = StoredPipeline::new(Arc::clone(&store));
    let diagnoses = analyze_all(&store, &fine, &traces);
    let cold_fine_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let coarse = StoredPipeline::new(Arc::clone(&store)).with_coarse(true);
    analyze_all(&store, &coarse, &traces);
    let cold_coarse_s = t0.elapsed().as_secs_f64();
    println!(
        "cold      {cold_fine_s:>10.2}s fine  {cold_coarse_s:>10.2}s coarse  ({diagnoses} diagnoses)"
    );
    assert!(diagnoses > 0, "the fleet must exercise the context library");

    // The edit, then the timed rebuilds.
    let contexts = reindented_contexts();
    let before = ion_obs::snapshot();

    let t0 = Instant::now();
    let fine = StoredPipeline::new(Arc::clone(&store))
        .with_pipeline(IonPipeline::new().with_contexts(contexts.clone()));
    analyze_all(&store, &fine, &traces);
    let fine_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mid = ion_obs::snapshot();

    let t0 = Instant::now();
    let coarse = StoredPipeline::new(Arc::clone(&store))
        .with_pipeline(IonPipeline::new().with_contexts(contexts))
        .with_coarse(true);
    analyze_all(&store, &coarse, &traces);
    let coarse_ms = t0.elapsed().as_secs_f64() * 1e3;
    let after = ion_obs::snapshot();

    let fine_llm_runs = mid.counter("llm.runs") - before.counter("llm.runs");
    let backdated =
        mid.counter("store.revalidate.backdated") - before.counter("store.revalidate.backdated");
    let coarse_llm_runs = after.counter("llm.runs") - mid.counter("llm.runs");
    let speedup = coarse_ms / fine_ms.max(1e-9);

    println!(
        "rebuild   {fine_ms:>10.1}ms fine  ({fine_llm_runs} model runs, {backdated} backdated)"
    );
    println!("rebuild   {coarse_ms:>10.1}ms coarse  ({coarse_llm_runs} model runs)");
    println!("speedup   {speedup:>10.1}x  (gate ≥{min_speedup}x)");

    // The committed snapshot carries the verdict, not the span firehose:
    // four passes over the fleet record hundreds of thousands of spans,
    // so drop them and re-emit the summary metrics the diff gate reads.
    ion_obs::reset();
    ion_obs::gauge("incr.speedup", speedup);
    ion_obs::gauge("incr.fine_rebuild_ms", fine_ms);
    ion_obs::gauge("incr.coarse_rebuild_ms", coarse_ms);
    ion_obs::counter("incr.traces", n_traces as u64);
    ion_obs::counter("incr.backdated", backdated);
    ion_obs::counter("incr.fine_llm_runs", fine_llm_runs);
    ion_obs::counter("incr.coarse_llm_runs", coarse_llm_runs);

    if let Some(path) = &bench_out {
        let json = ion_obs::snapshot().to_json();
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote incremental-rebuild trajectory to {path}");
    }
    let _ = std::fs::remove_dir_all(&root);

    // Acceptance gates.
    let mut gate_ok = true;
    let mut fail = |msg: String| {
        gate_ok = false;
        eprintln!("FAIL: {msg}");
    };
    if fine_llm_runs != 0 {
        fail(format!(
            "fine rebuild ran {fine_llm_runs} models — a cosmetic edit must backdate, not re-run"
        ));
    }
    if backdated == 0 {
        fail("fine rebuild backdated nothing — the edit was not exercised".into());
    }
    if coarse_llm_runs == 0 {
        fail("coarse rebuild re-ran nothing — the baseline was not exercised".into());
    }
    if speedup < min_speedup {
        fail(format!(
            "incremental rebuild speedup {speedup:.1}x under the {min_speedup}x gate"
        ));
    }
    if !gate_ok {
        std::process::exit(1);
    }
}
