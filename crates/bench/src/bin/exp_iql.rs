//! Experiment: vectorized IQL engine vs the legacy tree-walker.
//!
//! ```sh
//! cargo run --release -p ion-bench --bin exp_iql
//! cargo run --release -p ion-bench --bin exp_iql -- --bench-out BENCH_iql.json
//! cargo run --release -p ion-bench --bin exp_iql -- --quick
//! ```
//!
//! Builds a synthetic 1M-row DXT-shaped table and runs the same IQL
//! programs through both engines: the planned, columnar executor
//! (`ion_llm::iql::Interpreter`) and the original row-cloning interpreter
//! (`ion_llm::iql::legacy`, compiled in via the `legacy-eval` feature).
//! Each case first checks the two engines agree on the emitted scalars
//! and result-table size, then times repeated runs and reports rows/sec.
//!
//! `--bench-out <path>` records the run as an `ion-obs/1` snapshot (one
//! `iql.bench.case` span per program, engine timings as histograms) for
//! `ion_cli obs diff`. `--quick` shrinks the table to 100k rows and the
//! gate to 1.2x (CI smoke); the full run must clear a 2x speedup on the
//! scan+filter+aggregate case or the binary exits non-zero.

use extractor::{Table, TableSet, Value};
use ion_llm::iql::legacy::LegacyInterpreter;
use ion_llm::iql::{parse_program, Interpreter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// DXT-shaped synthetic trace: op/length skewed like an IOR write phase.
fn synthetic_dxt(rows: usize) -> TableSet {
    let mut rng = SmallRng::seed_from_u64(0x10_f1ab);
    let read: Arc<str> = Arc::from("read");
    let write: Arc<str> = Arc::from("write");
    let mut t = Table::new(
        "DXT",
        &["rank", "op", "segment", "offset", "length", "start_time"],
    );
    for i in 0..rows {
        let rank = rng.gen_range(0..64_i64);
        let is_write = rng.gen_range(0..10_u8) < 7;
        let length = 1_i64 << rng.gen_range(9..23_u32); // 512B..4MiB
        t.push_row(vec![
            Value::Int(rank),
            Value::Str(Arc::clone(if is_write { &write } else { &read })),
            Value::Int(i as i64),
            Value::Int((i as i64) * 4096),
            Value::Int(length),
            Value::Float(i as f64 * 1e-6),
        ]);
    }
    let mut set = TableSet::default();
    set.insert(t);
    set
}

struct Case {
    name: &'static str,
    src: &'static str,
}

const CASES: [Case; 4] = [
    Case {
        name: "scan_filter_agg",
        src: "LOAD DXT\n\
              FILTER op == \"write\" && length < 4194304\n\
              AGG n = count(), total = sum(length), m = mean(length), p95 = pct(length, 95)\n\
              EMIT n, total, m, p95",
    },
    Case {
        name: "group_by",
        src: "LOAD DXT\nGROUP rank AGG n = count(), total = sum(length)",
    },
    Case {
        name: "sort_limit_select",
        src: "LOAD DXT\nSORT length DESC\nLIMIT 100\nSELECT rank, offset, length",
    },
    Case {
        name: "derive_chain",
        src: "LOAD DXT\n\
              DERIVE mb = length / 1048576\n\
              DERIVE r = sqrt(mb)\n\
              FILTER r > 0.5\n\
              AGG n = count()\n\
              EMIT n",
    },
];

fn best_of<T>(iters: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("at least one iteration"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench_out = args
        .iter()
        .position(|a| a == "--bench-out")
        .map(|i| args.get(i + 1).cloned().unwrap_or_default());
    if bench_out.as_deref() == Some("") {
        eprintln!("error: --bench-out needs a <path>");
        std::process::exit(1);
    }
    let quick = args.iter().any(|a| a == "--quick");
    if bench_out.is_some() {
        ion_obs::enable();
    }

    let (rows, iters, required) = if quick {
        (100_000, 2_u32, 1.2)
    } else {
        (1_000_000, 3_u32, 2.0)
    };
    println!("═══ IQL: vectorized engine vs legacy tree-walker ({rows} rows) ═══\n");
    let tables = synthetic_dxt(rows);

    println!(
        "{:<20} {:>12} {:>12} {:>14} {:>14} {:>9}",
        "case", "legacy (ms)", "vector (ms)", "legacy rows/s", "vector rows/s", "speedup"
    );
    let mut gate_ok = true;
    for case in &CASES {
        let mut span = ion_obs::span!("iql.bench.case");
        span.attr("case", case.name);
        span.attr("rows", rows);
        let program = parse_program(case.src).expect("benchmark program parses");

        // Correctness first: both engines must agree before we time them.
        let fast = Interpreter::new(&tables)
            .run(&program)
            .expect("vectorized run");
        let slow = LegacyInterpreter::new(&tables)
            .run(&program)
            .expect("legacy run");
        assert_eq!(
            fast.emitted, slow.emitted,
            "{}: emitted diverged",
            case.name
        );
        assert_eq!(
            fast.table.as_ref().map(Table::len),
            slow.table.as_ref().map(Table::len),
            "{}: result size diverged",
            case.name
        );

        let (legacy_s, _) = best_of(iters, || {
            ion_obs::timed("iql.bench.legacy_ns", || {
                LegacyInterpreter::new(&tables).run(&program).unwrap()
            })
        });
        let (vector_s, _) = best_of(iters, || {
            ion_obs::timed("iql.bench.vector_ns", || {
                Interpreter::new(&tables).run(&program).unwrap()
            })
        });
        let speedup = legacy_s / vector_s;
        let legacy_rps = rows as f64 / legacy_s;
        let vector_rps = rows as f64 / vector_s;
        span.attr("speedup_x100", (speedup * 100.0) as u64);
        ion_obs::counter("iql.bench.cases", 1);
        println!(
            "{:<20} {:>12.1} {:>12.1} {:>14.0} {:>14.0} {:>8.1}x",
            case.name,
            legacy_s * 1e3,
            vector_s * 1e3,
            legacy_rps,
            vector_rps,
            speedup
        );
        // The acceptance gate rides on the headline case; the others are
        // reported for trend tracking but may be dominated by shared
        // kernels (sort, percentile) where less headroom exists.
        if case.name == "scan_filter_agg" && speedup < required {
            gate_ok = false;
            eprintln!(
                "\nFAIL: {} speedup {speedup:.2}x is below the {required:.1}x floor",
                case.name
            );
        }
    }

    if let Some(path) = bench_out {
        let json = ion_obs::snapshot().to_json();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("\nwrote IQL engine trajectory to {path}");
    }
    if !gate_ok {
        std::process::exit(1);
    }
}
