//! Experiment: regenerate **Figure 2** — ION diagnosis output compared to
//! ground truth on the six IO500 workloads.
//!
//! ```sh
//! cargo run --release -p ion-bench --bin exp_fig2
//! IONREPRO_SCALE=1.0 cargo run --release -p ion-bench --bin exp_fig2   # paper-scale op counts
//! ```
//!
//! For each workload the binary prints the paper's two columns — the
//! injected ground truth and ION's actual findings — followed by the
//! detection matrix and an overall accuracy score. The paper's claim is
//! that ION identifies every known ground-truth issue and additionally
//! qualifies mitigated ones (aggregatable small ops, conflict-free shared
//! files); the matrix makes that checkable.

use ion::pipeline::IonPipeline;
use ion_bench::{experiment_scale, fig2_workloads};
use ion_repro::{accuracy, score_report};

fn main() {
    let scale = experiment_scale();
    println!("═══ Figure 2: ION vs ground truth on IO500 workloads (scale {scale}) ═══\n");
    let mut all_hits = 0usize;
    let mut all_expectations = 0usize;

    for w in fig2_workloads(scale) {
        let truth = w.ground_truth();
        let t0 = std::time::Instant::now();
        let log = w.generate();
        let gen_time = t0.elapsed();
        let ops: usize = log.dxt.iter().map(darshan::dxt::DxtRecord::len).sum();
        let t1 = std::time::Instant::now();
        let report = IonPipeline::new().run(&log);
        let analyze_time = t1.elapsed();

        println!(
            "┌─ {} ({} traced ops; gen {:.2?}, analyze {:.2?})",
            w.name(),
            ops,
            gen_time,
            analyze_time
        );
        println!("│ GROUND TRUTH: {}", truth.description);
        println!("│ ION OUTPUTS:");
        for d in &report.diagnoses {
            if !d.is_detected() {
                continue;
            }
            for f in &d.findings {
                println!("│   [{}] {}", f.severity, f.text);
            }
            for m in &d.mitigations {
                println!("│   [mitigation] {m}");
            }
        }
        let scores = score_report(&report, &truth);
        println!("│ DETECTION MATRIX:");
        for s in &scores {
            println!(
                "│   {:<24} expected {:<10} got {:<9} {}",
                s.issue,
                format!("{:?}", s.expected).to_lowercase(),
                s.got.map_or("skipped".into(), |d| d.to_string()),
                if s.hit { "✓" } else { "✗ MISS" }
            );
        }
        let acc = accuracy(&scores);
        all_hits += scores.iter().filter(|s| s.hit).count();
        all_expectations += scores.len();
        println!("└─ accuracy: {:.0}%\n", acc * 100.0);
    }

    println!(
        "OVERALL: {all_hits}/{all_expectations} ground-truth expectations satisfied ({:.1}%)",
        100.0 * all_hits as f64 / all_expectations.max(1) as f64
    );
    println!(
        "(paper: ION successfully identifies each known ground-truth issue and\n reports mitigating conditions where present)"
    );
}
