//! The `ion-serve/v1` HTTP surface: route table and JSON rendering.
//!
//! Handlers translate between HTTP and [`Inner`](crate::Inner)'s domain
//! operations; no business logic lives here. The daemon's own routes are
//! mounted *before* the telemetry routes so `/healthz` reflects drain
//! state while `/metrics` and `/progress` come along for free on the same
//! listener.

use crate::job::{JobEntry, JobState};
use crate::{Inner, SubmitOutcome, RUNNING, SCHEMA};
use ion_exec::fair::Rejected;
use ion_obs::json::escape;
use ion_obs::serve::{Request, Response, Router};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Longest supported `?wait_ms=` long-poll.
const MAX_WAIT: Duration = Duration::from_secs(30);

/// Build the daemon's router: job API first, telemetry routes after.
pub(crate) fn router(inner: &Arc<Inner>) -> Router {
    let health = Arc::clone(inner);
    let submit = Arc::clone(inner);
    let list = Arc::clone(inner);
    let get = Arc::clone(inner);
    let post = Arc::clone(inner);
    let events = Arc::clone(inner);
    Router::new()
        .route("GET", "/healthz", move |_| {
            if health.phase() == RUNNING {
                Response::text(200, "ok\n")
            } else {
                Response::text(503, "draining\n")
            }
        })
        .route("POST", "/v1/jobs", move |req| handle_submit(&submit, req))
        .route("GET", "/v1/jobs", move |_| handle_list(&list))
        .prefix("GET", "/v1/jobs/", move |req| handle_job_get(&get, req))
        .prefix("POST", "/v1/jobs/", move |req| handle_qa(&post, req))
        .route("GET", "/v1/events", move |req| handle_events(&events, req))
        .with_metrics_routes(Arc::new(ion_obs::snapshot))
}

fn error_json(status: u16, message: &str) -> Response {
    Response::json(
        status,
        format!(
            "{{\"schema\":{},\"error\":{}}}",
            escape(SCHEMA),
            escape(message)
        ),
    )
}

fn handle_submit(inner: &Arc<Inner>, req: &Request) -> Response {
    let tenant = crate::key_safe(req.header("x-ion-tenant").unwrap_or("default"));
    let weight: u32 = req
        .header("x-ion-weight")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .clamp(1, 16);
    match inner.submit(&tenant, weight, req.body.clone()) {
        SubmitOutcome::Queued { id, depth } => Response::json(
            202,
            format!(
                "{{\"schema\":{},\"job\":{},\"state\":\"queued\",\"tenant\":{},\"deduped\":false,\"tenant_depth\":{depth}}}",
                escape(SCHEMA),
                escape(&id),
                escape(&tenant),
            ),
        ),
        SubmitOutcome::Joined { id, state } => Response::json(
            200,
            format!(
                "{{\"schema\":{},\"job\":{},\"state\":{},\"tenant\":{},\"deduped\":true}}",
                escape(SCHEMA),
                escape(&id),
                escape(state.as_str()),
                escape(&tenant),
            ),
        ),
        SubmitOutcome::Empty => error_json(400, "empty trace body"),
        SubmitOutcome::Draining => {
            error_json(503, "daemon is draining").with_header("Retry-After", "1")
        }
        SubmitOutcome::Rejected(rejected) => {
            let retry = match &rejected {
                // A saturated tenant should back off harder than one that
                // merely hit a momentarily full global queue.
                Rejected::TenantFull { .. } => "2",
                _ => "1",
            };
            error_json(429, &rejected.to_string()).with_header("Retry-After", retry)
        }
    }
}

/// One job as a JSON object (status endpoint and listing).
fn job_json(entry: &JobEntry, brief: bool) -> String {
    let rec = entry.rec();
    let state = rec.state;
    if brief {
        return format!(
            "{{\"job\":{},\"tenant\":{},\"state\":{}}}",
            escape(&entry.id),
            escape(&entry.tenant),
            escape(state.as_str()),
        );
    }
    let now = Instant::now();
    let queued_ms = rec
        .started
        .unwrap_or(now)
        .duration_since(rec.submitted)
        .as_millis();
    let run_ms = rec.started.map_or(0, |started| {
        rec.finished
            .unwrap_or(now)
            .duration_since(started)
            .as_millis()
    });
    let detected = rec
        .report
        .as_ref()
        .map_or(-1i64, |r| i64::try_from(r.detected().len()).unwrap_or(-1));
    let error = rec
        .error
        .as_deref()
        .map_or_else(|| "null".to_owned(), escape);
    format!(
        "{{\"schema\":{},\"job\":{},\"tenant\":{},\"state\":{},\"trace\":{},\"joins\":{},\"queued_ms\":{queued_ms},\"run_ms\":{run_ms},\"detected\":{detected},\"error\":{error}}}",
        escape(SCHEMA),
        escape(&entry.id),
        escape(&entry.tenant),
        escape(state.as_str()),
        entry.trace,
        rec.joins,
    )
}

fn handle_list(inner: &Arc<Inner>) -> Response {
    let mut jobs = Vec::new();
    for id in inner.job_ids() {
        if let Some(entry) = inner.job(&id) {
            jobs.push(job_json(&entry, true));
        }
    }
    let tallies: Vec<String> = inner
        .tallies()
        .iter()
        .map(|(name, value)| format!("{}:{value}", escape(name)))
        .collect();
    Response::json(
        200,
        format!(
            "{{\"schema\":{},\"draining\":{},\"queued\":{},\"counts\":{{{}}},\"jobs\":[{}]}}",
            escape(SCHEMA),
            inner.phase() != RUNNING,
            inner.queue_len(),
            tallies.join(","),
            jobs.join(","),
        ),
    )
}

fn handle_job_get(inner: &Arc<Inner>, req: &Request) -> Response {
    let rest = &req.path["/v1/jobs/".len()..];
    if let Some(id) = rest.strip_suffix("/report") {
        return handle_report(inner, id);
    }
    if let Some(id) = rest.strip_suffix("/trace") {
        return handle_trace(inner, id);
    }
    if rest.contains('/') {
        return Response::text(404, format!("no route {}\n", req.path));
    }
    let Some(entry) = inner.job(rest) else {
        return error_json(404, &format!("unknown job {rest}"));
    };
    if let Some(wait_ms) = req.query_param("wait_ms").and_then(|v| v.parse().ok()) {
        entry.wait_terminal(Duration::from_millis(wait_ms).min(MAX_WAIT));
    }
    Response::json(200, job_json(&entry, false))
}

fn handle_report(inner: &Arc<Inner>, id: &str) -> Response {
    let Some(entry) = inner.job(id) else {
        return error_json(404, &format!("unknown job {id}"));
    };
    let rec = entry.rec();
    match (&rec.report, rec.state) {
        (Some(report), JobState::Done) => Response::text(200, report.render_text()),
        (_, state) if !state.is_terminal() => {
            error_json(409, &format!("job {id} is {state}, not done"))
        }
        (_, state) => {
            let detail = rec.error.as_deref().unwrap_or("no report");
            error_json(409, &format!("job {id} ended {state}: {detail}"))
        }
    }
}

/// `GET /v1/jobs/<id>/trace` — the finished job's span tree as an
/// `ion-trace/1` document: per-stage durations, LLM token totals, and the
/// raw spans (the input to `ion_cli obs export --chrome`).
fn handle_trace(inner: &Arc<Inner>, id: &str) -> Response {
    let Some(entry) = inner.job(id) else {
        return error_json(404, &format!("unknown job {id}"));
    };
    let rec = entry.rec();
    let state = rec.state;
    if !state.is_terminal() {
        drop(rec);
        return error_json(
            409,
            &format!("job {id} is {state}; trace follows completion"),
        );
    }
    let spans = rec.trace_spans.clone();
    drop(rec);
    let spans: &[ion_obs::SpanData] = spans.as_deref().map_or(&[], Vec::as_slice);
    let tokens_in = ion_obs::trace::sum_attr(spans, "llm.run", "tokens_in");
    let tokens_out = ion_obs::trace::sum_attr(spans, "llm.run", "tokens_out");
    Response::json(
        200,
        format!(
            "{{\"schema\":{},\"job\":{},\"tenant\":{},\"state\":{},\"trace\":{},\"llm\":{{\"tokens_in\":{tokens_in},\"tokens_out\":{tokens_out}}},\"stages\":{},\"spans\":{}}}",
            escape(ion_obs::trace::SCHEMA),
            escape(id),
            escape(&entry.tenant),
            escape(state.as_str()),
            entry.trace,
            ion_obs::trace::stages_json(spans),
            ion_obs::trace::spans_json(spans),
        ),
    )
}

fn handle_qa(inner: &Arc<Inner>, req: &Request) -> Response {
    let rest = &req.path["/v1/jobs/".len()..];
    let Some(id) = rest.strip_suffix("/qa") else {
        return Response::text(404, format!("no route {}\n", req.path));
    };
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return error_json(400, "question must be UTF-8");
    };
    // Either a raw-text question or {"question": "..."}.
    let question = if body.trim_start().starts_with('{') {
        match ion_obs::json::parse(body.trim()) {
            Ok(doc) => match doc.get("question").and_then(|q| q.as_str()) {
                Some(q) => q.to_owned(),
                None => return error_json(400, "missing \"question\" field"),
            },
            Err(e) => return error_json(400, &format!("bad JSON body: {e}")),
        }
    } else {
        body.trim().to_owned()
    };
    if question.is_empty() {
        return error_json(400, "empty question");
    }
    let Some(entry) = inner.job(id) else {
        return error_json(404, &format!("unknown job {id}"));
    };
    let state = entry.rec().state;
    if state != JobState::Done {
        return error_json(
            409,
            &format!("job {id} is {state}; Q&A needs a finished analysis"),
        );
    }
    // The session has its own mutex: concurrent questions on one job
    // serialize here without blocking status reads or long-polls, which
    // only touch the record mutex.
    let mut slot = entry.session();
    let Some(session) = slot.as_mut() else {
        return error_json(409, &format!("job {id} has no Q&A session"));
    };
    let answer = session.ask(&question);
    drop(slot);
    ion_obs::counter("serve.qa.asked", 1);
    Response::json(
        200,
        format!(
            "{{\"schema\":{},\"job\":{},\"question\":{},\"answer\":{}}}",
            escape(SCHEMA),
            escape(id),
            escape(&question),
            escape(&answer),
        ),
    )
}

fn handle_events(inner: &Arc<Inner>, req: &Request) -> Response {
    let from = req.query_param("from").and_then(|v| v.parse().ok());
    let tenant = req.query_param_decoded("tenant");
    let trace = req.query_param("trace").and_then(|v| v.parse().ok());
    let Some((from, next, lines)) = inner.events_from(from, tenant.as_deref(), trace) else {
        return error_json(
            409,
            "event capture is disabled or the event stream is owned by another component",
        );
    };
    let mut body = format!(
        "{{\"schema\":{},\"kind\":\"events\",\"from\":{from},\"next\":{next},\"dropped\":{}}}\n",
        escape(SCHEMA),
        inner.events_dropped(),
    );
    for line in lines {
        body.push_str(&line);
        body.push('\n');
    }
    Response {
        status: 200,
        content_type: "application/jsonl".to_owned(),
        headers: Vec::new(),
        body: body.into_bytes(),
    }
}
