//! A minimal blocking HTTP/1.1 client over `std::net` — just enough for
//! the daemon's own tests, the `exp_serve` load harness and CI smoke
//! checks to talk to a running [`Daemon`](crate::Daemon) without any
//! external dependency.
//!
//! One request per connection (the server speaks `Connection: close`), so
//! a [`Reply`] is complete once the socket reaches EOF.

use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Reply {
    /// The body as UTF-8 text (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// First header with this (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Parse the body's first line as JSON (the daemon's JSON responses
    /// are single-line; `/v1/events` leads with a JSON header line).
    #[must_use]
    pub fn json(&self) -> Option<ion_obs::json::Json> {
        let text = self.text();
        ion_obs::json::parse(text.lines().next()?.trim()).ok()
    }
}

/// Issue one request and read the full response.
///
/// # Errors
///
/// Propagates connect/read/write errors; a malformed status line is
/// reported as [`io::ErrorKind::InvalidData`].
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<Reply> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: ion-serve\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_reply(&raw)
}

/// `GET path`.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Reply> {
    request(addr, "GET", path, &[], &[])
}

/// `POST path` with a body and optional extra headers.
///
/// # Errors
///
/// See [`request`].
pub fn post(
    addr: SocketAddr,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<Reply> {
    request(addr, "POST", path, headers, body)
}

fn bad(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_owned())
}

fn parse_reply(raw: &[u8]) -> io::Result<Reply> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator in response"))?;
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    Ok(Reply {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_headers_and_body() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 2\r\nContent-Type: application/json\r\n\r\n{\"error\":\"full\"}";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 429);
        assert_eq!(reply.header("retry-after"), Some("2"));
        assert_eq!(reply.header("Retry-After"), Some("2"));
        assert_eq!(
            reply.json().unwrap().get("error").unwrap().as_str(),
            Some("full")
        );
    }

    #[test]
    fn missing_terminator_is_invalid_data() {
        let err = parse_reply(b"HTTP/1.1 200 OK\r\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
