//! `ion-serve`: the always-on multi-tenant analysis daemon.
//!
//! One HTTP listener (reusing `ion-obs`'s [`Router`]/[`HttpServer`])
//! hosts both the telemetry routes (`/metrics`, `/progress`) and the
//! `ion-serve/v1` job API:
//!
//! | Route | Purpose |
//! |---|---|
//! | `POST /v1/jobs` | submit a trace body for analysis (`X-Ion-Tenant`, `X-Ion-Weight`) |
//! | `GET /v1/jobs` | list jobs and daemon counters |
//! | `GET /v1/jobs/<id>` | job status; `?wait_ms=N` long-polls until terminal |
//! | `GET /v1/jobs/<id>/report` | the finished report as text |
//! | `GET /v1/jobs/<id>/trace` | the finished job's span tree (`ion-trace/1`) |
//! | `POST /v1/jobs/<id>/qa` | ask the completed analysis a question |
//! | `GET /v1/events` | structured event log (`ion-obs/events/2` lines); `?tenant=`/`?trace=` filter |
//! | `GET /version` | crate version and build profile |
//! | `GET /healthz` | `ok` while accepting, 503 `draining` during shutdown |
//!
//! Every accepted job gets a request-scoped trace id minted at submit and
//! carried (via `ion-exec`) onto the worker threads that run its
//! analysis, so the whole decode → extract → IQL → LLM → analyzer cascade
//! lands in one per-job span tree, retrievable once the job is terminal.
//!
//! Submissions flow through a bounded [`FairQueue`]: admission control
//! turns a full queue into a typed rejection (HTTP 429 + `Retry-After`)
//! instead of unbounded memory growth, and deficit-round-robin across
//! tenants keeps one heavy client from starving the rest. Identical
//! concurrent submissions (same trace digest, context *statement*
//! fingerprints and model — whitespace-only context edits don't split
//! the key) join the in-flight job instead of queueing a duplicate; when dedup is
//! off, the content-addressed store's singleflight still collapses the
//! duplicated work underneath.
//!
//! Memory stays bounded end to end: a job's trace bytes are dropped the
//! moment it goes terminal, and once more than
//! [`ServeConfig::retain_jobs`] jobs have finished the oldest-finished
//! are evicted entirely (their ids 404) — clients are expected to fetch
//! reports promptly or re-submit (a warm store makes re-analysis a cache
//! hit).
//!
//! Shutdown is graceful by construction: the daemon flips to *draining*
//! (503 for new submissions, `/healthz` flips), cancels everything still
//! queued, lets in-flight analyses run to completion (HTTP stays up so
//! clients can poll results out), flushes the event ring, then stops the
//! listener. A hard [`CancelToken`] is threaded into every analysis for
//! the second-Ctrl-C path.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod signal;

mod api;
mod job;

pub use job::JobState;

use ion::pipeline::IonPipeline;
use ion_exec::fair::{FairQueue, Rejected};
use ion_exec::{Batch, CancelToken};
use ion_llm::{DeterministicExpert, LanguageModel};
use ion_obs::events::{self, EventRing};
use ion_obs::serve::HttpServer;
use ion_store::digest::Hasher;
use ion_store::driver::StoredPipeline;
use ion_store::{digest_bytes, Store, StoreError};
use job::{JobEntry, JobRecord};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Wire schema identifier stamped on every JSON response.
pub const SCHEMA: &str = "ion-serve/v1";

/// How long a worker sleeps between queue polls while idle.
const POP_TICK: Duration = Duration::from_millis(50);

/// Retained event-log lines served by `/v1/events` (older lines age out,
/// `base` advances so cursors stay meaningful).
const EVENT_LOG_CAP: usize = 8192;

/// Daemon tuning knobs. `Default` is sized for a small shared box.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// HTTP accept threads.
    pub http_workers: usize,
    /// Analysis workers draining the fair queue.
    pub workers: usize,
    /// Global queued-job cap (admission control; 0 = unbounded).
    pub queue_budget: usize,
    /// Per-tenant queued-job cap (0 = unbounded).
    pub tenant_budget: usize,
    /// Wall-clock budget per job; exceeding it yields `deadlined`.
    pub job_deadline: Option<Duration>,
    /// Intra-job issue parallelism (width of the per-job `Batch`).
    pub issue_width: usize,
    /// Join identical concurrent submissions to one job.
    pub dedup: bool,
    /// Terminal jobs retained for polling, reports and Q&A. Once more
    /// than this many jobs have finished, the oldest-finished are evicted
    /// (their ids 404) so an always-on daemon's memory stays bounded.
    /// `0` = retain forever.
    pub retain_jobs: usize,
    /// Install an event ring at bind when none is installed, so
    /// `/v1/events` has something to serve.
    pub capture_events: bool,
    /// Jobs whose run time exceeds this emit a `serve.job.slow` event
    /// with a one-line stage breakdown and bump `serve.jobs.slow`.
    /// `None` disables the slow-job log.
    pub slow_job_threshold: Option<Duration>,
    /// Analyze with these issue contexts instead of the builtin library
    /// (edited or operator-authored knowledge). The dedup key folds the
    /// contexts' *statement* fingerprints, not their raw bytes, so a
    /// daemon restarted over a whitespace-only context edit keeps the
    /// same job keys — and its warm store backdates instead of re-running
    /// models.
    pub contexts: Option<Vec<ion::IssueContext>>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            http_workers: 4,
            workers: 2,
            queue_budget: 64,
            tenant_budget: 16,
            job_deadline: None,
            issue_width: 1,
            dedup: true,
            retain_jobs: 256,
            capture_events: true,
            slow_job_threshold: Some(Duration::from_secs(10)),
            contexts: None,
        }
    }
}

/// What shutdown drained: jobs cancelled straight out of the queue plus
/// the terminal tallies at the moment the daemon stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainSummary {
    /// Jobs cancelled while still queued (never ran).
    pub cancelled_queued: usize,
    /// Jobs that finished successfully over the daemon's lifetime.
    pub done: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Jobs cancelled (queued-drain plus hard-cancelled mid-run).
    pub cancelled: u64,
    /// Jobs that hit their deadline.
    pub deadlined: u64,
}

/// Daemon phase: accepting, draining, or stopped.
const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// Lifetime tallies, mirrored into `ion-obs` counters.
#[derive(Debug, Default)]
struct Counts {
    submitted: AtomicU64,
    deduped: AtomicU64,
    rejected: AtomicU64,
    done: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    deadlined: AtomicU64,
}

/// Job maps guarded together so dedup lookups and completion removals
/// can't interleave inconsistently.
#[derive(Debug, Default)]
struct JobMaps {
    jobs: HashMap<String, Arc<JobEntry>>,
    /// Dedup key → job id, for jobs not yet terminal.
    inflight: HashMap<String, String>,
    /// Submission order, for listing.
    order: Vec<String>,
    /// Ids in the order they went terminal — the eviction queue that
    /// keeps retained jobs bounded by `ServeConfig::retain_jobs`.
    terminal: VecDeque<String>,
}

#[derive(Debug, Default)]
struct EventLog {
    /// Cursor of the first retained line.
    base: u64,
    lines: VecDeque<String>,
}

/// What `Inner::submit` decided.
pub(crate) enum SubmitOutcome {
    /// Queued as a new job; `depth` is the tenant's backlog afterwards.
    Queued { id: String, depth: usize },
    /// Joined an identical in-flight job.
    Joined { id: String, state: JobState },
    /// The daemon is draining; nothing new is accepted.
    Draining,
    /// Admission control refused it.
    Rejected(Rejected),
    /// Empty body.
    Empty,
}

/// Shared daemon state: everything handlers and workers touch.
pub(crate) struct Inner {
    store: Arc<Store>,
    model: Arc<dyn LanguageModel>,
    config: ServeConfig,
    queue: FairQueue<String>,
    maps: Mutex<JobMaps>,
    seq: AtomicU64,
    phase: AtomicU8,
    running: AtomicU64,
    counts: Counts,
    hard_cancel: CancelToken,
    events: Option<Arc<EventRing>>,
    log: Mutex<EventLog>,
    /// `<context fingerprint>/<model id>` — the non-trace half of the
    /// dedup key.
    key_suffix: String,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One-line stage breakdown for the slow-job log: summed span durations
/// per stage name, heaviest first, capped at six stages.
fn stage_breakdown(spans: &[ion_obs::SpanData]) -> String {
    let mut totals: HashMap<&str, u64> = HashMap::new();
    for span in spans {
        *totals.entry(span.name.as_ref()).or_default() += span.end_ns.saturating_sub(span.start_ns);
    }
    let mut totals: Vec<(&str, u64)> = totals.into_iter().collect();
    totals.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    totals.truncate(6);
    totals
        .iter()
        .map(|(name, ns)| {
            #[allow(clippy::cast_precision_loss)]
            let ms = *ns as f64 / 1e6;
            format!("{name}={ms:.1}ms")
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Whether a JSONL event line passes the `?tenant=`/`?trace=` filters.
/// No filters → pass without parsing; a line that fails to parse never
/// matches an active filter.
fn event_line_matches(line: &str, tenant: Option<&str>, trace: Option<u64>) -> bool {
    if tenant.is_none() && trace.is_none() {
        return true;
    }
    let Ok(doc) = ion_obs::json::parse(line) else {
        return false;
    };
    let fields = doc.get("fields");
    if let Some(want) = tenant {
        let got = fields
            .and_then(|f| f.get("tenant"))
            .and_then(ion_obs::json::Json::as_str);
        if got != Some(want) {
            return false;
        }
    }
    if let Some(want) = trace {
        let got = fields
            .and_then(|f| f.get("trace"))
            .and_then(ion_obs::json::Json::as_u64);
        if got != Some(want) {
            return false;
        }
    }
    true
}

/// The non-trace half of the dedup key: a digest of the *statement*
/// fingerprints of the contexts jobs will be analyzed with (configured
/// or builtin), plus the model id. Statement fingerprints are
/// whitespace-inert, so two daemons whose context libraries differ only
/// cosmetically produce identical job keys — matching the store layer,
/// which backdates such edits without model runs.
fn key_suffix_for(contexts: Option<&[ion::IssueContext]>, model: &dyn LanguageModel) -> String {
    let builtin;
    let contexts = match contexts {
        Some(c) => c,
        None => {
            builtin = ion::context::builtin_contexts();
            &builtin
        }
    };
    let mut hasher = Hasher::new();
    for context in contexts {
        hasher.field(context.id.as_bytes());
        hasher.field(
            ion::ContextStatements::of(context)
                .fingerprint()
                .hex()
                .as_bytes(),
        );
    }
    format!("{}/{}", hasher.finish().short(), key_safe(model.model_id()))
}

/// Map a tenant or model identifier into key-safe characters.
fn key_safe(s: &str) -> String {
    let mapped: String = s
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '-'
            }
        })
        .collect();
    let mut out: String = mapped.chars().take(64).collect();
    if out.is_empty() {
        out.push_str("default");
    }
    out
}

impl Inner {
    pub(crate) fn phase(&self) -> u8 {
        self.phase.load(Ordering::SeqCst)
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn job(&self, id: &str) -> Option<Arc<JobEntry>> {
        lock(&self.maps).jobs.get(id).cloned()
    }

    pub(crate) fn job_ids(&self) -> Vec<String> {
        lock(&self.maps).order.clone()
    }

    pub(crate) fn tallies(&self) -> [(&'static str, u64); 7] {
        [
            ("submitted", self.counts.submitted.load(Ordering::Relaxed)),
            ("deduped", self.counts.deduped.load(Ordering::Relaxed)),
            ("rejected", self.counts.rejected.load(Ordering::Relaxed)),
            ("done", self.counts.done.load(Ordering::Relaxed)),
            ("failed", self.counts.failed.load(Ordering::Relaxed)),
            ("cancelled", self.counts.cancelled.load(Ordering::Relaxed)),
            ("deadlined", self.counts.deadlined.load(Ordering::Relaxed)),
        ]
    }

    fn job_key(&self, bytes: &[u8]) -> String {
        format!("{}/{}", digest_bytes(bytes).hex(), self.key_suffix)
    }

    fn update_queue_gauge(&self) {
        #[allow(clippy::cast_precision_loss)]
        ion_obs::gauge("serve.jobs.queued", self.queue.len() as f64);
    }

    /// Admission, dedup and enqueue — the whole submit path.
    pub(crate) fn submit(&self, tenant: &str, weight: u32, bytes: Vec<u8>) -> SubmitOutcome {
        if bytes.is_empty() {
            return SubmitOutcome::Empty;
        }
        if self.phase() != RUNNING {
            return SubmitOutcome::Draining;
        }
        let bytes: Arc<[u8]> = bytes.into();
        let key = self.job_key(&bytes);
        loop {
            let mut maps = lock(&self.maps);
            if self.config.dedup {
                if let Some(id) = maps.inflight.get(&key).cloned() {
                    if let Some(entry) = maps.jobs.get(&id).cloned() {
                        drop(maps);
                        let mut rec = entry.rec();
                        if !rec.state.is_terminal() {
                            rec.joins += 1;
                            let state = rec.state;
                            drop(rec);
                            self.counts.deduped.fetch_add(1, Ordering::Relaxed);
                            ion_obs::counter("serve.dedup.joined", 1);
                            ion_obs::event!("serve.dedup", job = id.as_str(), tenant = tenant);
                            return SubmitOutcome::Joined { id, state };
                        }
                        // The job went terminal between the map lookup and
                        // the record lock. Completion removes the inflight
                        // binding *before* flipping the state, so the next
                        // iteration sees a clean map — no livelock.
                        continue;
                    }
                }
            }
            // Admission and publication happen under one critical section
            // (the queue's own mutex is a leaf lock): a rejected push is
            // never visible to concurrent identical submissions, so a
            // `Joined` outcome always names a job that actually exists.
            let id = format!("j{}", self.seq.fetch_add(1, Ordering::Relaxed) + 1);
            match self.queue.push(tenant, weight, id.clone()) {
                Ok(depth) => {
                    // Mint the request trace here: every span and event the
                    // job's analysis emits downstream is stamped with it.
                    let trace = ion_obs::mint_trace();
                    let entry = JobEntry::new(&id, tenant, &key, trace.trace, Arc::clone(&bytes));
                    maps.jobs.insert(id.clone(), entry);
                    maps.order.push(id.clone());
                    if self.config.dedup {
                        maps.inflight.insert(key.clone(), id.clone());
                    }
                    drop(maps);
                    self.counts.submitted.fetch_add(1, Ordering::Relaxed);
                    ion_obs::counter("serve.jobs.submitted", 1);
                    ion_obs::counter_with("serve.jobs.submitted", &[("tenant", tenant)], 1);
                    ion_obs::event!("serve.submit", job = id.as_str(), tenant = tenant);
                    self.update_queue_gauge();
                    return SubmitOutcome::Queued { id, depth };
                }
                Err(rejected) => {
                    drop(maps);
                    self.counts.rejected.fetch_add(1, Ordering::Relaxed);
                    ion_obs::counter("serve.admission.rejected", 1);
                    return if rejected == Rejected::Closed {
                        SubmitOutcome::Draining
                    } else {
                        SubmitOutcome::Rejected(rejected)
                    };
                }
            }
        }
    }

    /// Worker body: run one popped job to a terminal state.
    fn execute(&self, tenant: &str, id: &str) {
        let Some(entry) = self.job(id) else { return };
        // Install the job's trace on this worker thread: `ion-exec`
        // forwards it onto its own workers, so the whole decode → extract
        // → IQL → LLM → analyzer cascade lands in one span tree.
        let _trace_scope = ion_obs::install_trace(ion_obs::TraceContext::root(entry.trace));
        let wait_ns;
        {
            let mut rec = entry.rec();
            if rec.state != JobState::Queued {
                return; // Drained to `cancelled` while we popped it.
            }
            rec.state = JobState::Running;
            let now = Instant::now();
            rec.started = Some(now);
            wait_ns = now.duration_since(rec.submitted).as_nanos();
        }
        entry.notify();
        #[allow(clippy::cast_precision_loss)]
        {
            let running = self.running.fetch_add(1, Ordering::SeqCst) + 1;
            ion_obs::gauge("serve.jobs.running", running as f64);
        }
        self.update_queue_gauge();
        ion_obs::observe(
            "serve.job.wait_ns",
            u64::try_from(wait_ns).unwrap_or(u64::MAX),
        );
        ion_obs::event!("serve.start", job = id, tenant = tenant);

        let bytes = entry
            .rec()
            .bytes
            .clone()
            .expect("a queued job retains its trace bytes");
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_analysis(&bytes)));

        #[allow(clippy::cast_precision_loss)]
        {
            let running = self.running.fetch_sub(1, Ordering::SeqCst) - 1;
            ion_obs::gauge("serve.jobs.running", running as f64);
        }
        match outcome {
            Ok(Ok(report)) => {
                // Publish the Q&A session before the state flips so a
                // long-poller woken by `done` can ask immediately.
                *entry.session() = Some(report.session());
                let report = Arc::new(report);
                self.finish(&entry, JobState::Done, move |rec| {
                    rec.report = Some(report);
                });
            }
            Ok(Err(err)) => {
                // The driver reports cancellation and deadline expiry as
                // typed errors; classification never parses message text.
                let state = match err {
                    StoreError::Cancelled => JobState::Cancelled,
                    StoreError::Deadlined => JobState::Deadlined,
                    _ if self.hard_cancel.is_cancelled() => JobState::Cancelled,
                    _ => JobState::Failed,
                };
                let message = err.to_string();
                self.finish(&entry, state, move |rec| rec.error = Some(message));
            }
            Err(_panic) => {
                ion_obs::counter("serve.worker.panics", 1);
                self.finish(&entry, JobState::Failed, |rec| {
                    rec.error = Some("analysis worker panicked".to_owned());
                });
            }
        }
    }

    fn run_analysis(&self, bytes: &[u8]) -> Result<ion::pipeline::IonReport, StoreError> {
        let mut exec = Batch::new()
            .with_width(self.config.issue_width.max(1))
            .with_cancel(self.hard_cancel.clone());
        if let Some(deadline) = self.config.job_deadline {
            exec = exec.with_deadline(deadline);
        }
        let mut driver = StoredPipeline::new(Arc::clone(&self.store))
            .with_exec(exec)
            .with_model(&*self.model);
        if let Some(contexts) = &self.config.contexts {
            driver = driver.with_pipeline(IonPipeline::new().with_contexts(contexts.clone()));
        }
        driver.analyze_bytes(bytes)
    }

    /// Transition to a terminal state: drop the inflight binding first
    /// (so dedup's retry loop converges), then record, notify, tally.
    fn finish(&self, entry: &JobEntry, state: JobState, fill: impl FnOnce(&mut JobRecord)) {
        {
            let mut maps = lock(&self.maps);
            if maps.inflight.get(&entry.key).map(String::as_str) == Some(entry.id.as_str()) {
                maps.inflight.remove(&entry.key);
            }
        }
        // Claim the job's finished spans before the record fills: once the
        // state flips terminal, `GET /v1/jobs/{id}/trace` must already see
        // the tree. `take_trace` transfers ownership out of the global
        // ring, so spans never leak across requests.
        let spans = ion_obs::take_trace(entry.trace);
        let spans = if spans.is_empty() {
            None
        } else {
            Some(Arc::new(spans))
        };
        let mut run_ns = None;
        {
            let mut rec = entry.rec();
            rec.state = state;
            rec.finished = Some(Instant::now());
            // The input trace is dead weight once the job is terminal;
            // only the report (and session) need to stay resident.
            rec.bytes = None;
            rec.trace_spans = spans.clone();
            fill(&mut rec);
            if let (Some(started), Some(finished)) = (rec.started, rec.finished) {
                let ns =
                    u64::try_from(finished.duration_since(started).as_nanos()).unwrap_or(u64::MAX);
                run_ns = Some(ns);
                ion_obs::observe("serve.job.run_ns", ns);
                ion_obs::observe_with("serve.job.run_ns", &[("tenant", &entry.tenant)], ns);
            }
        }
        // Retire before tallying and waking long-pollers: a woken client
        // observes retention (and counters) already settled — never an
        // old job that is about to vanish.
        self.retire(&entry.id);
        // Tally before waking long-pollers, so a woken client never sees
        // a terminal state the counters don't reflect yet.
        let (name, tally) = match state {
            JobState::Done => ("serve.jobs.done", &self.counts.done),
            JobState::Failed => ("serve.jobs.failed", &self.counts.failed),
            JobState::Deadlined => ("serve.jobs.deadlined", &self.counts.deadlined),
            // `finish` is only called with terminal states.
            JobState::Cancelled | JobState::Queued | JobState::Running => {
                ("serve.jobs.cancelled", &self.counts.cancelled)
            }
        };
        tally.fetch_add(1, Ordering::Relaxed);
        ion_obs::counter(name, 1);
        ion_obs::counter_with(name, &[("tenant", &entry.tenant)], 1);
        // Slow-job log: one line with the stage breakdown, so a pager
        // alert carries the "where did the time go" answer inline.
        if let (Some(ns), Some(threshold)) = (run_ns, self.config.slow_job_threshold) {
            if u128::from(ns) >= threshold.as_nanos() {
                ion_obs::counter("serve.jobs.slow", 1);
                ion_obs::counter_with("serve.jobs.slow", &[("tenant", &entry.tenant)], 1);
                let stages = spans
                    .as_deref()
                    .map_or_else(|| "none".to_owned(), |spans| stage_breakdown(spans));
                ion_obs::event!(
                    "serve.job.slow",
                    job = entry.id.as_str(),
                    tenant = entry.tenant.as_str(),
                    run_ms = ns / 1_000_000,
                    stages = stages.as_str()
                );
            }
        }
        ion_obs::event!(
            "serve.finish",
            job = entry.id.as_str(),
            state = state.as_str()
        );
        entry.notify();
    }

    /// Record `id` as terminal and evict the oldest-finished jobs beyond
    /// [`ServeConfig::retain_jobs`], keeping an always-on daemon's memory
    /// bounded. Evicted ids 404; clients already holding the entry (woken
    /// long-pollers) are unaffected.
    fn retire(&self, id: &str) {
        let mut maps = lock(&self.maps);
        maps.terminal.push_back(id.to_owned());
        if self.config.retain_jobs == 0 {
            return;
        }
        while maps.terminal.len() > self.config.retain_jobs {
            let Some(old) = maps.terminal.pop_front() else {
                break;
            };
            maps.jobs.remove(&old);
            maps.order.retain(|j| j != &old);
            ion_obs::counter("serve.jobs.evicted", 1);
        }
    }

    /// Cancel a job that never ran (shutdown drain).
    fn cancel_queued(&self, id: &str) {
        let Some(entry) = self.job(id) else { return };
        if entry.rec().state != JobState::Queued {
            return;
        }
        self.finish(&entry, JobState::Cancelled, |rec| {
            rec.error = Some("cancelled: daemon draining before the job started".to_owned());
        });
    }

    /// Pull everything pending out of the event ring into the bounded
    /// serving log.
    pub(crate) fn flush_events(&self) {
        let Some(ring) = &self.events else { return };
        let mut log = lock(&self.log);
        for event in ring.drain() {
            log.lines.push_back(event.to_jsonl());
            if log.lines.len() > EVENT_LOG_CAP {
                log.lines.pop_front();
                log.base += 1;
            }
        }
    }

    /// `(base, next, lines-from-cursor)` for `/v1/events?from=`.
    ///
    /// `tenant`/`trace` filter which lines are returned; the cursor keeps
    /// counting over the unfiltered stream, so a client can flip filters
    /// between polls without losing its place.
    pub(crate) fn events_from(
        &self,
        from: Option<u64>,
        tenant: Option<&str>,
        trace: Option<u64>,
    ) -> Option<(u64, u64, Vec<String>)> {
        self.events.as_ref()?;
        self.flush_events();
        let log = lock(&self.log);
        let next = log.base + log.lines.len() as u64;
        let from = from.unwrap_or(log.base).clamp(log.base, next);
        #[allow(clippy::cast_possible_truncation)]
        let skip = (from - log.base) as usize;
        let lines = log
            .lines
            .iter()
            .skip(skip)
            .filter(|line| event_line_matches(line, tenant, trace))
            .cloned()
            .collect();
        Some((from, next, lines))
    }

    pub(crate) fn events_dropped(&self) -> u64 {
        self.events.as_ref().map_or(0, |ring| ring.dropped())
    }
}

/// The running daemon: HTTP listener + analysis workers over one
/// [`Inner`]. Dropping it performs the same graceful drain as
/// [`Daemon::shutdown`].
pub struct Daemon {
    inner: Arc<Inner>,
    server: Option<HttpServer>,
    workers: Vec<std::thread::JoinHandle<()>>,
    installed_ring: bool,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("addr", &self.local_addr())
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Daemon {
    /// Bind `addr` and serve analyses of submitted traces with the
    /// built-in [`DeterministicExpert`] model.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound or a thread
    /// cannot be spawned.
    pub fn bind(
        addr: impl ToSocketAddrs,
        store: Arc<Store>,
        config: ServeConfig,
    ) -> io::Result<Daemon> {
        Daemon::bind_with_model(addr, store, Arc::new(DeterministicExpert::new()), config)
    }

    /// Bind `addr` with an explicit model (tests inject gated or counting
    /// stubs here).
    ///
    /// Enables the global `ion-obs` sink: a daemon's `/metrics` endpoint
    /// is its primary health surface, so serving zeros would be a bug.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound or a thread
    /// cannot be spawned.
    pub fn bind_with_model(
        addr: impl ToSocketAddrs,
        store: Arc<Store>,
        model: Arc<dyn LanguageModel>,
        config: ServeConfig,
    ) -> io::Result<Daemon> {
        ion_obs::enable();
        // Register the panic counter at zero so `/metrics` proves the
        // absence of panics, not just their non-observation.
        ion_obs::counter("serve.worker.panics", 0);
        ion_obs::counter("serve.jobs.submitted", 0);
        ion_obs::counter("serve.admission.rejected", 0);
        ion_obs::counter("serve.jobs.evicted", 0);
        ion_obs::counter("serve.jobs.slow", 0);

        let mut installed_ring = false;
        let events = if config.capture_events && !events::enabled() {
            let ring = Arc::new(EventRing::new(events::DEFAULT_CAPACITY));
            events::install(Arc::clone(&ring));
            installed_ring = true;
            Some(ring)
        } else {
            None
        };

        let key_suffix = key_suffix_for(config.contexts.as_deref(), &*model);

        let inner = Arc::new(Inner {
            store,
            model,
            queue: FairQueue::new(config.queue_budget, config.tenant_budget),
            maps: Mutex::new(JobMaps::default()),
            seq: AtomicU64::new(0),
            phase: AtomicU8::new(RUNNING),
            running: AtomicU64::new(0),
            counts: Counts::default(),
            hard_cancel: CancelToken::new(),
            events,
            log: Mutex::new(EventLog::default()),
            key_suffix,
            config,
        });

        let mut workers = Vec::new();
        for n in 0..inner.config.workers.max(1) {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ion-serve-worker-{n}"))
                    .spawn(move || loop {
                        match inner.queue.pop(POP_TICK) {
                            Some((tenant, id)) => inner.execute(&tenant, &id),
                            None => {
                                if inner.queue.is_closed() {
                                    break;
                                }
                            }
                        }
                    })?,
            );
        }

        let router = Arc::new(api::router(&inner));
        let server = HttpServer::bind(addr, router, inner.config.http_workers.max(1))?;
        Ok(Daemon {
            inner,
            server: Some(server),
            workers,
            installed_ring,
        })
    }

    /// The bound address (resolves the port when bound to `:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.server
            .as_ref()
            .map_or_else(|| ([0, 0, 0, 0], 0).into(), HttpServer::local_addr)
    }

    /// The hard-cancel token threaded into every analysis. Tripping it
    /// aborts in-flight jobs (they finish `cancelled`); pair with
    /// [`Daemon::shutdown`] for a fast exit.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.inner.hard_cancel.clone()
    }

    /// Block until `token` is cancelled (e.g. by
    /// [`signal::cancel_on_signal`]), then return so the caller can
    /// [`Daemon::shutdown`].
    pub fn run_until(&self, token: &CancelToken) {
        while !token.is_cancelled() {
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    /// Graceful drain: stop admitting (503), cancel everything still
    /// queued, let in-flight analyses finish (HTTP stays up so clients
    /// can poll results), flush events, then stop the listener.
    pub fn shutdown(mut self) -> DrainSummary {
        self.teardown()
    }

    fn teardown(&mut self) -> DrainSummary {
        let inner = &self.inner;
        inner.phase.store(DRAINING, Ordering::SeqCst);
        ion_obs::gauge("serve.draining", 1.0);
        inner.queue.close();
        let leftovers = inner.queue.drain();
        let cancelled_queued = leftovers.len();
        for (_tenant, id) in leftovers {
            inner.cancel_queued(&id);
        }
        inner.update_queue_gauge();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        inner.phase.store(STOPPED, Ordering::SeqCst);
        inner.flush_events();
        if self.installed_ring {
            let _ = events::uninstall();
            self.installed_ring = false;
        }
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        ion_obs::gauge("serve.draining", 0.0);
        DrainSummary {
            cancelled_queued,
            done: inner.counts.done.load(Ordering::Relaxed),
            failed: inner.counts.failed.load(Ordering::Relaxed),
            cancelled: inner.counts.cancelled.load(Ordering::Relaxed),
            deadlined: inner.counts.deadlined.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if self.server.is_some() || !self.workers.is_empty() {
            let _ = self.teardown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_safe_maps_and_bounds() {
        assert_eq!(key_safe("expert-v1"), "expert-v1");
        assert_eq!(key_safe("a b/c"), "a-b-c");
        assert_eq!(key_safe(""), "default");
        assert_eq!(key_safe(&"x".repeat(100)).len(), 64);
    }

    #[test]
    fn default_config_is_bounded() {
        let config = ServeConfig::default();
        assert!(config.queue_budget > 0, "admission control must be on");
        assert!(config.tenant_budget > 0);
        assert!(config.retain_jobs > 0, "terminal jobs must not accrete");
        assert!(config.dedup);
    }

    #[test]
    fn terminal_jobs_drop_trace_bytes_and_failures_classify_typed() {
        let root = std::env::temp_dir().join(format!("ion-serve-unit-drop-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = Arc::new(Store::open(&root).unwrap());
        let daemon = Daemon::bind("127.0.0.1:0", store, ServeConfig::default()).unwrap();
        // Garbage bytes decode-fail; the error message is free-form but
        // the state must classify as `failed` (typed, not text-matched).
        let SubmitOutcome::Queued { id, .. } = daemon.inner.submit("t", 1, vec![0u8; 64]) else {
            panic!("submit refused");
        };
        let entry = daemon.inner.job(&id).expect("job registered");
        entry.wait_terminal(Duration::from_secs(30));
        let rec = entry.rec();
        assert_eq!(rec.state, JobState::Failed, "{:?}", rec.error);
        assert!(
            rec.bytes.is_none(),
            "terminal jobs must not retain trace bytes"
        );
        assert!(rec.error.as_deref().unwrap_or("").contains("decode"));
        drop(rec);
        drop(daemon);
        let _ = std::fs::remove_dir_all(root);
    }
}
