//! Job registry types: the lifecycle state machine and the per-job
//! record that handlers and workers share.
//!
//! Lifecycle (`ion-serve/v1`):
//!
//! ```text
//! queued ──► running ──► done
//!    │          ├──────► failed
//!    │          ├──────► cancelled   (hard cancel mid-run)
//!    │          └──────► deadlined   (per-job deadline hit)
//!    └────────────────► cancelled    (drained at shutdown, never ran)
//! ```
//!
//! Every transition happens under the job's record mutex and notifies the
//! condvar, so long-polling clients wake exactly when the state changes —
//! no server-side sleeps.

use ion::pipeline::IonReport;
use ion::session::InteractiveSession;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting in the fair queue.
    Queued,
    /// An analysis worker is executing it.
    Running,
    /// Finished successfully; report and Q&A session are available.
    Done,
    /// The analysis errored (parse failure, worker panic, …).
    Failed,
    /// Cancelled — drained at shutdown before running, or hard-cancelled
    /// mid-run.
    Cancelled,
    /// The per-job deadline expired mid-run.
    Deadlined,
}

impl JobState {
    /// The wire name (`ion-serve/v1` `state` field).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Deadlined => "deadlined",
        }
    }

    /// Whether the job can no longer change state.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The mutable half of a job, guarded by [`JobEntry::record`].
#[derive(Debug)]
pub(crate) struct JobRecord {
    pub state: JobState,
    pub submitted: Instant,
    pub started: Option<Instant>,
    pub finished: Option<Instant>,
    /// The submitted trace. Dropped when the job goes terminal — a
    /// finished job keeps its report, not its (potentially huge) input.
    pub bytes: Option<Arc<[u8]>>,
    pub report: Option<Arc<IonReport>>,
    pub error: Option<String>,
    /// How many identical submits joined this job instead of queueing
    /// their own (cross-client dedup).
    pub joins: u64,
    /// The job's finished span tree, collected at the terminal transition
    /// (`GET /v1/jobs/{id}/trace`). `None` until terminal, and for jobs
    /// that never ran or ran with tracing disabled.
    pub trace_spans: Option<Arc<Vec<ion_obs::SpanData>>>,
}

/// One job: immutable identity plus the state record and its condvar.
///
/// The Q&A session lives behind its own mutex so an in-flight
/// `session.ask()` (which can take as long as a model turn) never blocks
/// status reads or long-polls on the record mutex.
#[derive(Debug)]
pub(crate) struct JobEntry {
    pub id: String,
    pub tenant: String,
    /// Dedup key: trace digest + context revision + model id.
    pub key: String,
    /// Request trace id minted at submit; every span/event the job's
    /// analysis emits is stamped with it.
    pub trace: u64,
    record: Mutex<JobRecord>,
    session: Mutex<Option<InteractiveSession>>,
    changed: Condvar,
}

impl JobEntry {
    pub fn new(id: &str, tenant: &str, key: &str, trace: u64, bytes: Arc<[u8]>) -> Arc<JobEntry> {
        Arc::new(JobEntry {
            id: id.to_owned(),
            tenant: tenant.to_owned(),
            key: key.to_owned(),
            trace,
            record: Mutex::new(JobRecord {
                state: JobState::Queued,
                submitted: Instant::now(),
                started: None,
                finished: None,
                bytes: Some(bytes),
                report: None,
                error: None,
                joins: 0,
                trace_spans: None,
            }),
            session: Mutex::new(None),
            changed: Condvar::new(),
        })
    }

    /// Lock the Q&A session slot. Separate from the record mutex: asking
    /// the session a question serializes concurrent Q&A on this job but
    /// leaves status reads and long-polls unblocked.
    pub fn session(&self) -> MutexGuard<'_, Option<InteractiveSession>> {
        self.session.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Lock the record. A worker that panicked while holding the lock has
    /// already been counted; the record itself stays readable.
    pub fn rec(&self) -> MutexGuard<'_, JobRecord> {
        self.record.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Wake every long-poller; call after a state transition.
    pub fn notify(&self) {
        self.changed.notify_all();
    }

    /// Block until the job reaches a terminal state or `timeout` passes
    /// (condvar wait — no polling).
    pub fn wait_terminal(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut rec = self.rec();
        while !rec.state.is_terminal() {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            rec = self
                .changed
                .wait_timeout(rec, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        for s in [
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
            JobState::Deadlined,
        ] {
            assert!(s.is_terminal(), "{s}");
        }
    }

    #[test]
    fn wait_terminal_wakes_on_transition_not_timeout() {
        let entry = JobEntry::new("j1", "t", "k", 0, Vec::new().into());
        let waiter = Arc::clone(&entry);
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            waiter.wait_terminal(Duration::from_secs(30));
            started.elapsed()
        });
        // Let the waiter block, then flip the state.
        while Arc::strong_count(&entry) < 2 {
            std::thread::yield_now();
        }
        entry.rec().state = JobState::Done;
        entry.notify();
        let waited = handle.join().unwrap();
        assert!(
            waited < Duration::from_secs(10),
            "woke via notify: {waited:?}"
        );
        assert!(entry.rec().state.is_terminal());
    }
}
