//! SIGINT/SIGTERM handling without any FFI crate: a raw `signal(2)`
//! binding installs an async-signal-safe handler that only flips
//! atomics; a watcher thread translates the flag into a [`CancelToken`]
//! trip on the caller's behalf.
//!
//! The long-running `ion_cli` subcommands (`serve`, `batch`, `fuzz`) use
//! this so Ctrl-C drains cleanly instead of killing the process mid-job:
//! first signal → graceful drain, and callers can watch
//! [`trip_count`] to escalate a second signal into a hard cancel.

use ion_exec::CancelToken;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::time::Duration;

static TRIPPED: AtomicBool = AtomicBool::new(false);
static TRIPS: AtomicU32 = AtomicU32::new(0);

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use std::os::raw::c_int;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    // Only atomics in here: the handler runs in signal context where
    // almost nothing else (locks, allocation, I/O) is legal.
    extern "C" fn on_signal(_signum: c_int) {
        super::TRIPPED.store(true, std::sync::atomic::Ordering::SeqCst);
        super::TRIPS.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    }

    extern "C" {
        // POSIX `signal(2)`; returns the previous disposition (ignored).
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    pub(super) fn install() {
        // SAFETY: `on_signal` is async-signal-safe (atomic stores only)
        // and stays alive for the program's lifetime; `signal` is the
        // libc entry point every Rust program already links.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

/// Install the SIGINT/SIGTERM handler (idempotent). No-op on non-Unix
/// platforms — [`tripped`] then only ever flips via [`trip_now`].
pub fn install() {
    #[cfg(unix)]
    sys::install();
}

/// Whether a signal has arrived since installation (or [`reset`]).
#[must_use]
pub fn tripped() -> bool {
    TRIPPED.load(Ordering::SeqCst)
}

/// How many signals have arrived in total. A caller that drains on the
/// first can watch for a second to escalate to a hard cancel.
#[must_use]
pub fn trip_count() -> u32 {
    TRIPS.load(Ordering::SeqCst)
}

/// Trip the flag programmatically — tests and non-Unix fallbacks.
pub fn trip_now() {
    TRIPPED.store(true, Ordering::SeqCst);
    TRIPS.fetch_add(1, Ordering::SeqCst);
}

/// Clear the flag and count (test isolation).
pub fn reset() {
    TRIPPED.store(false, Ordering::SeqCst);
    TRIPS.store(0, Ordering::SeqCst);
}

/// Install the handler and spawn a watcher that cancels `token` when the
/// first signal arrives. The watcher thread exits after tripping.
pub fn cancel_on_signal(token: CancelToken) {
    install();
    let _ = std::thread::Builder::new()
        .name("ion-serve-signal".to_owned())
        .spawn(move || loop {
            if tripped() {
                token.cancel();
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_now_cancels_watched_token() {
        reset();
        let token = CancelToken::new();
        cancel_on_signal(token.clone());
        assert!(!token.is_cancelled());
        trip_now();
        while !token.is_cancelled() {
            std::thread::yield_now();
        }
        assert!(tripped());
        assert_eq!(trip_count(), 1);
        reset();
    }
}
