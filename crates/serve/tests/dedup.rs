//! Cross-client dedup: identical concurrent submissions run the model
//! exactly once. Two layers are proven separately:
//!
//! 1. **Daemon-level singleflight** — with dedup on, the second submit
//!    joins the in-flight job (same id, `deduped:true`) and the store
//!    recomputes the trace exactly once.
//! 2. **Store-level singleflight** — with daemon dedup off, two racing
//!    jobs over the same trace still compute every stage exactly once,
//!    observed through `Store::follower_joins()`.
//! 3. **Statement-fingerprint keying** — a daemon restarted over a
//!    whitespace-only context edit keeps the same job keys, and its warm
//!    store serves the edited analysis by backdating: zero model runs
//!    end to end through the HTTP surface.
//!
//! All coordination is gate/counter handshakes — no sleeps.

mod util;

use ion_serve::{client, Daemon, ServeConfig};
use ion_store::Store;
use std::sync::Arc;
use util::{obs_guard, spin_until, tmp_dir, trace_bytes, Gate, GatedModel};

fn submit(addr: std::net::SocketAddr, tenant: &str, trace: &[u8]) -> ion_obs::json::Json {
    let reply = client::post(addr, "/v1/jobs", &[("X-Ion-Tenant", tenant)], trace).unwrap();
    assert!(
        reply.status == 202 || reply.status == 200,
        "submit failed: {} {}",
        reply.status,
        reply.text()
    );
    reply.json().unwrap()
}

fn state_of(addr: std::net::SocketAddr, id: &str) -> String {
    client::get(addr, &format!("/v1/jobs/{id}"))
        .unwrap()
        .json()
        .unwrap()
        .get("state")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned()
}

#[test]
fn identical_concurrent_submits_share_one_job_and_one_model_run() {
    let _sink = obs_guard();
    let root = tmp_dir("dedup-join");
    let store = Arc::new(Store::open(&root).unwrap());
    let gate = Gate::new();
    let model = GatedModel::new(gate.clone());
    let dyn_model: Arc<dyn ion_llm::LanguageModel> = model.clone();
    let daemon = Daemon::bind_with_model(
        "127.0.0.1:0",
        Arc::clone(&store),
        dyn_model,
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();
    let trace = trace_bytes("dedup-join");

    // First client submits; the worker picks it up and blocks at the
    // model gate. "Running" proves it left the queue.
    let first = submit(addr, "alice", &trace);
    let id = first.get("job").unwrap().as_str().unwrap().to_owned();
    assert_eq!(first.get("deduped").unwrap().as_bool(), Some(false));
    spin_until("job running", || state_of(addr, &id) == "running");
    spin_until("model entered", || model.steps() >= 1);

    // Second client submits the identical trace: joins, no new job.
    let second = submit(addr, "bob", &trace);
    assert_eq!(second.get("deduped").unwrap().as_bool(), Some(true));
    assert_eq!(second.get("job").unwrap().as_str(), Some(id.as_str()));

    // Release the model; both clients converge on the same result.
    gate.open();
    let done = client::get(addr, &format!("/v1/jobs/{id}?wait_ms=30000")).unwrap();
    let doc = done.json().unwrap();
    assert_eq!(
        doc.get("state").unwrap().as_str(),
        Some("done"),
        "{}",
        done.text()
    );
    assert_eq!(
        doc.get("joins").unwrap().as_u64(),
        Some(1),
        "{}",
        done.text()
    );

    // Counter-exact: one trace extraction, one job, one dedup join.
    let snap = ion_obs::snapshot();
    assert_eq!(snap.counter("store.recompute.trace"), 1);
    assert_eq!(snap.counter("serve.jobs.submitted"), 1);
    assert_eq!(snap.counter("serve.dedup.joined"), 1);
    assert_eq!(snap.counter("serve.jobs.done"), 1);
    let report = client::get(addr, &format!("/v1/jobs/{id}/report")).unwrap();
    assert_eq!(report.status, 200);

    let summary = daemon.shutdown();
    assert_eq!(summary.done, 1);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn rejected_submission_leaves_no_dedup_state_behind() {
    let _sink = obs_guard();
    let root = tmp_dir("dedup-reject");
    let store = Arc::new(Store::open(&root).unwrap());
    let gate = Gate::new();
    let model = GatedModel::new(gate.clone());
    let dyn_model: Arc<dyn ion_llm::LanguageModel> = model.clone();
    let daemon = Daemon::bind_with_model(
        "127.0.0.1:0",
        Arc::clone(&store),
        dyn_model,
        ServeConfig {
            workers: 1,
            queue_budget: 1,
            tenant_budget: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();

    // The worker blocks on trace A; trace B fills the only queue slot.
    let blocker = submit(addr, "alice", &trace_bytes("reject-blocker"));
    let blocker_id = blocker.get("job").unwrap().as_str().unwrap().to_owned();
    spin_until("blocker running", || {
        state_of(addr, &blocker_id) == "running"
    });
    let queued = submit(addr, "bob", &trace_bytes("reject-queued"));
    let queued_id = queued.get("job").unwrap().as_str().unwrap().to_owned();

    // Trace C is refused by admission control. Admission and dedup
    // registration are one critical section, so the rejection leaves
    // nothing behind: an immediate identical submit must see the same
    // 429 — never a `deduped` join onto a job that does not exist.
    let trace_c = trace_bytes("reject-victim");
    let refused = client::post(addr, "/v1/jobs", &[("X-Ion-Tenant", "carol")], &trace_c).unwrap();
    assert_eq!(refused.status, 429, "{}", refused.text());
    let again = client::post(addr, "/v1/jobs", &[("X-Ion-Tenant", "carol")], &trace_c).unwrap();
    assert_eq!(
        again.status,
        429,
        "a rejected trace must not be joinable: {}",
        again.text()
    );

    // Once capacity frees up, the same trace queues as a fresh job.
    gate.open();
    for id in [&blocker_id, &queued_id] {
        let done = client::get(addr, &format!("/v1/jobs/{id}?wait_ms=30000")).unwrap();
        assert_eq!(
            done.json().unwrap().get("state").unwrap().as_str(),
            Some("done"),
            "{}",
            done.text()
        );
    }
    let fresh = submit(addr, "carol", &trace_c);
    assert_eq!(
        fresh.get("deduped").unwrap().as_bool(),
        Some(false),
        "no stale inflight binding may survive a rejection"
    );
    let fresh_id = fresh.get("job").unwrap().as_str().unwrap().to_owned();
    let done = client::get(addr, &format!("/v1/jobs/{fresh_id}?wait_ms=30000")).unwrap();
    assert_eq!(
        done.json().unwrap().get("state").unwrap().as_str(),
        Some("done"),
        "{}",
        done.text()
    );

    let summary = daemon.shutdown();
    assert_eq!(summary.done, 3);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn restart_over_a_whitespace_context_edit_reruns_no_models() {
    let _sink = obs_guard();
    let root = tmp_dir("dedup-ws-edit");
    let store = Arc::new(Store::open(&root).unwrap());
    let trace = trace_bytes("dedup-ws-edit");

    // First daemon analyzes with the pristine builtin library.
    let daemon = Daemon::bind(
        "127.0.0.1:0",
        Arc::clone(&store),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();
    let first = submit(addr, "alice", &trace);
    let id = first.get("job").unwrap().as_str().unwrap().to_owned();
    let done = client::get(addr, &format!("/v1/jobs/{id}?wait_ms=30000")).unwrap();
    assert_eq!(
        done.json().unwrap().get("state").unwrap().as_str(),
        Some("done"),
        "{}",
        done.text()
    );
    daemon.shutdown();

    // An operator re-indents one context — a whitespace-only knowledge
    // edit — and restarts the daemon over the same store.
    let mut contexts = ion::context::builtin_contexts();
    let target = contexts
        .iter_mut()
        .find(|c| c.id == "small-io")
        .expect("small-io is builtin");
    target.text = target.text.replacen("ISSUE:", "  ISSUE:", 1);
    ion_obs::reset();
    let daemon = Daemon::bind(
        "127.0.0.1:0",
        Arc::clone(&store),
        ServeConfig {
            workers: 1,
            contexts: Some(contexts),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();
    let second = submit(addr, "bob", &trace);
    let id = second.get("job").unwrap().as_str().unwrap().to_owned();
    let done = client::get(addr, &format!("/v1/jobs/{id}?wait_ms=30000")).unwrap();
    assert_eq!(
        done.json().unwrap().get("state").unwrap().as_str(),
        Some("done"),
        "{}",
        done.text()
    );

    // Counter-exact, end to end through the HTTP surface: the edit
    // re-ran nothing. The edited context's diagnosis was backdated, the
    // rest revalidated green, and no extraction or model run happened.
    let snap = ion_obs::snapshot();
    assert_eq!(
        snap.counter("llm.runs"),
        0,
        "a whitespace context edit must not re-run any model:\n{}",
        snap.render_profile()
    );
    assert_eq!(snap.counter("extract.runs"), 0);
    assert_eq!(snap.counter("store.recompute.issue"), 0);
    assert_eq!(snap.counter("store.recompute.summary"), 0);
    assert_eq!(snap.counter("store.revalidate.backdated"), 1);
    assert!(snap.counter("store.revalidate.green") >= 1);
    assert_eq!(snap.counter("store.revalidate.red"), 0);

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn without_daemon_dedup_the_store_singleflight_still_collapses_work() {
    let _sink = obs_guard();
    let root = tmp_dir("dedup-store");
    let store = Arc::new(Store::open(&root).unwrap());
    let gate = Gate::new();
    let model = GatedModel::new(gate.clone());
    let dyn_model: Arc<dyn ion_llm::LanguageModel> = model.clone();
    let daemon = Daemon::bind_with_model(
        "127.0.0.1:0",
        Arc::clone(&store),
        dyn_model,
        ServeConfig {
            workers: 2,
            dedup: false,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();
    let trace = trace_bytes("dedup-store");

    // Two separate jobs over the same bytes, racing on two workers.
    let a = submit(addr, "alice", &trace);
    let b = submit(addr, "bob", &trace);
    let id_a = a.get("job").unwrap().as_str().unwrap().to_owned();
    let id_b = b.get("job").unwrap().as_str().unwrap().to_owned();
    assert_ne!(id_a, id_b, "daemon dedup is off: two distinct jobs");

    // Handshake: the loser of the issue-compute race attaches to the
    // winner's in-flight computation before we release the model.
    spin_until("singleflight follower attached", || {
        store.follower_joins() >= 1
    });
    gate.open();

    for id in [&id_a, &id_b] {
        let done = client::get(addr, &format!("/v1/jobs/{id}?wait_ms=30000")).unwrap();
        let doc = done.json().unwrap();
        assert_eq!(
            doc.get("state").unwrap().as_str(),
            Some("done"),
            "{}",
            done.text()
        );
    }

    // Counter-exact: every stage computed once despite two jobs.
    let snap = ion_obs::snapshot();
    let issues = snap.counter("store.recompute.issue");
    assert!(issues > 0, "trace must exercise at least one issue context");
    assert_eq!(snap.counter("store.recompute.trace"), 1);
    assert_eq!(snap.counter("store.recompute.summary"), 1);
    assert_eq!(
        snap.counter("llm.runs"),
        issues + 1,
        "model ran once per issue plus the summary — no duplicated work:\n{}",
        snap.render_profile()
    );
    assert_eq!(snap.counter("serve.jobs.done"), 2);

    let summary = daemon.shutdown();
    assert_eq!(summary.done, 2);
    let _ = std::fs::remove_dir_all(root);
}
