//! Terminal-job retention: an always-on daemon's memory stays bounded.
//! Trace bytes drop the moment a job goes terminal, and once more than
//! `retain_jobs` jobs have finished the oldest-finished are evicted —
//! their ids 404 while newer jobs keep serving status and reports.

mod util;

use ion_serve::{client, Daemon, ServeConfig};
use ion_store::Store;
use std::sync::Arc;
use util::{obs_guard, tmp_dir, trace_bytes};

#[test]
fn oldest_terminal_jobs_are_evicted_beyond_the_retention_cap() {
    let _sink = obs_guard();
    let root = tmp_dir("retention");
    let store = Arc::new(Store::open(&root).unwrap());
    let daemon = Daemon::bind(
        "127.0.0.1:0",
        store,
        ServeConfig {
            workers: 1,
            retain_jobs: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();

    // Four distinct traces, each long-polled to `done` before the next is
    // submitted, so the terminal order is exactly the submit order.
    let mut ids = Vec::new();
    for n in 0..4 {
        let reply = client::post(addr, "/v1/jobs", &[], &trace_bytes(&format!("ret{n}"))).unwrap();
        assert_eq!(reply.status, 202, "{}", reply.text());
        let id = reply
            .json()
            .unwrap()
            .get("job")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        let done = client::get(addr, &format!("/v1/jobs/{id}?wait_ms=30000")).unwrap();
        assert_eq!(
            done.json().unwrap().get("state").unwrap().as_str(),
            Some("done"),
            "{}",
            done.text()
        );
        ids.push(id);
    }

    // The two oldest-finished are gone on every job route; the two newest
    // still serve status and reports.
    for id in &ids[..2] {
        assert_eq!(
            client::get(addr, &format!("/v1/jobs/{id}")).unwrap().status,
            404,
            "evicted job {id} must 404"
        );
        assert_eq!(
            client::get(addr, &format!("/v1/jobs/{id}/report"))
                .unwrap()
                .status,
            404
        );
    }
    for id in &ids[2..] {
        assert_eq!(
            client::get(addr, &format!("/v1/jobs/{id}")).unwrap().status,
            200,
            "retained job {id} must keep serving"
        );
        let report = client::get(addr, &format!("/v1/jobs/{id}/report")).unwrap();
        assert_eq!(report.status, 200);
        assert!(!report.body.is_empty());
    }

    // The listing only shows retained jobs; the eviction counter matches.
    let listing = client::get(addr, "/v1/jobs").unwrap().text();
    assert!(!listing.contains(&format!("\"{}\"", ids[0])), "{listing}");
    assert!(listing.contains(&format!("\"{}\"", ids[3])), "{listing}");
    let metrics = client::get(addr, "/metrics").unwrap().text();
    assert!(metrics.contains("ion_serve_jobs_evicted 2"), "{metrics}");

    // An evicted trace can be resubmitted: dedup no longer joins it, so
    // it queues as a fresh job (the warm store makes the re-run cheap).
    let again = client::post(addr, "/v1/jobs", &[], &trace_bytes("ret0")).unwrap();
    assert_eq!(again.status, 202, "{}", again.text());
    assert_eq!(
        again.json().unwrap().get("deduped").unwrap().as_bool(),
        Some(false)
    );

    drop(daemon);
    let _ = std::fs::remove_dir_all(root);
}
